#!/usr/bin/env python
"""Soft real-time video pipeline: graceful degradation under load.

The paper's introduction motivates tunability with media processing: "an
application that is trying to analyze a live video feed ... needs to
complete its processing by the time the next frame arrives."  This example
feeds periodic frames — each a tunable job with a full-quality and a
degraded analysis path — through arbitrators at several machine sizes, and
compares a quality-aware arbitrator against a plain earliest-finish one.

Run:  python examples/video_pipeline.py
"""

from repro.apps.video import FrameSpec, run_pipeline


def main() -> None:
    spec = FrameSpec()
    print(
        f"frame paths: full={spec.analyze_full} q=1.0 | "
        f"degraded={spec.analyze_degraded} q={spec.degraded_quality}"
    )
    header = (
        f"{'procs':>5} {'aware':>6} {'on-time':>8} {'full':>5} "
        f"{'degraded':>8} {'dropped':>7} {'quality':>7} {'util':>5}"
    )
    print(header)
    print("-" * len(header))
    for processors in (16, 12, 10, 8):
        for quality_aware in (True, False):
            report = run_pipeline(
                processors=processors,
                n_frames=300,
                period=2.0,
                jitter=0.5,
                spec=spec,
                quality_aware=quality_aware,
            )
            print(
                f"{processors:>5} {str(quality_aware):>6} "
                f"{report.on_time_rate:>8.2f} {report.full_quality_frames:>5} "
                f"{report.degraded_frames:>8} {report.dropped:>7} "
                f"{report.mean_quality:>7.2f} {report.utilization:>5.2f}"
            )
    print()
    print(
        "Reading: the earliest-finish arbitrator degrades every frame (the\n"
        "degraded path always finishes first) no matter how large the machine;\n"
        "the quality-aware arbitrator holds full quality while capacity allows\n"
        "and degrades selectively — though on the smallest machine its greed\n"
        "for full-quality frames can starve later arrivals, the classic\n"
        "quality-vs-admission tension of Section 5.1's 'in practice' remark."
    )


if __name__ == "__main__":
    main()
