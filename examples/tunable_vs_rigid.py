#!/usr/bin/env python
"""Reproduce the paper's headline comparison at one operating point.

Runs the tunable task system and both rigid shapes through identical
Poisson arrival sequences (common random numbers) at the documented default
operating point, then prints the throughput/utilization comparison and an
interval sweep chart — a miniature Figure 5(a).

Run:  python examples/tunable_vs_rigid.py        (2,000 arrivals per point)
      REPRO_FULL_SCALE=1 python examples/...     (the paper's 10,000)
"""

from repro.analysis.plots import sweep_chart
from repro.analysis.tables import format_sweep
from repro.workloads import SweepConfig, presets, run_point, run_sweep


def main() -> None:
    config = SweepConfig(n_jobs=presets.n_jobs(None))
    print(
        f"operating point: P={config.processors}, interval={config.interval}, "
        f"x={config.params.x}, t={config.params.t}, alpha={config.params.alpha}, "
        f"laxity={config.params.laxity}, n_jobs={config.n_jobs}"
    )
    print(
        f"offered load: {config.params.offered_load(config.processors, config.interval):.2f}"
    )
    print()
    for system in ("tunable", "shape1", "shape2"):
        m = run_point(config, system)
        print(
            f"{system:>8}: throughput={m.throughput:5d}  "
            f"utilization={m.utilization:.3f}  mean_response={m.mean_response:6.1f}  "
            f"paths={dict(m.chain_usage)}"
        )

    print()
    print("interval sweep (coarse grid):")
    sweep = run_sweep("interval", (10.0, 25.0, 40.0, 55.0, 70.0, 85.0), config)
    print(format_sweep(sweep, "throughput", precision=0))
    print(sweep_chart(sweep, "throughput"))


if __name__ == "__main__":
    main()
