#!/usr/bin/env python
"""Calypso execution semantics: CREW, two-phase commit, fault masking.

Demonstrates the execution substrate the paper builds on (§2): a parallel
reduction runs as a Calypso parallel step under increasingly hostile fault
injection, and the committed result never changes — eager scheduling and
two-phase idempotent execution mask every injected fault.

Run:  python examples/calypso_fault_masking.py
"""

from repro.calypso import (
    CalypsoRuntime,
    FaultInjector,
    ParallelStep,
    Routine,
    SharedMemory,
)
from repro.sim.rng import RandomStreams

N_CHUNKS = 8
CHUNK = 1000


def make_memory() -> SharedMemory:
    data = list(range(N_CHUNKS * CHUNK))
    slots = {f"partial_{i}": 0 for i in range(N_CHUNKS)}
    return SharedMemory(data=data, **slots)


def partial_sum(view, width, number):
    data = view["data"]
    lo = number * len(data) // width
    hi = (number + 1) * len(data) // width
    view[f"partial_{number}"] = sum(data[lo:hi])


def main() -> None:
    expected = sum(range(N_CHUNKS * CHUNK))
    step = ParallelStep((Routine(partial_sum, copies=N_CHUNKS, name="sum"),),
                        name="parallel-reduce")

    print(f"{'fault prob':>10} {'executions':>10} {'masked':>7} {'overhead':>8} {'correct':>7}")
    for probability in (0.0, 0.2, 0.5, 0.8):
        injector = (
            FaultInjector(probability, RandomStreams(2024), max_faults_per_task=6)
            if probability
            else None
        )
        runtime = CalypsoRuntime(workers=4, fault_injector=injector)
        memory = make_memory()
        report = runtime.execute_step(step, memory)
        total = sum(memory[f"partial_{i}"] for i in range(N_CHUNKS))
        print(
            f"{probability:>10.1f} {report.executions:>10} "
            f"{report.faults_masked:>7} {report.overhead_ratio:>8.2f} "
            f"{str(total == expected):>7}"
        )
    print()
    print(
        "Every row commits the identical result: faulted executions are "
        "re-queued and re-executed; the first completed execution of each "
        "logical task wins (exactly-once commit)."
    )


if __name__ == "__main__":
    main()
