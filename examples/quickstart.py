#!/usr/bin/env python
"""Quickstart: admit tunable jobs on a small machine and inspect the schedule.

Builds the paper's Figure-4 parameterizable tunable job (two transposed
two-task chains), submits a handful of arrivals to the QoS arbitrator, and
prints each admission decision, the chosen configuration, and finally an
ASCII Gantt chart of the committed schedule.

Run:  python examples/quickstart.py
"""

from repro import QoSArbitrator, SyntheticParams
from repro.sim.trace import render_gantt


def main() -> None:
    # x=4 processors for t=10 time in the tall shape; alpha=0.5 makes the
    # flat shape 2 processors for 20 time.  laxity=0.5 doubles deadlines.
    params = SyntheticParams(x=4, t=10.0, alpha=0.5, laxity=0.5)
    arbitrator = QoSArbitrator(capacity=4)

    print("Job template:")
    print(params.tunable_job().describe())
    print()

    for i in range(6):
        release = 8.0 * i
        decision = arbitrator.submit(params.tunable_job(release=release))
        if decision.admitted:
            chain = decision.placement.chain
            print(
                f"t={release:5.1f}  job {decision.job_id}: ADMITTED on "
                f"{chain.label!r}, finishes at {decision.finish:g}"
            )
        else:
            print(f"t={release:5.1f}  job {decision.job_id}: rejected ({decision.reason})")

    print()
    print(f"admitted {arbitrator.admitted}/{arbitrator.admitted + arbitrator.rejected} "
          f"jobs, utilization {arbitrator.utilization():.2f}")
    print("configuration usage:", arbitrator.chain_usage())
    print()
    print(render_gantt(arbitrator.schedule))


if __name__ == "__main__":
    main()
