#!/usr/bin/env python
"""Renegotiation after a capacity drop (§3.1's dynamic scenario).

Admits a batch of tunable jobs, then halves the machine at a chosen
instant.  Completed work is untouched; running reservations that still fit
are carried; not-yet-started jobs are renegotiated on the smaller machine —
and, being tunable, several are re-admitted on a *different* execution path
than originally granted.

Run:  python examples/renegotiation.py
"""

from repro import QoSArbitrator, SyntheticParams
from repro.qos import CapacityChange, renegotiate


def main() -> None:
    params = SyntheticParams(x=8, t=10.0, alpha=0.5, laxity=0.6)
    arbitrator = QoSArbitrator(capacity=16)

    jobs = {}
    for i in range(12):
        job = params.tunable_job(release=6.0 * i)
        jobs[job.job_id] = job
        arbitrator.submit(job)
    print(
        f"before the fault: {arbitrator.admitted} admitted, "
        f"{arbitrator.rejected} rejected on 16 processors"
    )

    change = CapacityChange(time=30.0, new_capacity=8)
    result = renegotiate(arbitrator.schedule, change, jobs)

    print(f"capacity drops to {change.new_capacity} at t={change.time}:")
    print(f"  finished before the drop : {len(result.finished)}")
    print(f"  carried across the drop  : {len(result.carried)}")
    print(f"  re-admitted afterwards   : {len(result.reallocated)}")
    print(f"  switched execution path  : {result.path_switches}")
    print(f"  dropped                  : {len(result.dropped)}")

    for old, new in result.reallocated:
        marker = "  <- PATH SWITCH" if old.chain_index != new.chain_index else ""
        print(
            f"    job {old.job_id}: chain {old.chain_index} "
            f"(finish {old.finish:g}) -> chain {new.chain_index} "
            f"(finish {new.finish:g}){marker}"
        )


if __name__ == "__main__":
    main()
