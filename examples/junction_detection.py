#!/usr/bin/env python
"""Junction detection end-to-end: the paper's tunable application (§3.2/§4.3).

1. Generate a synthetic image with planted ground-truth junctions.
2. Profile the two configurations (fine sampling/small search distance vs
   coarse sampling/large search distance) — the Figure-2 trade-off.
3. Build the Figure-3 tunable program, let its QoS agent negotiate with an
   arbitrator under two load conditions, and execute the granted path on
   the Calypso runtime.

Run:  python examples/junction_detection.py
"""

from repro import QoSArbitrator
from repro.apps.junction import (
    DEFAULT_CONFIGS,
    junction_program,
    match_quality,
    profile_configuration,
    synthetic_image,
)
from repro.apps.junction.tunable import prepare_memory
from repro.calypso import ApplicationManager, CalypsoRuntime


def main() -> None:
    image = synthetic_image(size=128, n_junctions=6, seed=42)
    print(f"image: {image.shape}, planted junctions: {len(image.junctions)}")

    profiles = [profile_configuration(image, c) for c in DEFAULT_CONFIGS]
    for prof in profiles:
        steps = ", ".join(
            f"step{i+1}={s.work}w/{s.duration:.2f}t" for i, s in enumerate(prof.steps)
        )
        print(
            f"  {prof.config.label:>6}: {steps}  "
            f"area={prof.total_area:.1f}  F1={prof.f1:.2f}"
        )

    program = junction_program(profiles)
    runtime = CalypsoRuntime(workers=4)

    # A background reservation that blocks most of the machine until just
    # before the sampling deadline: the fine path's longer sampling step no
    # longer fits, but the coarse path's shorter one still does — so under
    # load the arbitrator grants coarse sampling + large search distance.
    fine_d1 = profiles[0].steps[0].duration
    coarse_d1 = profiles[1].steps[0].duration
    sampling_deadline = 3.0 * max(fine_d1, coarse_d1)  # junction_program's d1
    block_until = sampling_deadline - (fine_d1 + coarse_d1) / 2

    for scenario, busy_until in (("idle machine", 0.0), ("loaded machine", block_until)):
        arbitrator = QoSArbitrator(8)
        if busy_until > 0:
            arbitrator.schedule.profile.reserve(0.0, busy_until, 5)
        manager = ApplicationManager(program, runtime, prepare_memory(image))
        run = manager.run(arbitrator, release=0.0)
        if run is None:
            print(f"{scenario}: rejected")
            continue
        junctions = manager.memory["junctions"]
        quality = match_quality(junctions, image.junctions)
        print(
            f"{scenario}: granted granularity="
            f"{run.params['sampleGranularity']}, searchDistance="
            f"{run.params['searchDistance']}; detected {junctions.shape[0]} "
            f"junctions, recall {quality.recall:.2f}, precision {quality.precision:.2f}"
        )


if __name__ == "__main__":
    main()
