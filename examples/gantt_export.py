#!/usr/bin/env python
"""Export a committed schedule as an SVG Gantt chart.

Admits a burst of tunable jobs, derives the concrete processor assignment
("which processors will execute which application tasks and for what time",
§3.1), and writes results/schedule.svg — open it in any browser; hover a
rectangle for the job/task/interval tooltip.

Run:  python examples/gantt_export.py
"""

from pathlib import Path

from repro import QoSArbitrator, SyntheticParams
from repro.analysis.svg import render_svg_gantt
from repro.core.assignment import assign_processors


def main() -> None:
    params = SyntheticParams(x=4, t=10.0, alpha=0.5, laxity=0.6)
    arbitrator = QoSArbitrator(capacity=8)
    for i in range(10):
        arbitrator.submit(params.tunable_job(release=6.0 * i))

    slices = assign_processors(arbitrator.schedule)
    print(
        f"admitted {arbitrator.admitted} jobs -> "
        f"{len(slices)} processor-slices on {arbitrator.capacity} processors"
    )

    svg = render_svg_gantt(
        arbitrator.schedule,
        title=f"Figure-4 jobs on {arbitrator.capacity} processors "
        f"(utilization {arbitrator.utilization():.2f})",
    )
    out = Path(__file__).resolve().parent.parent / "results" / "schedule.svg"
    out.parent.mkdir(exist_ok=True)
    out.write_text(svg)
    print(f"wrote {out} ({len(svg)} bytes)")


if __name__ == "__main__":
    main()
