#!/usr/bin/env python
"""Adaptive iterative refinement: a task_loop tunable application.

A Poisson solve tunable between a fine grid (12 heavy relaxation blocks,
accurate) and a coarse grid (6 light blocks, ~4x the error).  The program
is built with the task_loop construct: the block count is a control
parameter evaluated at scheduling time, and each block's deadline is an
expression over the loop variable.

Shows how the arbitration objective decides the accuracy/cost trade:
MAX_QUALITY buys the fine solve when the machine allows; EARLIEST_FINISH
always takes the cheap one.

Run:  python examples/adaptive_refinement.py
"""

from repro.apps.refine import (
    DEFAULT_REFINEMENT_CONFIGS,
    prepare_refinement_memory,
    profile_refinement,
    refinement_program,
)
from repro.calypso import ApplicationManager, CalypsoRuntime
from repro.core.arbitrator import ArbitrationObjective, QoSArbitrator
from repro.lang.preprocess import enumerate_paths


def main() -> None:
    profiles = tuple(profile_refinement(c) for c in DEFAULT_REFINEMENT_CONFIGS)
    for prof in profiles:
        cfg = prof.config
        print(
            f"{cfg.label:>6}: grid {cfg.resolution}^2, "
            f"{cfg.blocks} blocks x {cfg.sweeps_per_block} sweeps, "
            f"virtual time {prof.total_duration:7.1f}, "
            f"rel. L2 error {prof.error:.5f}, quality {prof.quality:.2f}"
        )

    program = refinement_program(profiles)
    path_lengths = [len(c) for c in enumerate_paths(program)]
    print(f"\nprogram paths: {path_lengths} tasks each "
          "(setup + unrolled task_loop + evaluate)")

    for label, objective in (
        ("quality-aware (MAX_QUALITY)", ArbitrationObjective.MAX_QUALITY),
        ("earliest-finish", ArbitrationObjective.EARLIEST_FINISH),
    ):
        arbitrator = QoSArbitrator(8, objective=objective)
        manager = ApplicationManager(
            program, CalypsoRuntime(workers=2), prepare_refinement_memory()
        )
        run = manager.run(arbitrator, release=0.0)
        print(
            f"{label}: granted grid {run.params['resolution']}^2 with "
            f"{run.params['blocks']} blocks -> final error "
            f"{manager.memory['error']:.5f}"
        )


if __name__ == "__main__":
    main()
