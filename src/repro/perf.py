"""Lightweight hot-path instrumentation: counters and wall-time timers.

The arbitrator's decision loop is the system's throughput ceiling (Section
5.2's heuristic probes and mutates the availability profile once or more per
arrival at 10,000-arrival scale), so reconfiguration-decision cost is a
first-class metric here — as it is for the related malleable-scheduling
systems (DMR, ReSHAPE).  This module provides the two primitives that make
that cost observable without slowing the hot path down:

* :class:`ProfileStats` — always-on plain-integer counters owned by each
  :class:`~repro.core.profile.AvailabilityProfile`.  Increments are bare
  ``int`` attribute additions; the profile never branches on whether anyone
  is listening.
* :class:`PerfRecorder` — counters plus wall-clock timers/latency samples,
  owned by each :class:`~repro.core.schedule.Schedule` and fed by the greedy
  and malleable schedulers, the arbitrator (per-submit decision latency) and
  the simulator.  Snapshots surface in
  :attr:`repro.sim.metrics.RunMetrics.perf` and in ``BENCH_sched.json``.

Everything here measures *wall* time (``time.perf_counter``); virtual
(simulated) time is never involved.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["ProfileStats", "PerfRecorder", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100]).

    Returns ``nan`` for an empty sample list.  Kept dependency-free so the
    perf layer never imports numpy on the hot path.
    """
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    if q <= 0:
        return ordered[0]
    if q >= 100:
        return ordered[-1]
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


class ProfileStats:
    """Always-on operation counters for one availability profile.

    Every field is a plain ``int`` bumped with ``+=`` on the hot path —
    cheap enough to leave permanently enabled.  ``last_touched`` records the
    segment-window size of the most recent mutation, which is what the
    complexity regression tests assert on (touched segments must track the
    *local* window, not the total segment count).
    """

    __slots__ = (
        "shift_ops",
        "segments_touched",
        "last_touched",
        "probes",
        "probe_segments",
        "prefix_rebuilds",
        "compactions",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.shift_ops = 0
        self.segments_touched = 0
        self.last_touched = 0
        self.probes = 0
        self.probe_segments = 0
        self.prefix_rebuilds = 0
        self.compactions = 0

    def as_dict(self) -> dict[str, int]:
        """Flat mapping of all counters (for snapshots and JSON reports)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ProfileStats({body})"


#: Counter names bumped on the admission hot path.  Each is a dedicated
#: slot on :class:`PerfRecorder`, so the hot sites (schedulers, schedule,
#: arbitrator) increment them with a bare ``recorder.name += 1`` — no
#: dict hashing, no string lookup per decision.  ``count()`` routes these
#: names to their slots, so call sites that prefer the generic API (and
#: the compiled batch kernel's counter write-back) stay correct.
HOT_COUNTERS = (
    "commits",
    "commit_failures",
    "rollbacks",
    "tail_rollbacks",
    "tail_restores",
    "carries",
    "reshape_probes",
    "chains_probed",
    "chains_quick_rejected",
    "chains_area_rejected",
    "chains_pruned_dominated",
    "chains_pruned_quality",
    "chains_prescreen_skipped",
    "batch_jobs",
    "batch_fallbacks",
)

_HOT_SET = frozenset(HOT_COUNTERS)


class PerfRecorder:
    """Slotted hot-path counters, wall-time totals, latency sample streams.

    One recorder lives on each :class:`~repro.core.schedule.Schedule`; the
    schedulers and the arbitrator share it.  The per-decision cost is a
    handful of slotted attribute adds plus one list append for the
    ``decision`` latency sample (see :meth:`note_decision`); everything
    dict-shaped — merging, percentiles, the flat report — happens lazily
    in :meth:`snapshot`, off the hot path.  The ``run_bench.py``
    ``perf_overhead`` section guards the total at <= 2% of the decision
    p50.  Latency streams store one float per observation (one per job
    submission in the simulator), negligible at the paper's
    10,000-arrival scale.
    """

    __slots__ = HOT_COUNTERS + (
        "decision_total_s",
        "_decision_samples",
        "_extra",
        "timings",
        "latencies",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Drop all recorded data."""
        for name in HOT_COUNTERS:
            setattr(self, name, 0)
        #: Accumulated ``decision`` latency (seconds) and its samples.
        self.decision_total_s = 0.0
        self._decision_samples: list[float] = []
        #: Cold-path counters by name (anything not in :data:`HOT_COUNTERS`).
        self._extra: dict[str, int | float] = {}
        self.timings: dict[str, float] = {}
        self.latencies: dict[str, list[float]] = {}

    # ------------------------------------------------------------------

    @property
    def counters(self) -> dict[str, int | float]:
        """Merged view of all counters (lazy; zero hot counters omitted)."""
        out: dict[str, int | float] = {}
        for name in HOT_COUNTERS:
            value = getattr(self, name)
            if value:
                out[name] = value
        out.update(self._extra)
        return out

    def count(self, name: str, n: "int | float" = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero on first use)."""
        if name in _HOT_SET:
            setattr(self, name, getattr(self, name) + n)
        else:
            extra = self._extra
            extra[name] = extra.get(name, 0) + n

    def note_decision(self, seconds: float) -> None:
        """Record one admission-decision latency sample (the hot stream).

        Equivalent to ``observe("decision", seconds)`` but touches only
        slotted state: one float add and one list append per decision.
        """
        self.decision_total_s += seconds
        self._decision_samples.append(seconds)

    def observe(self, name: str, seconds: float) -> None:
        """Record one wall-time latency sample under ``name``."""
        if name == "decision":
            self.decision_total_s += seconds
            self._decision_samples.append(seconds)
            return
        self.timings[name] = self.timings.get(name, 0.0) + seconds
        self.latencies.setdefault(name, []).append(seconds)

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Context manager recording the block's wall time under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - t0)

    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, float | int]:
        """Flat summary: counters, total seconds, and latency percentiles.

        Assembled lazily from the slotted state (hot counters appear only
        once nonzero).  Latency streams contribute ``<name>_s`` (total),
        ``<name>_count``, ``<name>_p50_us`` and ``<name>_p95_us``
        (microseconds — decision latencies are far below a millisecond).
        """
        out: dict[str, float | int] = self.counters
        for name, total in self.timings.items():
            out[f"{name}_s"] = total
        for name, samples in self.latencies.items():
            out[f"{name}_count"] = len(samples)
            out[f"{name}_p50_us"] = percentile(samples, 50) * 1e6
            out[f"{name}_p95_us"] = percentile(samples, 95) * 1e6
        samples = self._decision_samples
        if samples:
            out["decision_s"] = self.decision_total_s
            out["decision_count"] = len(samples)
            out["decision_p50_us"] = percentile(samples, 50) * 1e6
            out["decision_p95_us"] = percentile(samples, 95) * 1e6
        return out
