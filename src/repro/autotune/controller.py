"""The self-tuning scan-backend meta-controller.

The four concrete scan back-ends of
:class:`~repro.core.profile.AvailabilityProfile` trade off differently
with the *regime* the schedule is in, not just with its size (the
committed ``BENCH_sched.json`` fragmentation points): the scalar walk
wins small profiles, the segment tree wins query-dominated fragmented
profiles by an order of magnitude but pays O(S) lazy consolidation after
every mutation, the compiled kernel wins mid-to-large profiles whenever
probes and mutations alternate, and the vectorized scan is the large-S
fallback when no C toolchain is present.  A static choice therefore
loses whenever the regime shifts mid-run — backlog growth, a
fragmentation spike, a drain.

:class:`AdaptiveController` closes that loop online.  It is owned by a
profile constructed with ``backend="adaptive"`` and consulted by
:meth:`~repro.core.profile.AvailabilityProfile.scan_backend` on every
query; it observes the always-on :class:`~repro.perf.ProfileStats`
counters (live segment count, probe count, probe-segments-per-probe,
mutation/compaction rate) plus the wall-clock decision-latency EWMA fed
by the arbitrator, and re-evaluates its target back-end every
:attr:`AutotuneConfig.eval_interval` probes.

**Safety.**  Every concrete back-end returns bit-identical answers (the
PR 4/7 equivalence contract, pinned per-case by the differential
fuzzer), so the controller may consume nondeterministic wall-clock
signals freely: whatever switch sequence it produces, decisions, fuzz
digests, audit results and cache keys are unchanged.  The
:meth:`AdaptiveController.force_backends` hook exploits the same fact in
reverse — verification harnesses force *adversarial* switch schedules
(including a different back-end for every single query) and assert the
decision stream still matches every static back-end.

**Hysteresis.**  Two mechanisms stop the controller from thrashing on a
noisy boundary: a switch needs :attr:`AutotuneConfig.confirm` consecutive
evaluations agreeing on the same new target, and after any switch the
controller dwells on its choice for :attr:`AutotuneConfig.min_dwell`
probes before it will consider another.  Entering the tree additionally
uses an asymmetric criterion: the probe-depth signal that justifies the
tree is measured in *scanned segments* on the linear back-ends but in
*visited tree nodes* once the tree serves, so depth gates entry only;
leaving the tree is triggered by the mutation-rate signal (or the
profile shrinking), never by the depth collapsing to O(log S).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import kernels
from repro.errors import ConfigurationError

__all__ = ["AutotuneConfig", "AdaptiveController", "SWITCHABLE_BACKENDS"]

#: The concrete back-ends the controller switches among (never ``"auto"``
#: or ``"adaptive"`` — a resolved back-end must answer every query).
SWITCHABLE_BACKENDS = ("scalar", "vector", "tree", "kernel")


@dataclass(frozen=True, slots=True)
class AutotuneConfig:
    """Tuning knobs of the :class:`AdaptiveController`.

    Defaults are calibrated against the committed ``BENCH_sched.json``
    fragmentation and decision-throughput points; see ``docs/adaptive.md``
    for the derivation of each threshold.
    """

    #: Probes between regime evaluations.  Between evaluations the
    #: controller's per-query cost is one integer subtract and compare.
    eval_interval: int = 32
    #: Consecutive agreeing evaluations required before a switch commits.
    confirm: int = 2
    #: Probes the controller dwells on a fresh choice before considering
    #: another switch (the anti-thrash floor).
    min_dwell: int = 128
    #: Below this many live segments every O(S) concern is noise and the
    #: scalar walk's minimal constant wins (committed: scalar 37.9µs vs
    #: kernel 63.5µs / vector 114.5µs p50 at 100 segments).
    small_segments: int = 256
    #: Scanned-segments-per-probe above which a linear scan is paying
    #: enough per query for the tree's O(log S) descents to win (entry
    #: criterion only — see the module docs on asymmetric hysteresis).
    tree_min_depth: float = 24.0
    #: Mutations (shifts + compactions) per probe above which the tree's
    #: lazy consolidation bill exceeds its query savings.
    mutation_ratio_max: float = 0.25
    #: While the tree serves, this many mutations since the last
    #: evaluation force an early one: each mutation dirties the index and
    #: the next probe pays a reconsolidation, so waiting out the probe
    #: sampling interval in a mutation burst (a drain's compaction per
    #: arrival) bills O(S) per probe for the whole lag.  Checked only on
    #: the tree path — the linear back-ends don't care.
    tree_exit_mutations: int = 4
    #: Smoothing factor of the wall-clock decision-latency EWMA.
    ewma_alpha: float = 0.2
    #: A decision slower than this multiple of the EWMA forces a regime
    #: re-evaluation at the next probe instead of waiting out the
    #: sampling interval (dwell and confirmation still apply).
    latency_spike_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.eval_interval < 1 or self.confirm < 1 or self.min_dwell < 0:
            raise ConfigurationError(
                "eval_interval/confirm must be >= 1 and min_dwell >= 0, got "
                f"{self.eval_interval}/{self.confirm}/{self.min_dwell}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.tree_exit_mutations < 1:
            raise ConfigurationError(
                f"tree_exit_mutations must be >= 1, got "
                f"{self.tree_exit_mutations}"
            )


class AdaptiveController:
    """Online scan-backend selector driven by the perf counters.

    One controller is owned by each ``backend="adaptive"`` profile (see
    :attr:`~repro.core.profile.AvailabilityProfile.autotune`) and survives
    capacity-change schedule swaps via
    :meth:`~repro.core.profile.AvailabilityProfile.adopt_autotune`.
    All methods are hot-path cheap; the full evaluation runs only once
    per :attr:`AutotuneConfig.eval_interval` probes.
    """

    __slots__ = (
        "config",
        "_current",
        "_pending",
        "_streak",
        "_eval_probes",
        "_eval_probe_segments",
        "_eval_mutations",
        "_dwell_until",
        "_forced",
        "_forced_pos",
        "switches",
        "evals",
        "switch_log",
        "decisions",
        "decision_ewma_s",
    )

    def __init__(
        self,
        config: AutotuneConfig | None = None,
        initial: str = "scalar",
    ) -> None:
        if initial not in SWITCHABLE_BACKENDS:
            raise ConfigurationError(
                f"initial backend must be one of {SWITCHABLE_BACKENDS}, "
                f"got {initial!r}"
            )
        self.config = config if config is not None else AutotuneConfig()
        self._current = initial
        self._pending: str | None = None
        self._streak = 0
        # Counter baselines of the current evaluation window.
        self._eval_probes = 0
        self._eval_probe_segments = 0
        self._eval_mutations = 0
        self._dwell_until = 0
        self._forced: tuple[str, ...] | None = None
        self._forced_pos = 0
        #: Committed switches / evaluations run (telemetry).
        self.switches = 0
        self.evals = 0
        #: ``(probe_count, from, to)`` per committed switch.
        self.switch_log: list[tuple[int, str, str]] = []
        self.decisions = 0
        self.decision_ewma_s = 0.0

    # ------------------------------------------------------------------
    # The per-query hot path
    # ------------------------------------------------------------------

    @property
    def current(self) -> str:
        """Back-end currently serving queries."""
        return self._current

    def backend_for(self, profile) -> str:
        """Resolve the back-end answering this query (never ``"auto"``).

        Called by :meth:`AvailabilityProfile.scan_backend` on every query
        of an adaptive profile.  Cheap between evaluations: one subtract
        and compare against the profile's probe counter.
        """
        forced = self._forced
        if forced is not None:
            pos = self._forced_pos
            self._forced_pos = pos + 1
            return forced[pos % len(forced)]
        stats = profile.stats
        delta = stats.probes - self._eval_probes
        if delta >= self.config.eval_interval:
            self._evaluate(stats, len(profile))
        elif delta < 0:
            # The stats were reset (or the controller was rebound onto a
            # fresh profile without rebind()): re-baseline, keep the choice.
            self._rebase(stats)
        elif self._current == "tree" and (
            stats.shift_ops + stats.compactions - self._eval_mutations
            >= self.config.tree_exit_mutations
        ):
            # Mutation burst while the tree serves: every mutation
            # dirties the index, so don't wait out the probe interval.
            self._evaluate(stats, len(profile))
        return self._current

    def _rebase(self, stats) -> None:
        self._eval_probes = stats.probes
        self._eval_probe_segments = stats.probe_segments
        self._eval_mutations = stats.shift_ops + stats.compactions
        self._dwell_until = min(self._dwell_until, stats.probes)

    def _evaluate(self, stats, n_segments: int) -> None:
        cfg = self.config
        d_probes = stats.probes - self._eval_probes
        d_depth = stats.probe_segments - self._eval_probe_segments
        mutations = stats.shift_ops + stats.compactions
        d_mutations = mutations - self._eval_mutations
        self._eval_probes = stats.probes
        self._eval_probe_segments = stats.probe_segments
        self._eval_mutations = mutations
        self.evals += 1
        target = self._target(n_segments, d_probes, d_depth, d_mutations)
        if target == self._current:
            self._pending = None
            self._streak = 0
            return
        if stats.probes < self._dwell_until:
            return  # recently switched: hold the choice
        if target == self._pending:
            self._streak += 1
        else:
            self._pending = target
            self._streak = 1
        if self._streak >= cfg.confirm:
            self.switch_log.append((stats.probes, self._current, target))
            self._current = target
            self._pending = None
            self._streak = 0
            self._dwell_until = stats.probes + cfg.min_dwell
            self.switches += 1

    def _target(
        self, n_segments: int, d_probes: int, d_depth: int, d_mutations: int
    ) -> str:
        """The back-end the last window's regime calls for."""
        from repro.core.profile import KERNEL_MIN_SEGMENTS, VECTOR_MIN_SEGMENTS

        cfg = self.config
        if n_segments < cfg.small_segments:
            return "scalar"
        mutation_ratio = d_mutations / d_probes if d_probes else 1.0
        if mutation_ratio <= cfg.mutation_ratio_max:
            depth = d_depth / d_probes if d_probes else 0.0
            # Depth gates *entry* only: once the tree serves, probe
            # depth is measured in visited tree nodes (O(log S)) and no
            # longer says anything about what a linear scan would cost.
            if self._current == "tree" or depth >= cfg.tree_min_depth:
                return "tree"
        if (
            n_segments >= KERNEL_MIN_SEGMENTS
            and kernels.kernel_backend() == "compiled"
        ):
            return "kernel"
        if n_segments >= VECTOR_MIN_SEGMENTS:
            return "vector"
        return "scalar"

    # ------------------------------------------------------------------
    # Latency feedback (arbitrator-fed)
    # ------------------------------------------------------------------

    def observe_decision(self, seconds: float) -> None:
        """Feed one wall-clock admission-decision latency sample.

        Maintains the EWMA and, on a spike beyond
        :attr:`AutotuneConfig.latency_spike_factor` times the running
        average, schedules an immediate regime re-evaluation at the next
        probe (the counters, not the latency, decide the new target).
        """
        self.decisions += 1
        ewma = self.decision_ewma_s
        if ewma == 0.0:
            self.decision_ewma_s = seconds
            return
        cfg = self.config
        self.decision_ewma_s = ewma + cfg.ewma_alpha * (seconds - ewma)
        if seconds > cfg.latency_spike_factor * ewma:
            self._eval_probes -= cfg.eval_interval

    def observe_batch(self, n_jobs: int, seconds: float) -> None:
        """Feed one batched-admission latency sample (amortized per job)."""
        if n_jobs > 0:
            self.observe_decision(seconds / n_jobs)

    # ------------------------------------------------------------------
    # Lifecycle / verification hooks
    # ------------------------------------------------------------------

    def rebind(self, profile) -> None:
        """Re-baseline onto ``profile``'s (typically fresh) counters.

        Called when the controller is transplanted across a capacity-change
        schedule swap (:meth:`AvailabilityProfile.adopt_autotune`): the
        chosen back-end, latency EWMA and switch history survive; the
        evaluation window restarts from the new profile's counter values.
        """
        self._rebase(profile.stats)
        self._dwell_until = profile.stats.probes
        self._pending = None
        self._streak = 0

    def force_backends(self, schedule) -> None:
        """Override the controller with a fixed switch schedule (fuzzing).

        ``schedule`` is a sequence drawn from :data:`SWITCHABLE_BACKENDS`;
        query ``k`` (every ``scan_backend`` resolution, i.e. at finer than
        per-decision granularity) is served by ``schedule[k % len]``.
        Decisions must be bit-identical under *any* forced schedule —
        that is the invariant the adversarial-switch fuzz mode pins.
        An empty sequence restores normal adaptive operation.
        """
        seq = tuple(schedule)
        for name in seq:
            if name not in SWITCHABLE_BACKENDS:
                raise ConfigurationError(
                    f"forced backend must be one of {SWITCHABLE_BACKENDS}, "
                    f"got {name!r}"
                )
        self._forced = seq or None
        self._forced_pos = 0

    @property
    def forced(self) -> tuple[str, ...] | None:
        """The active forced switch schedule, if any."""
        return self._forced

    def snapshot(self) -> dict[str, float | int | str]:
        """Telemetry block merged into ``Schedule.perf_snapshot()``."""
        return {
            "autotune_backend": self._current,
            "autotune_switches": self.switches,
            "autotune_evals": self.evals,
            "autotune_decision_ewma_us": self.decision_ewma_s * 1e6,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaptiveController(current={self._current!r}, "
            f"switches={self.switches}, evals={self.evals})"
        )
