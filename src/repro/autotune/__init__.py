"""Self-tuning scheduler: online scan-backend selection (``"adaptive"``).

See :mod:`repro.autotune.controller` for the meta-controller that closes
the loop between the always-on :mod:`repro.perf` counters and the
availability profile's scan back-end, and ``docs/adaptive.md`` for the
signals, thresholds and the decision-identity argument.
"""

from repro.autotune.controller import (
    SWITCHABLE_BACKENDS,
    AdaptiveController,
    AutotuneConfig,
)

__all__ = ["AdaptiveController", "AutotuneConfig", "SWITCHABLE_BACKENDS"]
