"""The negotiation protocol between QoS agents and the QoS arbitrator.

Section 3.1's static negotiation model: the agent sends one
:class:`ReservationRequest` carrying the full enumerated path set; the
arbitrator answers with a :class:`ReservationGrant` (allocation profile for
one path, plus the configuration parameters) or a
:class:`ReservationReject`.  The message types are plain data so they can be
logged, serialized or replayed; :func:`negotiate` is the in-process
round-trip.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.arbitrator import QoSArbitrator
from repro.errors import NegotiationError
from repro.model.job import Job
from repro.qos.contract import ResourceContract

__all__ = [
    "ReservationRequest",
    "ReservationGrant",
    "ReservationReject",
    "negotiate",
]

_request_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class ReservationRequest:
    """Agent → arbitrator: here are all my execution paths; admit me.

    The ``job`` field carries the enumerated chains, each annotated (via
    ``chain.params``) with the control-parameter assignment that selects it.
    """

    job: Job
    request_id: int = field(default_factory=lambda: next(_request_ids))

    @property
    def release(self) -> float:
        return self.job.release


@dataclass(frozen=True, slots=True)
class ReservationGrant:
    """Arbitrator → agent: admitted; here is your allocation profile."""

    request_id: int
    contract: ResourceContract


@dataclass(frozen=True, slots=True)
class ReservationReject:
    """Arbitrator → agent: no configuration is schedulable."""

    request_id: int
    reason: str


def negotiate(
    arbitrator: QoSArbitrator, request: ReservationRequest
) -> ReservationGrant | ReservationReject:
    """One static-negotiation round trip against an in-process arbitrator."""
    decision = arbitrator.submit(request.job)
    if not decision.admitted or decision.placement is None:
        return ReservationReject(request.request_id, decision.reason)
    chain = decision.placement.chain
    params: Mapping[str, object] = chain.params or {}
    contract = ResourceContract(
        job_id=request.job.job_id,
        placement=decision.placement,
        params=params,
    )
    if contract.chain_index >= len(request.job.chains):
        raise NegotiationError(
            f"arbitrator granted unknown chain index {contract.chain_index}"
        )
    return ReservationGrant(request.request_id, contract)
