"""Resource contracts.

The outcome of a successful negotiation: "the QoS agent communicates all
the possible application execution paths and their resource requirements up
front, and receives in return (from the QoS arbitrator) a resource
allocation profile for one of these paths" (Section 3.1).  The contract
carries that allocation profile plus the control-parameter assignment the
application must adopt ("application configuration just requires setting
values for the sampling granularity and search distance parameters",
Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.core.placement import ChainPlacement
from repro.model.quality import QualityComposition, chain_quality

__all__ = ["ResourceContract"]


@dataclass(frozen=True, slots=True)
class ResourceContract:
    """An admitted application's granted allocation profile.

    Attributes
    ----------
    job_id:
        Identity of the admitted job.
    placement:
        The committed :class:`~repro.core.placement.ChainPlacement` — which
        processors-over-time each task holds.
    params:
        Control-parameter assignment selecting the granted execution path
        (empty for programs without control parameters).
    """

    job_id: int
    placement: ChainPlacement
    params: Mapping[str, object]

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", MappingProxyType(dict(self.params)))

    @property
    def chain_index(self) -> int:
        """Which enumerated execution path was granted."""
        return self.placement.chain_index

    @property
    def start(self) -> float:
        """When the first task begins."""
        return self.placement.start

    @property
    def finish(self) -> float:
        """When the last task completes."""
        return self.placement.finish

    def quality(
        self, composition: QualityComposition = QualityComposition.PRODUCT
    ) -> float:
        """Output quality of the granted path."""
        return chain_quality(self.placement.chain, composition)

    def task_schedule(self) -> list[tuple[str, float, float, int]]:
        """Per-task ``(name, start, end, processors)`` rows, in order."""
        return [
            (pl.task.name, pl.start, pl.end, pl.processors)
            for pl in self.placement.placements
        ]
