"""Contract revision on changing application demands (§3.1 extension).

"In general, this negotiation involves an initial allocation that gets
revised as a function of changing application demands and/or changing
system conditions."  :mod:`repro.qos.renegotiation` covers the system side
(capacity change); this module covers the *application* side: a running
job discovers mid-execution that its remaining work differs from the
profile it negotiated (junction detection's coarse sampling may mark more
regions than the training set predicted), and asks the arbitrator to swap
the not-yet-started suffix of its reservation for a revised one.

Semantics: at revision time ``now``, the placements of the contract's
tasks that have *started* (``start < now``) are immutable history; the
unstarted suffix is released back to the profile and the proposed
replacement suffix is placed by first fit, with each proposal task's
deadline interpreted relative to the original job release (soft real-time
budgets do not move because the work grew).  If no proposal fits, the
original suffix is reinstated untouched — revision is transactional.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.first_fit import earliest_fit
from repro.core.placement import ChainPlacement, Placement
from repro.core.schedule import Schedule
from repro.errors import NegotiationError
from repro.model.chain import TaskChain
from repro.model.task import TaskSpec
from repro.qos.contract import ResourceContract

__all__ = ["RevisionResult", "revise_contract"]


@dataclass(frozen=True, slots=True)
class RevisionResult:
    """Outcome of one revision attempt."""

    accepted: bool
    contract: ResourceContract
    released_area: float
    added_area: float

    @property
    def area_delta(self) -> float:
        """Net processor-time change of the reservation."""
        return self.added_area - self.released_area


def revise_contract(
    schedule: Schedule,
    contract: ResourceContract,
    now: float,
    revised_suffix: Sequence[TaskSpec],
) -> RevisionResult:
    """Replace the unstarted suffix of ``contract`` with ``revised_suffix``.

    Parameters
    ----------
    schedule:
        The arbitrator's schedule holding the contract's placements.
    contract:
        The contract to revise (must have been committed on ``schedule``).
    now:
        Current virtual time; tasks with ``start < now`` are immutable.
    revised_suffix:
        Replacement specs for every *unstarted* task, in order.  Deadlines
        are relative to the original job release.  May be longer or shorter
        than the original suffix, but not empty if any task was unstarted
        (a job cannot silently drop its remaining work — cancel instead).

    Returns a :class:`RevisionResult`; ``accepted=False`` means the
    proposal did not fit and the original reservation stands.
    """
    old = contract.placement
    if schedule.placements and old not in schedule.placements:
        raise NegotiationError(
            f"contract for job {contract.job_id} is not committed on this "
            "schedule"
        )
    started = [pl for pl in old.placements if pl.start < now]
    unstarted = [pl for pl in old.placements if pl.start >= now]
    if not unstarted:
        raise NegotiationError(
            f"contract for job {contract.job_id} has no unstarted tasks at "
            f"t={now}; nothing to revise"
        )
    if not revised_suffix:
        raise NegotiationError("revised suffix must not be empty")

    release = old.release
    # Transaction: free the unstarted suffix, try the proposal, reinstate on
    # failure.
    for pl in unstarted:
        schedule.profile.release(pl.start, pl.end, pl.processors)
    released_area = sum(pl.area for pl in unstarted)

    earliest = max(started[-1].end if started else release, now)
    new_placements: list[Placement] = []
    cursor = earliest
    feasible = True
    for spec in revised_suffix:
        start = earliest_fit(
            schedule.profile,
            spec.processors,
            spec.duration,
            cursor,
            release + spec.deadline,
        )
        if start is None:
            feasible = False
            break
        new_placements.append(Placement.rigid(spec, start))
        cursor = start + spec.duration

    if not feasible:
        for pl in unstarted:  # reinstate the original suffix
            schedule.profile.reserve(pl.start, pl.end, pl.processors)
        return RevisionResult(
            accepted=False,
            contract=contract,
            released_area=0.0,
            added_area=0.0,
        )

    added_area = sum(pl.area for pl in new_placements)

    revised_chain = TaskChain(
        tuple(pl.task for pl in started) + tuple(revised_suffix),
        label=(old.chain.label + "+rev") if old.chain.label else "revised",
        params=old.chain.params,
    )
    revised_placement = ChainPlacement(
        job_id=old.job_id,
        chain_index=old.chain_index,
        chain=revised_chain,
        placements=tuple(started) + tuple(new_placements),
        release=release,
    )

    # Hand the bookkeeping to the schedule's own transaction primitives:
    # first restore the pre-revision profile, then swap old for new via
    # rollback + commit (which re-validates and keeps accounting exact).
    for pl in unstarted:
        schedule.profile.reserve(pl.start, pl.end, pl.processors)
    try:
        schedule.rollback(old)
    except Exception as exc:
        raise NegotiationError(
            f"contract for job {contract.job_id} is not committed on this "
            "schedule"
        ) from exc
    schedule.commit(revised_placement)

    new_contract = ResourceContract(
        job_id=contract.job_id,
        placement=revised_placement,
        params=contract.params,
    )
    return RevisionResult(
        accepted=True,
        contract=new_contract,
        released_area=released_area,
        added_area=added_area,
    )
