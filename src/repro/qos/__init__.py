"""The MILAN resource-management architecture (Section 3).

* :mod:`repro.qos.agent` — the application-level QoS agent, generated from
  a tunable program, that negotiates with the system-level arbitrator.
* :mod:`repro.qos.negotiation` — the request/grant/reject message protocol.
* :mod:`repro.qos.contract` — the resource contract an admitted application
  holds (its allocation profile plus the control-parameter configuration).
* :mod:`repro.qos.renegotiation` — renegotiation on resource-level change.
"""

from repro.qos.agent import QoSAgent
from repro.qos.contract import ResourceContract
from repro.qos.negotiation import (
    ReservationGrant,
    ReservationReject,
    ReservationRequest,
    negotiate,
)
from repro.qos.renegotiation import CapacityChange, RenegotiationResult, renegotiate
from repro.qos.revision import RevisionResult, revise_contract

__all__ = [
    "RevisionResult",
    "revise_contract",
    "QoSAgent",
    "ResourceContract",
    "ReservationRequest",
    "ReservationGrant",
    "ReservationReject",
    "negotiate",
    "CapacityChange",
    "RenegotiationResult",
    "renegotiate",
]
