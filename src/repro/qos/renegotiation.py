"""Renegotiation on resource-level change (Section 3.1 extension).

"In general, the QoS arbitrator also monitors system resources, and
triggers renegotiation on detecting a significant change in resource levels
(e.g., on a fault, or when new resources become available ...)."  The
Section 5 experiments assume a fault-free fixed-capacity system; this
module implements the renegotiation path the architecture calls for, so the
claim is exercised rather than assumed.

Model: at virtual time ``change.time`` the machine's capacity changes to
``change.new_capacity``.  Placements that finished by then are history;
placements *running* across the change keep their reservation if they still
fit the new capacity, else their jobs are dropped; placements that had not
started are re-negotiated in release order on the new machine — and being
tunable, a job may well be re-admitted **on a different path** than before,
which is exactly the flexibility the paper argues for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.greedy import GreedyScheduler
from repro.core.placement import ChainPlacement
from repro.core.policies import TieBreakPolicy
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError, NegotiationError
from repro.model.job import Job

__all__ = ["CapacityChange", "RenegotiationResult", "renegotiate"]


@dataclass(frozen=True, slots=True)
class CapacityChange:
    """The machine has ``new_capacity`` processors from ``time`` onward."""

    time: float
    new_capacity: int

    def __post_init__(self) -> None:
        if self.new_capacity <= 0:
            raise ConfigurationError(
                f"new_capacity must be positive, got {self.new_capacity}"
            )
        if math.isnan(self.time) or math.isinf(self.time):
            raise ConfigurationError(f"change time must be finite, got {self.time}")


@dataclass(frozen=True, slots=True)
class RenegotiationResult:
    """Outcome of re-planning a schedule across a capacity change.

    Attributes
    ----------
    schedule:
        The new post-change schedule (origin at the change time).
    finished:
        Placements that completed before the change (untouched).
    carried:
        Running placements whose reservations survived the change.
    reallocated:
        ``(old, new)`` placement pairs for jobs re-admitted after the
        change; ``new.chain_index`` may differ from ``old.chain_index``.
    dropped:
        Job ids that lost their reservation (running-too-wide or
        re-admission failed).
    """

    schedule: Schedule
    finished: tuple[ChainPlacement, ...]
    carried: tuple[ChainPlacement, ...]
    reallocated: tuple[tuple[ChainPlacement, ChainPlacement], ...]
    dropped: tuple[int, ...]

    @property
    def path_switches(self) -> int:
        """How many re-admitted jobs changed execution path."""
        return sum(
            1 for old, new in self.reallocated if old.chain_index != new.chain_index
        )


def renegotiate(
    old_schedule: Schedule,
    change: CapacityChange,
    jobs_by_id: Mapping[int, Job],
    policy: TieBreakPolicy = TieBreakPolicy.PAPER,
) -> RenegotiationResult:
    """Re-plan every affected reservation across a capacity change.

    ``old_schedule`` must have been built with ``keep_placements=True``
    (the placements are the renegotiation input).  ``jobs_by_id`` must
    cover every job whose placement had not started by ``change.time`` —
    renegotiation needs their full path sets.
    """
    tau = change.time
    finished: list[ChainPlacement] = []
    running: list[ChainPlacement] = []
    future: list[ChainPlacement] = []
    for cp in old_schedule.placements:
        if cp.finish <= tau:
            finished.append(cp)
        elif cp.start < tau:
            running.append(cp)
        else:
            future.append(cp)

    new_schedule = Schedule(
        change.new_capacity, origin=tau, backend=old_schedule.profile.backend
    )
    carried: list[ChainPlacement] = []
    dropped: list[int] = []

    # Carry running placements that still fit; note a chain may straddle the
    # change with some tasks done and some pending — reserve every remaining
    # (possibly clipped) task interval.  Carrying is greedy in (start, id)
    # order: reservations that individually fit may *collectively* exceed
    # the shrunken machine, in which case later jobs are dropped (their
    # partial reservations rolled back).
    from repro.errors import CapacityExceededError

    for cp in sorted(running, key=lambda c: (c.start, c.job_id)):
        reserved: list[tuple[float, float, int]] = []
        try:
            for pl in cp.placements:
                if pl.end <= tau:
                    continue
                start = max(pl.start, tau)
                new_schedule.profile.reserve(start, pl.end, pl.processors)
                reserved.append((start, pl.end, pl.processors))
        except CapacityExceededError:
            for start, end, procs in reversed(reserved):
                new_schedule.profile.release(start, end, procs)
            dropped.append(cp.job_id)
            continue
        carried.append(cp)

    # Re-admit not-yet-started jobs in release order on the new machine.
    scheduler = GreedyScheduler(new_schedule, policy=policy)
    reallocated: list[tuple[ChainPlacement, ChainPlacement]] = []
    for cp in sorted(future, key=lambda c: (c.release, c.job_id)):
        job = jobs_by_id.get(cp.job_id)
        if job is None:
            raise NegotiationError(
                f"renegotiation needs job {cp.job_id} but it was not supplied"
            )
        new_cp = scheduler.schedule_job(job)
        if new_cp is None:
            dropped.append(cp.job_id)
        else:
            reallocated.append((cp, new_cp))

    return RenegotiationResult(
        schedule=new_schedule,
        finished=tuple(finished),
        carried=tuple(carried),
        reallocated=tuple(reallocated),
        dropped=tuple(dropped),
    )
