"""The application-level QoS agent (Section 3.1).

"The QoS agent, automatically generated from the application's
specification by a preprocessing step, describes the application's
real-time constraints, its resource requirements, and more importantly its
tunability. ... The QoS agent acts on behalf of the application to
negotiate with the QoS arbitrator an appropriate level of resource
reservation/allocation for each task, maximizing the application output
quality."

A :class:`QoSAgent` holds the enumerated execution paths of one program
(built by hand or by :func:`repro.lang.preprocess.build_agent`) and drives
the negotiation round trip; on success it *configures* the application by
returning the control-parameter assignment of the granted path.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.core.arbitrator import QoSArbitrator
from repro.errors import NegotiationError
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.quality import QualityComposition, chain_quality
from repro.qos.contract import ResourceContract
from repro.qos.negotiation import (
    ReservationGrant,
    ReservationReject,
    ReservationRequest,
    negotiate,
)

__all__ = ["QoSAgent"]

#: Callback invoked with the granted parameter assignment; applications
#: register these to reconfigure themselves (set sampling granularity, ...).
ConfigureCallback = Callable[[Mapping[str, object]], None]


class QoSAgent:
    """Negotiates resources for one tunable application.

    Parameters
    ----------
    name:
        Application name (diagnostics only).
    chains:
        The enumerated execution paths, each optionally carrying the
        control-parameter assignment (``chain.params``) that selects it.
    quality_composition:
        How per-task qualities compose when reporting path quality.
    """

    def __init__(
        self,
        name: str,
        chains: Sequence[TaskChain],
        quality_composition: QualityComposition = QualityComposition.PRODUCT,
    ) -> None:
        if not chains:
            raise NegotiationError(f"agent {name!r} has no execution paths")
        self.name = name
        self.chains = tuple(chains)
        self.quality_composition = quality_composition
        self.contract: ResourceContract | None = None
        self._configure_callbacks: list[ConfigureCallback] = []

    # ------------------------------------------------------------------

    @property
    def tunable(self) -> bool:
        """True when the agent offers more than one path."""
        return len(self.chains) > 1

    def path_qualities(self) -> list[float]:
        """Quality of each enumerated path, in chain order."""
        return [chain_quality(c, self.quality_composition) for c in self.chains]

    def on_configure(self, callback: ConfigureCallback) -> None:
        """Register a callback run with the granted parameter assignment."""
        self._configure_callbacks.append(callback)

    def build_request(self, release: float) -> ReservationRequest:
        """The reservation request describing all paths, released at ``release``."""
        job = Job.tunable_of(self.chains, release=release, name=self.name)
        return ReservationRequest(job)

    # ------------------------------------------------------------------

    def negotiate(
        self, arbitrator: QoSArbitrator, release: float
    ) -> ResourceContract | None:
        """Run the static negotiation; configure the application on success.

        Returns the granted contract, or ``None`` on rejection.  The granted
        parameter assignment is pushed to every registered configure
        callback before returning — mirroring "the QoS agent then configures
        the application to execute along that path" (Section 3.2).
        """
        request = self.build_request(release)
        reply = negotiate(arbitrator, request)
        if isinstance(reply, ReservationReject):
            self.contract = None
            return None
        assert isinstance(reply, ReservationGrant)
        self.contract = reply.contract
        for cb in self._configure_callbacks:
            cb(reply.contract.params)
        return reply.contract

    def granted_params(self) -> Mapping[str, object]:
        """Parameter assignment of the current contract.

        Raises :class:`~repro.errors.NegotiationError` when no negotiation
        has succeeded yet.
        """
        if self.contract is None:
            raise NegotiationError(
                f"agent {self.name!r} holds no contract; negotiate first"
            )
        return self.contract.params
