"""End-to-end application manager: program → agent → arbitrator → runtime.

This is the integration point the architecture diagram (Figure 1) implies:
the preprocessor builds a QoS agent from the tunable program; the agent
negotiates a contract with the QoS arbitrator; the granted control
parameters configure the program; and the Calypso runtime then executes the
granted path's steps in order.

A task construct's ``body`` (see :data:`repro.lang.constructs.StepBody`) is
called as ``body(memory, env)`` where ``env`` is the granted parameter
assignment; it either performs sequential work directly on ``memory`` and
returns ``None``, or returns a :class:`~repro.calypso.step.ParallelStep`
for the runtime to execute under eager scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.calypso.runtime import CalypsoRuntime
from repro.calypso.shared import SharedMemory
from repro.calypso.step import ParallelStep, StepReport
from repro.core.arbitrator import QoSArbitrator
from repro.errors import CalypsoError
from repro.lang.preprocess import enumerate_paths_detailed
from repro.lang.program import TunableProgram
from repro.model.job import Job
from repro.qos.agent import QoSAgent
from repro.qos.contract import ResourceContract

__all__ = ["ProgramRun", "ApplicationManager"]


@dataclass(frozen=True, slots=True)
class ProgramRun:
    """Record of one admitted, executed program run."""

    contract: ResourceContract
    params: Mapping[str, object]
    reports: tuple[StepReport, ...]

    @property
    def total_executions(self) -> int:
        """Task executions across all parallel steps (incl. retries)."""
        return sum(r.executions for r in self.reports)

    @property
    def faults_masked(self) -> int:
        """Faults transparently masked across the run."""
        return sum(r.faults_masked for r in self.reports)


class ApplicationManager:
    """Runs one tunable program under QoS management.

    Parameters
    ----------
    program:
        The tunable application specification.
    runtime:
        The Calypso runtime executing parallel steps.
    memory:
        Shared memory pre-populated with the program's inputs.
    """

    def __init__(
        self,
        program: TunableProgram,
        runtime: CalypsoRuntime,
        memory: SharedMemory,
    ) -> None:
        self.program = program
        self.runtime = runtime
        self.memory = memory
        self._paths = enumerate_paths_detailed(program)
        self.agent = QoSAgent(program.name, [p.chain for p in self._paths])

    # ------------------------------------------------------------------

    def submit_only(self, arbitrator: QoSArbitrator, release: float) -> ResourceContract | None:
        """Negotiate without executing (planning/what-if use)."""
        return self.agent.negotiate(arbitrator, release)

    def run(
        self, arbitrator: QoSArbitrator, release: float = 0.0
    ) -> ProgramRun | None:
        """Negotiate, configure, and execute the granted path.

        Returns ``None`` when admission control rejects the application
        (the caller decides whether to retry later, degrade, or drop —
        Section 3 leaves that policy to the application).
        """
        contract = self.agent.negotiate(arbitrator, release)
        if contract is None:
            return None
        path = self._paths[contract.chain_index]
        env = dict(contract.params)
        reports: list[StepReport] = []
        for construct in path.constructs:
            if construct.body is None:
                continue
            outcome = construct.body(self.memory, env)
            if outcome is None:
                continue
            if not isinstance(outcome, ParallelStep):
                raise CalypsoError(
                    f"task {construct.name!r} body returned {type(outcome).__name__}; "
                    "expected ParallelStep or None"
                )
            reports.append(self.runtime.execute_step(outcome, self.memory))
        return ProgramRun(
            contract=contract, params=env, reports=tuple(reports)
        )
