"""Fault injection for exercising Calypso's masking guarantees.

MILAN's execution techniques "provide programmers with the view of a
fault-free virtual shared memory environment, even when the underlying
resources may incur faults and exhibit wide variations in processing
speeds" (Section 2).  The Section 5 experiments assume fault-freeness; the
injectors here let the test suite and the fault-masking example verify the
mechanism instead of assuming it.

Injectors are called by the runtime at the start of every task execution
and raise :class:`TransientFault` to simulate a worker dying mid-task.
"""

from __future__ import annotations

import threading
from typing import Mapping

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams

__all__ = ["TransientFault", "FaultInjector", "DeterministicFaults"]


class TransientFault(Exception):
    """A simulated resource fault inside one task execution.

    Deliberately *not* a :class:`~repro.errors.ReproError`: it models an
    environmental failure, is handled entirely inside the runtime, and must
    never escape a successful step.
    """


class FaultInjector:
    """Probabilistically fail task executions, with a per-task cap.

    Parameters
    ----------
    probability:
        Chance in [0, 1) that any given execution faults.
    streams:
        Seeded randomness (substream ``"faults"``).
    max_faults_per_task:
        Hard cap guaranteeing progress: once a logical task has faulted
        this many times, further executions of it always succeed.
    """

    def __init__(
        self,
        probability: float,
        streams: RandomStreams,
        max_faults_per_task: int = 8,
    ) -> None:
        if not 0 <= probability < 1:
            raise ConfigurationError(
                f"fault probability must be in [0, 1), got {probability}"
            )
        if max_faults_per_task < 0:
            raise ConfigurationError(
                f"max_faults_per_task must be >= 0, got {max_faults_per_task}"
            )
        self.probability = probability
        self.max_faults_per_task = max_faults_per_task
        self._rng = streams.python("faults")
        self._counts: dict[tuple[str, int], int] = {}
        self._lock = threading.Lock()

    @property
    def injected(self) -> int:
        """Total faults injected so far."""
        with self._lock:
            return sum(self._counts.values())

    def before_execution(self, task_key: tuple[str, int]) -> None:
        """Called by the runtime; raises :class:`TransientFault` to fail."""
        with self._lock:
            count = self._counts.get(task_key, 0)
            if count >= self.max_faults_per_task:
                return
            if self._rng.random() < self.probability:
                self._counts[task_key] = count + 1
                raise TransientFault(
                    f"injected fault #{count + 1} in task {task_key!r}"
                )


class DeterministicFaults:
    """Fail scripted executions: task key → number of initial failures.

    ``DeterministicFaults({("work", 0): 2})`` makes the first two
    executions of logical task ``("work", 0)`` fault and every later one
    succeed — the sharpest possible test of exactly-once commit.
    """

    def __init__(self, failures: Mapping[tuple[str, int], int]) -> None:
        for key, n in failures.items():
            if n < 0:
                raise ConfigurationError(
                    f"failure count for {key!r} must be >= 0, got {n}"
                )
        self._remaining = dict(failures)
        self._lock = threading.Lock()
        self.injected = 0

    def before_execution(self, task_key: tuple[str, int]) -> None:
        """Raise :class:`TransientFault` while the task's budget remains."""
        with self._lock:
            remaining = self._remaining.get(task_key, 0)
            if remaining > 0:
                self._remaining[task_key] = remaining - 1
                self.injected += 1
                raise TransientFault(
                    f"scripted fault in task {task_key!r} ({remaining} remaining)"
                )
