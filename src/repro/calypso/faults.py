"""Fault injection for exercising Calypso's masking guarantees.

MILAN's execution techniques "provide programmers with the view of a
fault-free virtual shared memory environment, even when the underlying
resources may incur faults and exhibit wide variations in processing
speeds" (Section 2).  The Section 5 experiments assume fault-freeness; the
injectors here let the test suite and the fault-masking example verify the
mechanism instead of assuming it.

Injectors are called by the runtime at the start of every task execution
and either raise :class:`TransientFault` to simulate a worker dying
mid-task or stall (:class:`SlowNodeInjector`) to simulate the "wide
variations in processing speeds" that eager scheduling masks.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams

__all__ = [
    "TransientFault",
    "FaultInjector",
    "DeterministicFaults",
    "SlowNodeInjector",
]


class TransientFault(Exception):
    """A simulated resource fault inside one task execution.

    Deliberately *not* a :class:`~repro.errors.ReproError`: it models an
    environmental failure, is handled entirely inside the runtime, and must
    never escape a successful step.
    """


class FaultInjector:
    """Probabilistically fail task executions, with a per-task cap.

    Parameters
    ----------
    probability:
        Chance in [0, 1) that any given execution faults.
    streams:
        Seeded randomness (substream ``"faults"``).
    max_faults_per_task:
        Hard cap guaranteeing progress: once a logical task has faulted
        this many times, further executions of it always succeed.
    """

    def __init__(
        self,
        probability: float,
        streams: RandomStreams,
        max_faults_per_task: int = 8,
    ) -> None:
        if not 0 <= probability < 1:
            raise ConfigurationError(
                f"fault probability must be in [0, 1), got {probability}"
            )
        if max_faults_per_task < 0:
            raise ConfigurationError(
                f"max_faults_per_task must be >= 0, got {max_faults_per_task}"
            )
        self.probability = probability
        self.max_faults_per_task = max_faults_per_task
        self._rng = streams.python("faults")
        self._counts: dict[tuple[str, int], int] = {}
        self._lock = threading.Lock()

    @property
    def injected(self) -> int:
        """Total faults injected so far."""
        with self._lock:
            return sum(self._counts.values())

    def before_execution(self, task_key: tuple[str, int]) -> None:
        """Called by the runtime; raises :class:`TransientFault` to fail."""
        with self._lock:
            count = self._counts.get(task_key, 0)
            if count >= self.max_faults_per_task:
                return
            if self._rng.random() < self.probability:
                self._counts[task_key] = count + 1
                raise TransientFault(
                    f"injected fault #{count + 1} in task {task_key!r}"
                )


class DeterministicFaults:
    """Fail scripted executions: task key → number of initial failures.

    ``DeterministicFaults({("work", 0): 2})`` makes the first two
    executions of logical task ``("work", 0)`` fault and every later one
    succeed — the sharpest possible test of exactly-once commit.
    """

    def __init__(self, failures: Mapping[tuple[str, int], int]) -> None:
        for key, n in failures.items():
            if n < 0:
                raise ConfigurationError(
                    f"failure count for {key!r} must be >= 0, got {n}"
                )
        self._remaining = dict(failures)
        self._lock = threading.Lock()
        self.injected = 0

    def before_execution(self, task_key: tuple[str, int]) -> None:
        """Raise :class:`TransientFault` while the task's budget remains."""
        with self._lock:
            remaining = self._remaining.get(task_key, 0)
            if remaining > 0:
                self._remaining[task_key] = remaining - 1
                self.injected += 1
                raise TransientFault(
                    f"scripted fault in task {task_key!r} ({remaining} remaining)"
                )


class SlowNodeInjector:
    """Dilate execution time on designated worker threads (stragglers).

    Workers are addressed by thread name — the runtime names its pool
    ``calypso-0 .. calypso-{n-1}`` — and every execution picked up by a
    slow worker stalls for ``delay`` wall-clock seconds before the task
    body runs.  No fault is raised and no result is discarded: the point
    is that *eager duplication* lets fast workers re-execute the straggling
    tasks, so a step's wall time and results are insulated from slow nodes
    (the straggler-masking half of Section 2's execution techniques).

    Parameters
    ----------
    slow_workers:
        Thread names to slow down (e.g. ``{"calypso-0"}``).
    delay:
        Stall per execution on a slow worker, in seconds (> 0).
    """

    def __init__(self, slow_workers: Iterable[str], delay: float = 0.05) -> None:
        if delay <= 0:
            raise ConfigurationError(f"delay must be positive, got {delay}")
        self.slow_workers = frozenset(slow_workers)
        self.delay = delay
        self._lock = threading.Lock()
        self.delays_injected = 0

    def before_execution(self, task_key: tuple[str, int]) -> None:
        """Stall when running on a slow worker; never faults."""
        if threading.current_thread().name in self.slow_workers:
            with self._lock:
                self.delays_injected += 1
            time.sleep(self.delay)
