"""A Calypso-like parallel execution substrate (Section 2).

Calypso "views computations as consisting of several parallel tasks
inserted into a sequential program", with CREW (concurrent-read,
exclusive-write) semantics over shared data — "updates visible only at the
end of the current step" — and idempotent parallel tasks executed under
*two-phase idempotent execution* and *eager scheduling*, which together
mask faults and speed variation.

This package reproduces those execution semantics in-process:

* :mod:`repro.calypso.shared` — shared memory with per-step snapshots and
  buffered, conflict-checked writes (the two phases);
* :mod:`repro.calypso.routine` / :mod:`repro.calypso.step` — the
  ``parbegin`` / ``routine`` / ``parend`` constructs;
* :mod:`repro.calypso.runtime` — a thread-pool executor with eager
  scheduling (re-execution of unfinished tasks) and exactly-once commit;
* :mod:`repro.calypso.faults` — fault injection to exercise the masking;
* :mod:`repro.calypso.manager` — ties a tunable program, its QoS agent and
  the runtime together end-to-end.

Performance numbers never come from this substrate (the GIL makes
wall-clock parallel utilization meaningless in CPython); it exists to make
the *semantics* the paper relies on real and testable.
"""

from repro.calypso.shared import SharedMemory, TaskView
from repro.calypso.routine import Routine
from repro.calypso.step import ParallelStep, StepReport
from repro.calypso.runtime import CalypsoRuntime
from repro.calypso.faults import (
    FaultInjector,
    DeterministicFaults,
    SlowNodeInjector,
    TransientFault,
)
from repro.calypso.manager import ApplicationManager, ProgramRun

__all__ = [
    "SharedMemory",
    "TaskView",
    "Routine",
    "ParallelStep",
    "StepReport",
    "CalypsoRuntime",
    "FaultInjector",
    "DeterministicFaults",
    "SlowNodeInjector",
    "TransientFault",
    "ApplicationManager",
    "ProgramRun",
]
