"""Parallel steps: ``parbegin ... parend``.

"parbegin and parend help delimit a parallel step consisting of a sequence
of routine statements. ... Concurrency exists both inside one routine, as
well as among multiple routines within the same parallel step."

A :class:`ParallelStep` is pure structure; the runtime executes it.  Each
routine statement with ``copies = n`` contributes ``n`` *logical tasks*
``(routine_name, number)`` with ``number in [0, n)`` — the unit of
exactly-once commit under eager scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.calypso.routine import Routine
from repro.errors import CalypsoError

__all__ = ["LogicalTask", "ParallelStep", "StepReport"]


@dataclass(frozen=True, slots=True)
class LogicalTask:
    """One unit of work in a parallel step: copy ``number`` of ``routine``."""

    routine: Routine
    number: int

    @property
    def key(self) -> tuple[str, int]:
        """Stable identity used for commit bookkeeping and CREW reporting."""
        return (self.routine.name, self.number)

    @property
    def width(self) -> int:
        """The ``width`` argument the body receives (copies of its routine)."""
        return self.routine.copies


@dataclass(frozen=True, slots=True)
class ParallelStep:
    """An ordered set of routine statements executed concurrently."""

    routines: tuple[Routine, ...]
    name: str = ""

    def __post_init__(self) -> None:
        routines = []
        for i, r in enumerate(self.routines):
            if not r.name:
                r = Routine(body=r.body, copies=r.copies, name=f"routine{i}")
            routines.append(r)
        object.__setattr__(self, "routines", tuple(routines))
        if not self.routines:
            raise CalypsoError(f"parallel step {self.name!r} has no routines")
        names = [r.name for r in self.routines]
        if len(set(names)) != len(names):
            raise CalypsoError(
                f"parallel step {self.name!r} has duplicate routine names: {names}"
            )

    def logical_tasks(self) -> list[LogicalTask]:
        """All ``(routine, number)`` tasks of this step, in document order."""
        return [
            LogicalTask(routine, number)
            for routine in self.routines
            for number in range(routine.copies)
        ]

    @property
    def total_tasks(self) -> int:
        """Total logical-task count across all routine statements."""
        return sum(r.copies for r in self.routines)


@dataclass(frozen=True, slots=True)
class StepReport:
    """What happened while executing one parallel step.

    Attributes
    ----------
    step_name:
        The step's name.
    tasks:
        Number of logical tasks committed (always the step's total on
        success — commit is all-or-nothing per step).
    executions:
        Total task executions, including faulted attempts and eager
        duplicates; ``executions >= tasks``.
    faults_masked:
        Executions that raised a (simulated or real) fault and were
        transparently retried.
    duplicates:
        Extra executions launched by eager scheduling beyond the first
        attempt per task (excluding fault retries).
    committed:
        The merged shared-memory update applied at the end of the step.
    """

    step_name: str
    tasks: int
    executions: int
    faults_masked: int
    duplicates: int
    committed: Mapping[str, object] = field(default_factory=dict)

    @property
    def overhead_ratio(self) -> float:
        """Executions per logical task (1.0 = no re-execution at all)."""
        return self.executions / self.tasks if self.tasks else 0.0
