"""Shared memory with CREW, step-snapshot semantics.

"Within a parallel step, Calypso supports CREW (concurrent read, exclusive
write) semantics to shared data structures, with updates visible only at
the end of the current step."

Two-phase idempotent execution maps onto this as: phase one, every task
execution reads from an immutable snapshot taken at step begin and buffers
its writes privately (:class:`TaskView`); phase two, the step commit merges
exactly one buffer per *logical* task into the shared store — re-executions
of the same logical task (eager scheduling, fault masking) are therefore
harmless, and write conflicts *between* logical tasks are detected at
commit.
"""

from __future__ import annotations

import threading
from typing import Iterator, Mapping

from repro.errors import CalypsoError, ConcurrentWriteError

__all__ = ["SharedMemory", "TaskView"]


class SharedMemory:
    """The ``shared`` variables of a Calypso program.

    A flat name → value store.  Values should be treated as immutable by
    routine bodies (replace, don't mutate) — the runtime snapshots by
    reference, exactly like Calypso's page-level isolation makes in-place
    mutation of shared state invisible until commit.
    """

    def __init__(self, **initial: object) -> None:
        self._data: dict[str, object] = dict(initial)
        self._lock = threading.Lock()

    def declare(self, name: str, value: object) -> None:
        """Declare a shared variable (the ``shared`` keyword)."""
        with self._lock:
            if name in self._data:
                raise CalypsoError(f"shared variable {name!r} re-declared")
            self._data[name] = value

    def __getitem__(self, name: str) -> object:
        with self._lock:
            try:
                return self._data[name]
            except KeyError:
                raise CalypsoError(f"undeclared shared variable {name!r}") from None

    def __setitem__(self, name: str, value: object) -> None:
        # Sequential-code writes between steps are unrestricted.
        with self._lock:
            self._data[name] = value

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._data

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._data))

    def snapshot(self) -> dict[str, object]:
        """Immutable-by-convention view of the store at step begin."""
        with self._lock:
            return dict(self._data)

    def apply(self, updates: Mapping[str, object]) -> None:
        """Commit a step's merged updates (phase two)."""
        with self._lock:
            for name, value in updates.items():
                if name not in self._data:
                    raise CalypsoError(
                        f"step commit writes undeclared shared variable {name!r}"
                    )
                self._data[name] = value


class TaskView:
    """One task execution's window onto shared memory.

    Reads hit the execution's own buffered writes first, then the step
    snapshot; writes go to the private buffer only.  Each *execution* (not
    each logical task) gets a fresh view, making executions idempotent: a
    re-run sees exactly the same snapshot and produces an equivalent buffer.
    """

    __slots__ = ("_snapshot", "_writes")

    def __init__(self, snapshot: Mapping[str, object]) -> None:
        self._snapshot = snapshot
        self._writes: dict[str, object] = {}

    def __getitem__(self, name: str) -> object:
        if name in self._writes:
            return self._writes[name]
        try:
            return self._snapshot[name]
        except KeyError:
            raise CalypsoError(f"undeclared shared variable {name!r}") from None

    def __setitem__(self, name: str, value: object) -> None:
        if name not in self._snapshot:
            raise CalypsoError(
                f"routine writes undeclared shared variable {name!r}"
            )
        self._writes[name] = value

    def __contains__(self, name: object) -> bool:
        return name in self._writes or name in self._snapshot

    @property
    def writes(self) -> dict[str, object]:
        """The buffered writes of this execution."""
        return dict(self._writes)


def merge_buffers(
    buffers: Mapping[tuple[str, int], Mapping[str, object]],
) -> dict[str, object]:
    """Merge per-logical-task write buffers, enforcing exclusive write.

    ``buffers`` maps logical task keys ``(routine_name, number)`` to their
    committed write sets.  Two *different* logical tasks writing the same
    shared variable violate CREW and raise
    :class:`~repro.errors.ConcurrentWriteError` regardless of the values
    written (exclusive write is about ownership, not coincidence).
    """
    merged: dict[str, object] = {}
    writer: dict[str, tuple[str, int]] = {}
    for key in sorted(buffers):
        for name, value in buffers[key].items():
            if name in writer and writer[name] != key:
                raise ConcurrentWriteError(
                    f"shared variable {name!r} written by both task "
                    f"{writer[name]!r} and task {key!r} in one parallel step"
                )
            writer[name] = key
            merged[name] = value
    return merged
