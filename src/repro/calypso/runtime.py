"""The Calypso runtime: eager scheduling with exactly-once commit.

"MILAN takes advantage of two execution techniques with strong theoretical
foundations — two-phase idempotent execution strategy, and eager scheduling
— to provide programmers with the view of a fault-free virtual shared
memory environment" (Section 2).

Execution model implemented here:

* Every *execution* of a logical task runs against the step-begin snapshot
  with a private write buffer (phase one) — so executions are idempotent
  and mutually isolated.
* Workers pull tasks from a queue; a faulted execution re-queues its task
  (fault masking).  When the queue drains while tasks are still in flight,
  idle workers *eagerly re-execute* in-flight tasks (straggler masking) up
  to a per-task execution cap.
* The first completed execution of each logical task wins; its buffer is
  the one merged and committed at step end (phase two, exactly-once).

Threads here give real concurrency semantics (races, interleavings) even
though the GIL serializes CPU work — which is why performance is always
measured on the virtual-time simulator instead (see DESIGN.md).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Protocol

from repro.calypso.shared import SharedMemory, TaskView, merge_buffers
from repro.calypso.step import LogicalTask, ParallelStep, StepReport
from repro.calypso.faults import TransientFault
from repro.errors import CalypsoError, ConfigurationError

__all__ = ["CalypsoRuntime"]


class _Injector(Protocol):
    def before_execution(self, task_key: tuple[str, int]) -> None: ...


class CalypsoRuntime:
    """Executes parallel steps on a pool of worker threads.

    Parameters
    ----------
    workers:
        Worker thread count (>= 1).
    fault_injector:
        Optional injector whose ``before_execution`` hook may raise
        :class:`~repro.calypso.faults.TransientFault`.
    eager_duplication:
        Enable eager re-execution of in-flight tasks by idle workers.  With
        one worker this never triggers.
    max_executions_per_task:
        Hard bound on total executions of any one logical task; exceeding
        it raises :class:`~repro.errors.CalypsoError` (a fault injector
        with unbounded per-task failures would otherwise spin forever).
    """

    def __init__(
        self,
        workers: int = 4,
        fault_injector: _Injector | None = None,
        eager_duplication: bool = True,
        max_executions_per_task: int = 32,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if max_executions_per_task < 1:
            raise ConfigurationError(
                f"max_executions_per_task must be >= 1, got {max_executions_per_task}"
            )
        self.workers = workers
        self.fault_injector = fault_injector
        self.eager_duplication = eager_duplication
        self.max_executions_per_task = max_executions_per_task

    # ------------------------------------------------------------------

    def execute_step(self, step: ParallelStep, memory: SharedMemory) -> StepReport:
        """Run one parallel step to completion and commit its updates.

        Raises the first non-fault exception any routine body raised (a
        *program* error is never masked), or
        :class:`~repro.errors.ConcurrentWriteError` if the step violated
        CREW.  On success the merged updates are applied to ``memory`` and
        a :class:`~repro.calypso.step.StepReport` is returned.
        """
        snapshot = memory.snapshot()
        tasks = step.logical_tasks()

        lock = threading.Lock()
        work_ready = threading.Condition(lock)
        queue: deque[LogicalTask] = deque(tasks)
        pending: dict[tuple[str, int], LogicalTask] = {t.key: t for t in tasks}
        results: dict[tuple[str, int], dict[str, object]] = {}
        exec_counts: dict[tuple[str, int], int] = {t.key: 0 for t in tasks}
        stats = {"executions": 0, "faults": 0, "duplicates": 0}
        errors: list[BaseException] = []

        def next_task() -> LogicalTask | None:
            """Pick work under the lock; None means the step is over."""
            while True:
                if not pending or errors:
                    return None
                if queue:
                    task = queue.popleft()
                    if task.key not in pending:
                        continue  # finished while queued (eager duplicate won)
                    return task
                if self.eager_duplication:
                    # Eager scheduling: duplicate the in-flight task with the
                    # fewest executions so far, if its budget allows.
                    candidates = [
                        t
                        for t in pending.values()
                        if exec_counts[t.key] < self.max_executions_per_task
                    ]
                    if candidates:
                        task = min(candidates, key=lambda t: exec_counts[t.key])
                        stats["duplicates"] += 1
                        return task
                # Nothing to do but wait for a fault-requeue or completion.
                work_ready.wait()

        def worker() -> None:
            while True:
                with lock:
                    task = next_task()
                    if task is None:
                        work_ready.notify_all()
                        return
                    exec_counts[task.key] += 1
                    if exec_counts[task.key] > self.max_executions_per_task:
                        errors.append(
                            CalypsoError(
                                f"task {task.key!r} exceeded "
                                f"{self.max_executions_per_task} executions"
                            )
                        )
                        work_ready.notify_all()
                        return
                    stats["executions"] += 1
                try:
                    if self.fault_injector is not None:
                        self.fault_injector.before_execution(task.key)
                    view = TaskView(snapshot)
                    task.routine.body(view, task.width, task.number)
                except TransientFault:
                    with lock:
                        stats["faults"] += 1
                        if task.key in pending:
                            queue.append(task)
                        work_ready.notify_all()
                    continue
                except BaseException as exc:  # program error: never masked
                    with lock:
                        errors.append(exc)
                        work_ready.notify_all()
                    return
                with lock:
                    if task.key in pending:
                        results[task.key] = view.writes
                        del pending[task.key]
                    work_ready.notify_all()
                    if not pending:
                        return

        threads = [
            threading.Thread(target=worker, name=f"calypso-{i}", daemon=True)
            for i in range(min(self.workers, max(len(tasks), 1)))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if errors:
            raise errors[0]
        if pending:  # pragma: no cover - defensive
            raise CalypsoError(f"step ended with unfinished tasks: {sorted(pending)}")

        committed = merge_buffers(results)
        memory.apply(committed)
        return StepReport(
            step_name=step.name,
            tasks=len(tasks),
            executions=stats["executions"],
            faults_masked=stats["faults"],
            duplicates=stats["duplicates"],
            committed=committed,
        )

    def execute_steps(
        self, steps: list[ParallelStep], memory: SharedMemory
    ) -> list[StepReport]:
        """Run several steps in sequence (the Calypso program structure)."""
        return [self.execute_step(step, memory) for step in steps]
