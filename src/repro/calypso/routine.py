"""The ``routine`` statement.

.. code-block:: text

    routine [int-exp](int width, int number)
        routine-body

"routine-body1 and routine-body2 are sequential C++ program fragments,
int-exp specifies an integer expression indicating the number of copies of
each routine to be created within the parallel step, and width and number
are arguments provided to each task denoting, respectively, the number of
tasks created and the sequence number of the specific task among these
tasks."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.calypso.shared import TaskView
from repro.errors import CalypsoError

__all__ = ["Routine", "RoutineBody"]

#: A routine body: (view, width, number) -> None.  Results are communicated
#: exclusively through shared-memory writes on the view, exactly as in
#: Calypso; return values are ignored.
RoutineBody = Callable[[TaskView, int, int], object]


@dataclass(frozen=True, slots=True)
class Routine:
    """One ``routine`` statement inside a parallel step.

    Attributes
    ----------
    body:
        The sequential program fragment run by each copy.
    copies:
        The ``int-exp`` — how many task copies to create.
    name:
        Identifier used for conflict reporting and logical-task keys;
        must be unique within its parallel step.
    """

    body: RoutineBody
    copies: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        if not callable(self.body):
            raise CalypsoError(f"routine body {self.body!r} is not callable")
        if not isinstance(self.copies, int) or isinstance(self.copies, bool) or self.copies < 1:
            raise CalypsoError(
                f"routine {self.name!r}: copies must be a positive int, got "
                f"{self.copies!r}"
            )
