"""Markdown report generation from experiment results.

Renders sweep results and comparison rows into the markdown shapes used by
EXPERIMENTS.md, so regenerated runs can be diffed against the committed
record.  Also provides a JSON round-trip for archiving raw numbers.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.workloads.sweep import SweepResult

__all__ = [
    "sweep_to_markdown",
    "sweep_to_json",
    "sweep_from_json_summary",
    "benefit_summary",
]


def sweep_to_markdown(
    sweep: SweepResult, metric: str = "throughput", precision: int = 3
) -> str:
    """One metric of a sweep as a GitHub-flavoured markdown table."""
    header = [sweep.axis, *sweep.systems]
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for value in sweep.values:
        cells = [format(value, "g")]
        for system in sweep.systems:
            raw = sweep.rows[value][system].as_dict()[metric]
            cells.append(
                format(raw, f".{precision}f") if isinstance(raw, float) else str(raw)
            )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def sweep_to_json(sweep: SweepResult) -> str:
    """Archive a sweep's full metric set as JSON text."""
    payload = {
        "axis": sweep.axis,
        "values": list(sweep.values),
        "systems": list(sweep.systems),
        "metrics": {
            format(value, "g"): {
                system: sweep.rows[value][system].as_dict()
                for system in sweep.systems
            }
            for value in sweep.values
        },
        "config": {
            "processors": sweep.config.processors,
            "interval": sweep.config.interval,
            "n_jobs": sweep.config.n_jobs,
            "seed": sweep.config.seed,
            "malleable": sweep.config.malleable,
            "x": sweep.config.params.x,
            "t": sweep.config.params.t,
            "alpha": sweep.config.params.alpha,
            "laxity": sweep.config.params.laxity,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def sweep_from_json_summary(text: str) -> dict[str, object]:
    """Parse an archived sweep back into a plain summary dict.

    Returns the decoded payload after structural validation (axis, values,
    systems, metrics keys present and consistent); raw
    :class:`~repro.sim.metrics.RunMetrics` are *not* reconstructed — the
    summary is for diffing and plotting, not resumption.
    """
    payload = json.loads(text)
    for key in ("axis", "values", "systems", "metrics", "config"):
        if key not in payload:
            raise ConfigurationError(f"archived sweep missing key {key!r}")
    for value in payload["values"]:
        bucket = payload["metrics"].get(format(value, "g"))
        if bucket is None:
            raise ConfigurationError(f"archived sweep missing value {value!r}")
        for system in payload["systems"]:
            if system not in bucket:
                raise ConfigurationError(
                    f"archived sweep missing system {system!r} at {value!r}"
                )
    return payload


def benefit_summary(
    sweep: SweepResult, metric: str = "throughput"
) -> list[dict[str, float]]:
    """Per-value benefit rows (tunable − each rigid shape) for a sweep."""
    if "tunable" not in sweep.systems:
        raise ConfigurationError("benefit_summary needs the tunable system")
    rows = []
    for value in sweep.values:
        tun = float(sweep.rows[value]["tunable"].as_dict()[metric])
        row: dict[str, float] = {sweep.axis: value, "tunable": tun}
        for system in sweep.systems:
            if system == "tunable":
                continue
            base = float(sweep.rows[value][system].as_dict()[metric])
            row[f"benefit_over_{system}"] = tun - base
        rows.append(row)
    return rows
