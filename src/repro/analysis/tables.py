"""Fixed-width text tables for experiment output.

The benchmark harnesses print the same rows/series the paper's figures
plot; these helpers render them readably in terminals, logs and
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["format_table", "format_sweep"]


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    precision: int = 3,
    title: str = "",
) -> str:
    """Render dict rows as an aligned text table.

    ``columns`` selects and orders the columns (default: keys of the first
    row).  Missing cells render as ``-``.
    """
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    if not cols:
        raise ConfigurationError("format_table needs at least one column")
    rendered = [
        [_fmt(row.get(c, "-"), precision) for c in cols] for row in rows
    ]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.rjust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines) + "\n"


def format_sweep(
    sweep: "object",
    metric: str = "throughput",
    precision: int = 3,
    title: str = "",
) -> str:
    """Render one metric of a :class:`~repro.workloads.sweep.SweepResult`.

    One row per swept value, one column per task system — the exact layout
    of the paper's figure series.
    """
    rows = []
    for value in sweep.values:  # type: ignore[attr-defined]
        # Axis values render with %g regardless of the metric precision
        # (precision=0 on a laxity axis must not collapse 0.05 to 0).
        row: dict[str, object] = {sweep.axis: format(value, "g")}  # type: ignore[attr-defined]
        for system in sweep.systems:  # type: ignore[attr-defined]
            row[system] = sweep.rows[value][system].as_dict()[metric]  # type: ignore[attr-defined]
        rows.append(row)
    return format_table(rows, precision=precision, title=title or f"{metric} vs {sweep.axis}")  # type: ignore[attr-defined]
