"""SVG Gantt rendering of committed schedules.

A stdlib-only SVG writer: time on the x axis, one row per *physical
processor* (via :func:`repro.core.assignment.assign_processors`), one
colored rectangle per task slice, colored by job.  Produces self-contained
SVG text suitable for writing to a file and opening in any browser — the
offline counterpart of the ASCII charts.
"""

from __future__ import annotations

import html
from dataclasses import dataclass

from repro.core.assignment import assign_processors
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError

__all__ = ["render_svg_gantt"]

#: Job colors cycle through a colorblind-safe palette.
_PALETTE = (
    "#4477AA",
    "#EE6677",
    "#228833",
    "#CCBB44",
    "#66CCEE",
    "#AA3377",
    "#BBBBBB",
)

_ROW_H = 22
_MARGIN_LEFT = 56
_MARGIN_TOP = 30
_MARGIN_BOTTOM = 34


@dataclass(frozen=True, slots=True)
class _Geometry:
    t0: float
    t1: float
    width: int

    def x(self, t: float) -> float:
        return _MARGIN_LEFT + (t - self.t0) / (self.t1 - self.t0) * self.width


def render_svg_gantt(
    schedule: Schedule,
    width: int = 900,
    title: str = "",
) -> str:
    """Render the schedule as an SVG document string.

    Raises :class:`~repro.errors.ConfigurationError` on an empty schedule
    (nothing to draw) or a non-positive width.
    """
    if width <= 0:
        raise ConfigurationError(f"width must be positive, got {width}")
    slices = assign_processors(schedule)
    if not slices:
        raise ConfigurationError("cannot render an empty schedule")

    t0 = min(s.start for s in slices)
    t1 = max(s.end for s in slices)
    if t1 <= t0:
        t1 = t0 + 1.0
    geo = _Geometry(t0, t1, width)
    rows = schedule.capacity
    height = _MARGIN_TOP + rows * _ROW_H + _MARGIN_BOTTOM

    parts: list[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{_MARGIN_LEFT + width + 16}" height="{height}" '
        f'font-family="monospace" font-size="11">'
    )
    if title:
        parts.append(
            f'<text x="{_MARGIN_LEFT}" y="16" font-size="13">'
            f"{html.escape(title)}</text>"
        )

    # Row backgrounds and labels.
    for proc in range(rows):
        y = _MARGIN_TOP + proc * _ROW_H
        fill = "#f6f6f6" if proc % 2 else "#ededed"
        parts.append(
            f'<rect x="{_MARGIN_LEFT}" y="{y}" width="{width}" '
            f'height="{_ROW_H}" fill="{fill}"/>'
        )
        parts.append(
            f'<text x="6" y="{y + _ROW_H - 7}">p{proc}</text>'
        )

    # Task slices.
    for s in slices:
        x = geo.x(s.start)
        w = max(geo.x(s.end) - x, 1.0)
        y = _MARGIN_TOP + s.processor * _ROW_H + 2
        color = _PALETTE[s.job_id % len(_PALETTE)]
        label = html.escape(f"job {s.job_id} {s.task} [{s.start:g},{s.end:g})")
        parts.append(
            f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" height="{_ROW_H - 4}" '
            f'fill="{color}" stroke="#333" stroke-width="0.5">'
            f"<title>{label}</title></rect>"
        )

    # Time axis: ~8 ticks at round-ish positions.
    n_ticks = 8
    axis_y = _MARGIN_TOP + rows * _ROW_H
    for i in range(n_ticks + 1):
        t = t0 + (t1 - t0) * i / n_ticks
        x = geo.x(t)
        parts.append(
            f'<line x1="{x:.2f}" y1="{axis_y}" x2="{x:.2f}" '
            f'y2="{axis_y + 5}" stroke="#333"/>'
        )
        parts.append(
            f'<text x="{x:.2f}" y="{axis_y + 18}" text-anchor="middle">'
            f"{t:g}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)
