"""Summary statistics for experiment repetitions.

The paper reports single 10,000-arrival runs; for the scaled-down defaults
this module adds seed-replication confidence intervals so shape assertions
in the benchmark harness are not fooled by one lucky seed.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy import stats as sps

from repro.errors import ConfigurationError

__all__ = ["mean_ci", "bootstrap_ci", "relative_benefit"]


def mean_ci(
    samples: Sequence[float], confidence: float = 0.95
) -> tuple[float, float, float]:
    """Mean and Student-t confidence interval ``(mean, lo, hi)``.

    With a single sample the interval degenerates to the point.
    """
    if not samples:
        raise ConfigurationError("mean_ci requires at least one sample")
    if not 0 < confidence < 1:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    arr = np.asarray(samples, dtype=np.float64)
    mean = float(arr.mean())
    if arr.size == 1:
        return (mean, mean, mean)
    sem = float(arr.std(ddof=1) / math.sqrt(arr.size))
    if sem == 0:
        return (mean, mean, mean)
    half = float(sps.t.ppf(0.5 + confidence / 2, df=arr.size - 1)) * sem
    return (mean, mean - half, mean + half)


def bootstrap_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Percentile-bootstrap CI of the mean ``(mean, lo, hi)``."""
    if not samples:
        raise ConfigurationError("bootstrap_ci requires at least one sample")
    arr = np.asarray(samples, dtype=np.float64)
    mean = float(arr.mean())
    if arr.size == 1:
        return (mean, mean, mean)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1 - confidence) / 2
    lo, hi = np.quantile(means, [alpha, 1 - alpha])
    return (mean, float(lo), float(hi))


def relative_benefit(tunable: float, baseline: float) -> float:
    """Fractional improvement of ``tunable`` over ``baseline``.

    Returns ``(tunable - baseline) / baseline``; 0 when the baseline is 0
    and the tunable value is too, ``inf`` when only the baseline is 0.
    """
    if baseline == 0:
        return 0.0 if tunable == 0 else math.inf
    return (tunable - baseline) / baseline
