"""Result rendering and statistics: tables, ASCII plots, summary stats."""

from repro.analysis.tables import format_table, format_sweep
from repro.analysis.plots import ascii_chart, sweep_chart
from repro.analysis.stats import mean_ci, bootstrap_ci, relative_benefit
from repro.analysis.svg import render_svg_gantt
from repro.analysis.report import (
    benefit_summary,
    sweep_from_json_summary,
    sweep_to_json,
    sweep_to_markdown,
)

__all__ = [
    "format_table",
    "format_sweep",
    "ascii_chart",
    "sweep_chart",
    "mean_ci",
    "bootstrap_ci",
    "relative_benefit",
    "render_svg_gantt",
    "sweep_to_markdown",
    "sweep_to_json",
    "sweep_from_json_summary",
    "benefit_summary",
]
