"""ASCII line charts for sweep results.

Offline-friendly stand-ins for the paper's figure plots: multiple series
over a shared x axis, one glyph per series, rendered into a character
grid.  These are for eyeballing trends in terminals and CI logs; the
numbers themselves live in the tables.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["ascii_chart", "sweep_chart"]

_GLYPHS = "ox+*#@%&"


def ascii_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Plot ``series`` (name → y values over shared ``x``) as ASCII art."""
    if not x or not series:
        raise ConfigurationError("ascii_chart needs x values and one series")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points for {len(x)} x values"
            )
    all_y = [y for ys in series.values() for y in ys if not math.isnan(y)]
    if not all_y:
        raise ConfigurationError("all series values are NaN")
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(x), max(x)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        for xv, yv in zip(x, ys):
            if math.isnan(yv):
                continue
            col = round((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{y_lo:g}, {y_hi:g}]")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"x: [{x_lo:g}, {x_hi:g}]")
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines) + "\n"


def sweep_chart(
    sweep: "object", metric: str = "throughput", title: str = "", **kwargs: int
) -> str:
    """Chart one metric of a :class:`~repro.workloads.sweep.SweepResult`."""
    series = {
        system: sweep.series(system, metric)  # type: ignore[attr-defined]
        for system in sweep.systems  # type: ignore[attr-defined]
    }
    return ascii_chart(
        list(sweep.values),  # type: ignore[attr-defined]
        series,
        title=title or f"{metric} vs {sweep.axis}",  # type: ignore[attr-defined]
        **kwargs,
    )
