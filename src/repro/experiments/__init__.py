"""Experiment runners — one per paper table/figure, plus ablations.

Each runner regenerates the rows/series of one figure of the paper's
evaluation section (see DESIGN.md's per-experiment index) and returns both
the raw results and a rendered text report.  ``python -m repro.experiments
<id>`` runs one from the command line; the benchmark harness under
``benchmarks/`` wraps the same runners in pytest-benchmark.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
