"""Extension experiment: quality degradation under load.

Runs the quality-tiered workload (:mod:`repro.workloads.tiers`) across
arrival intervals under both arbitration objectives and reports admission,
achieved quality and tier usage — the "maximizing the achieved job quality"
problem Section 5.1 points at but defers.

Measured shape (recorded in EXPERIMENTS.md): both objectives degrade
*gracefully* — the achieved-quality ratio falls smoothly with load, with
the premium tier's share shrinking first to standard, then economy.  The
two objectives end up close: narrower tiers are no faster here, so the
earliest-finish arbitrator's utilization tie-break already favours the
wide premium tier when it fits, while MAX_QUALITY's insistence on the top
feasible tier costs it a few admissions under overload.  The experiment's
value is the degradation curve itself, which the paper's equal-quality
model cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.arbitrator import ArbitrationObjective, QoSArbitrator
from repro.sim.arrivals import PoissonArrivals
from repro.sim.rng import RandomStreams
from repro.sim.simulator import simulate_arrivals
from repro.workloads import presets
from repro.workloads.tiers import TieredParams

__all__ = ["QualityPoint", "run_quality_degradation", "render_quality"]


@dataclass(frozen=True, slots=True)
class QualityPoint:
    """One (interval, objective) outcome."""

    interval: float
    objective: str
    offered: int
    admitted: int
    quality_ratio: float
    tier_usage: dict[str, int]

    def as_dict(self) -> dict[str, object]:
        row: dict[str, object] = {
            "interval": self.interval,
            "objective": self.objective,
            "admitted": self.admitted,
            "quality_ratio": self.quality_ratio,
        }
        for label, count in self.tier_usage.items():
            row[label] = count
        return row


def run_quality_degradation(
    intervals: tuple[float, ...] = (15.0, 30.0, 45.0, 60.0, 85.0),
    n_jobs: int | None = None,
    seed: int = presets.DEFAULT_SEED,
    processors: int = presets.DEFAULT_PROCESSORS,
    params: TieredParams | None = None,
) -> list[QualityPoint]:
    """Sweep load under both objectives on the tiered workload."""
    params = params or TieredParams(base=presets.default_params())
    n = presets.n_jobs(n_jobs)
    points: list[QualityPoint] = []
    for interval in intervals:
        for objective in (
            ArbitrationObjective.MAX_QUALITY,
            ArbitrationObjective.EARLIEST_FINISH,
        ):
            arbitrator = QoSArbitrator(
                processors, objective=objective, keep_placements=False
            )
            metrics = simulate_arrivals(
                arbitrator,
                lambda i, release: params.tiered_job(release),
                PoissonArrivals(interval, RandomStreams(seed)),
                n,
            )
            usage: dict[str, int] = {t.label: 0 for t in params.tiers}
            for chain_index, count in metrics.chain_usage.items():
                usage[params.tier_of_chain_index(chain_index).label] += count
            points.append(
                QualityPoint(
                    interval=interval,
                    objective=objective.value,
                    offered=n,
                    admitted=metrics.admitted,
                    quality_ratio=arbitrator.quality_ratio,
                    tier_usage=usage,
                )
            )
    return points


def render_quality(points: list[QualityPoint]) -> str:
    """Comparison table across load and objectives."""
    return format_table(
        [p.as_dict() for p in points],
        precision=3,
        title="extension: quality degradation under load (tiered workload)",
    )
