"""Experiment registry: id → runner returning a rendered text report."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.experiments import ablations
from repro.experiments.fig5 import (
    render_fig5,
    run_fig5a,
    run_fig5b,
    run_fig5c,
    run_fig5d,
)
from repro.experiments.fig6 import render_fig6, run_fig6a, run_fig6b
from repro.experiments.best_effort import (
    render_best_effort,
    run_best_effort_comparison,
)
from repro.experiments.faults import render_faults, run_faults
from repro.experiments.junction_fig2 import render_fig2, run_fig2
from repro.experiments.quality import render_quality, run_quality_degradation
from repro.experiments.reconfig import render_reconfig, run_reconfig
from repro.experiments.survival import render_survival, run_survival

__all__ = ["EXPERIMENTS", "run_experiment", "unknown_experiments"]

Runner = Callable[[], str]

EXPERIMENTS: dict[str, Runner] = {
    "fig5a": lambda: render_fig5(run_fig5a(), "a"),
    "fig5b": lambda: render_fig5(run_fig5b(), "b"),
    "fig5c": lambda: render_fig5(run_fig5c(), "c"),
    "fig5d": lambda: render_fig5(run_fig5d(), "d"),
    "fig6a": lambda: render_fig6(run_fig6a()),
    "fig6b": lambda: render_fig6(run_fig6b()),
    "fig2": lambda: render_fig2(run_fig2()),
    "best-effort": lambda: render_best_effort(run_best_effort_comparison()),
    "quality": lambda: render_quality(run_quality_degradation()),
    "survival": lambda: render_survival(run_survival()),
    "faults": lambda: render_faults(run_faults()),
    "reconfig": lambda: render_reconfig(run_reconfig()),
    "ablation-policy": ablations.ablation_policy,
    "ablation-malleable": ablations.ablation_malleable_strategy,
    "ablation-fit": ablations.ablation_fit_rule,
    "ablation-conservative": ablations.ablation_conservative,
    "ablation-bursty": ablations.ablation_bursty,
}


def unknown_experiments(experiment_ids: list[str]) -> list[str]:
    """The subset of ``experiment_ids`` not present in the registry."""
    return [e for e in experiment_ids if e not in EXPERIMENTS]


def run_experiment(experiment_id: str) -> str:
    """Run one registered experiment and return its text report."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return runner()
