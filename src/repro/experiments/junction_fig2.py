"""Figure 2: the junction-detection tunability trade-off.

"Figure 2 demonstrates this tunability, showing two configurations with
different sampling granularities, different thresholds for drawing the
regions of interest, and consequently different resource requirements for
the third step."

The runner profiles both default configurations over several synthetic
images and reports per-step work/durations, total resource area and
measured output quality (F1) — the quantitative content the paper's figure
conveys pictorially.  The headline claims checked by the bench: coarse
sampling cuts step-1 work by ~the granularity ratio, inflates step-3 work,
and holds comparable quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.apps.junction import (
    DEFAULT_CONFIGS,
    JunctionConfig,
    profile_configuration,
    synthetic_image,
)

__all__ = ["Fig2Row", "run_fig2", "render_fig2"]


@dataclass(frozen=True, slots=True)
class Fig2Row:
    """Averaged profile of one configuration across the image set."""

    label: str
    granularity: int
    search_distance: float
    step1_work: float
    step2_work: float
    step3_work: float
    step1_duration: float
    step3_duration: float
    total_area: float
    f1: float

    def as_dict(self) -> dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "config": self.label,
            "granularity": self.granularity,
            "search_dist": self.search_distance,
            "step1_work": self.step1_work,
            "step2_work": self.step2_work,
            "step3_work": self.step3_work,
            "step1_time": self.step1_duration,
            "step3_time": self.step3_duration,
            "total_area": self.total_area,
            "f1": self.f1,
        }


def run_fig2(
    configs: tuple[JunctionConfig, ...] = DEFAULT_CONFIGS,
    n_images: int = 5,
    size: int = 128,
    n_junctions: int = 6,
    base_seed: int = 100,
) -> list[Fig2Row]:
    """Profile each configuration over ``n_images`` synthetic images."""
    rows: list[Fig2Row] = []
    for config in configs:
        profiles = [
            profile_configuration(
                synthetic_image(size=size, n_junctions=n_junctions, seed=base_seed + i),
                config,
            )
            for i in range(n_images)
        ]
        rows.append(
            Fig2Row(
                label=config.label or f"g{config.granularity}",
                granularity=config.granularity,
                search_distance=config.search_distance,
                step1_work=float(np.mean([p.steps[0].work for p in profiles])),
                step2_work=float(np.mean([p.steps[1].work for p in profiles])),
                step3_work=float(np.mean([p.steps[2].work for p in profiles])),
                step1_duration=float(np.mean([p.steps[0].duration for p in profiles])),
                step3_duration=float(np.mean([p.steps[2].duration for p in profiles])),
                total_area=float(np.mean([p.total_area for p in profiles])),
                f1=float(np.mean([p.f1 for p in profiles])),
            )
        )
    return rows


def render_fig2(rows: list[Fig2Row]) -> str:
    """The Figure-2 table."""
    return format_table(
        [r.as_dict() for r in rows],
        precision=2,
        title="fig2: junction detection configurations (mean over images)",
    )
