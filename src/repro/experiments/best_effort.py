"""Extension experiment: reservation-based admission vs best-effort EDF.

Quantifies the introduction's argument against best-effort parallel
resource management for soft real-time work: on identical arrival streams,
compare the paper's arbitrator (admission control + reservations; every
admitted job on time, rejected jobs never consume resources) against the
best-effort EDF executor (no admission; late jobs waste the processor time
they consumed before dropping).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.arbitrator import QoSArbitrator
from repro.sim.arrivals import PoissonArrivals
from repro.sim.executor import BestEffortMetrics, ChainSelector, EDFExecutor
from repro.sim.rng import RandomStreams
from repro.sim.simulator import simulate_arrivals
from repro.workloads import SweepConfig, presets

__all__ = ["BestEffortComparison", "run_best_effort_comparison", "render_best_effort"]


@dataclass(frozen=True, slots=True)
class BestEffortComparison:
    """One operating point: arbitrator vs best-effort EDF."""

    interval: float
    reservation_on_time: int
    reservation_utilization: float
    edf_on_time: int
    edf_utilization: float
    edf_goodput_utilization: float
    edf_wasted_area: float
    offered: int

    def as_dict(self) -> dict[str, object]:
        return {
            "interval": self.interval,
            "offered": self.offered,
            "resv_on_time": self.reservation_on_time,
            "edf_on_time": self.edf_on_time,
            "resv_util": self.reservation_utilization,
            "edf_util": self.edf_utilization,
            "edf_goodput": self.edf_goodput_utilization,
            "edf_wasted": self.edf_wasted_area,
        }


def run_best_effort_comparison(
    intervals: tuple[float, ...] = (10.0, 20.0, 30.0, 45.0, 60.0, 85.0),
    n_jobs: int | None = None,
    seed: int = presets.DEFAULT_SEED,
    selector: ChainSelector = ChainSelector.FIRST,
) -> list[BestEffortComparison]:
    """Compare both managers across arrival intervals (tunable job stream)."""
    config = SweepConfig(n_jobs=presets.n_jobs(n_jobs), seed=seed)
    rows: list[BestEffortComparison] = []
    for interval in intervals:
        streams = RandomStreams(seed)
        arrivals = list(PoissonArrivals(interval, streams).times(config.n_jobs))

        arbitrator = QoSArbitrator(config.processors, keep_placements=False)
        reservation = simulate_arrivals(
            arbitrator,
            lambda i, release: config.params.tunable_job(release),
            _Replay(arrivals),
            config.n_jobs,
        )

        executor = EDFExecutor(config.processors, selector=selector)
        best_effort: BestEffortMetrics = executor.run(
            config.params.tunable_job(t) for t in arrivals
        )

        rows.append(
            BestEffortComparison(
                interval=interval,
                reservation_on_time=reservation.throughput,
                reservation_utilization=reservation.utilization,
                edf_on_time=best_effort.on_time,
                edf_utilization=best_effort.utilization,
                edf_goodput_utilization=best_effort.goodput_utilization,
                edf_wasted_area=best_effort.wasted_area,
                offered=config.n_jobs,
            )
        )
    return rows


class _Replay:
    """Arrival process replaying a pre-drawn time list."""

    def __init__(self, times: list[float]) -> None:
        self._times = times

    def times(self, n: int):
        return iter(self._times[:n])


def render_best_effort(rows: list[BestEffortComparison]) -> str:
    """Comparison table."""
    return format_table(
        [r.as_dict() for r in rows],
        precision=3,
        title="extension: reservation-based admission vs best-effort EDF "
        "(tunable job stream)",
    )
