"""Ablations for the design choices DESIGN.md calls out (not in the paper).

* tie-break policy: the Section 5.2 rule vs simpler alternatives;
* malleable strategy: the two readings of "starting from the highest
  number of processors";
* hole-selection rule: first fit vs best fit;
* admission conservatism: trusting the negotiated path vs requiring every
  path schedulable;
* arrival-process robustness: Poisson vs bursty arrivals.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.tables import format_table
from repro.core.arbitrator import QoSArbitrator
from repro.core.baselines import BestFitScheduler, ConservativeArbitrator
from repro.core.malleable import MalleableStrategy
from repro.core.policies import TieBreakPolicy
from repro.sim.arrivals import BurstyArrivals, PoissonArrivals
from repro.sim.rng import RandomStreams
from repro.sim.simulator import ArrivalSimulator, simulate_arrivals
from repro.workloads import SweepConfig, presets
from repro.workloads.sweep import run_point

__all__ = [
    "ablation_policy",
    "ablation_malleable_strategy",
    "ablation_fit_rule",
    "ablation_conservative",
    "ablation_bursty",
]


def _base(n_jobs: int | None, seed: int) -> SweepConfig:
    return SweepConfig(n_jobs=presets.n_jobs(n_jobs), seed=seed)


def ablation_policy(
    n_jobs: int | None = None, seed: int = presets.DEFAULT_SEED
) -> str:
    """Tie-break policy comparison on the tunable system."""
    rows = []
    for policy in TieBreakPolicy:
        cfg = replace(_base(n_jobs, seed), policy=policy)
        m = run_point(cfg, "tunable")
        rows.append(
            {
                "policy": policy.value,
                "throughput": m.throughput,
                "utilization": m.utilization,
                "mean_response": m.mean_response,
            }
        )
    return format_table(rows, title="ablation: tie-break policy (tunable system)")


def ablation_malleable_strategy(
    n_jobs: int | None = None, seed: int = presets.DEFAULT_SEED
) -> str:
    """The two malleable placement strategies, all three systems."""
    rows = []
    for strategy in MalleableStrategy:
        cfg = replace(_base(n_jobs, seed), malleable=True, strategy=strategy)
        for system in ("tunable", "shape1", "shape2"):
            m = run_point(cfg, system)
            rows.append(
                {
                    "strategy": strategy.value,
                    "system": system,
                    "throughput": m.throughput,
                    "utilization": m.utilization,
                }
            )
    return format_table(rows, title="ablation: malleable strategy")


def ablation_fit_rule(
    n_jobs: int | None = None, seed: int = presets.DEFAULT_SEED
) -> str:
    """First fit (the paper) vs best fit over maximal holes.

    Best fit re-enumerates holes per task and is orders of magnitude
    slower, so this ablation caps the arrival count.
    """
    n = min(presets.n_jobs(n_jobs), 400)
    cfg = replace(_base(None, seed), n_jobs=n)
    rows = []
    for label, use_best_fit in (("first-fit", False), ("best-fit", True)):
        arb = QoSArbitrator(cfg.processors, keep_placements=False)
        if use_best_fit:
            arb.scheduler = BestFitScheduler(arb.schedule, policy=cfg.policy)
            arb.admission.scheduler = arb.scheduler
        streams = RandomStreams(cfg.seed)
        metrics = simulate_arrivals(
            arb,
            lambda i, release: cfg.params.tunable_job(release),
            PoissonArrivals(cfg.interval, streams),
            cfg.n_jobs,
        )
        rows.append(
            {
                "rule": label,
                "throughput": metrics.throughput,
                "utilization": metrics.utilization,
            }
        )
    return format_table(rows, title=f"ablation: fit rule (n={n} arrivals)")


def ablation_conservative(
    n_jobs: int | None = None, seed: int = presets.DEFAULT_SEED
) -> str:
    """Negotiated admission vs all-paths-schedulable conservatism."""
    cfg = _base(n_jobs, seed)
    rows = []
    for label, cls in (
        ("negotiated", QoSArbitrator),
        ("conservative", ConservativeArbitrator),
    ):
        arb = cls(cfg.processors, keep_placements=False)
        streams = RandomStreams(cfg.seed)
        metrics = simulate_arrivals(
            arb,
            lambda i, release: cfg.params.tunable_job(release),
            PoissonArrivals(cfg.interval, streams),
            cfg.n_jobs,
        )
        rows.append(
            {
                "admission": label,
                "throughput": metrics.throughput,
                "utilization": metrics.utilization,
            }
        )
    return format_table(rows, title="ablation: admission conservatism")


def ablation_bursty(
    n_jobs: int | None = None, seed: int = presets.DEFAULT_SEED
) -> str:
    """Does the tunability benefit survive bursty (non-Poisson) arrivals?"""
    cfg = _base(n_jobs, seed)
    rows = []
    for label, make_process in (
        (
            "poisson",
            lambda streams: PoissonArrivals(cfg.interval, streams),
        ),
        (
            "bursty",
            lambda streams: BurstyArrivals(
                burst_interval=cfg.interval / 3,
                calm_interval=cfg.interval * 5 / 3,
                streams=streams,
            ),
        ),
    ):
        for system in ("tunable", "shape1", "shape2"):
            arb = QoSArbitrator(cfg.processors, keep_placements=False)
            streams = RandomStreams(cfg.seed)
            factory = (
                (lambda i, release: cfg.params.tunable_job(release))
                if system == "tunable"
                else (
                    lambda i, release, s=int(system[-1]): cfg.params.rigid_job(
                        s, release
                    )
                )
            )
            metrics = simulate_arrivals(
                arb, factory, make_process(streams), cfg.n_jobs
            )
            rows.append(
                {
                    "arrivals": label,
                    "system": system,
                    "throughput": metrics.throughput,
                    "utilization": metrics.utilization,
                }
            )
    return format_table(rows, title="ablation: arrival-process robustness")
