"""Extension experiment: graceful degradation under an online fault stream.

The trace-driven generalization of :mod:`repro.experiments.survival`: where
that experiment renegotiates one offline capacity drop over a finished
batch, this one runs the full online loop — Poisson processor failures
with exponential repair, latent execution-time overruns and arrival
bursts, all drawn from seed-derived substreams (identical across the three
task systems at each sweep point: common random numbers) — while jobs keep
arriving.  Swept axis: the processor failure rate.

Expected shape: the tunable system's survival rate dominates both rigid
shapes'.  A tunable job hit by a fault or an overrun before completing any
task can be re-admitted on its *other* path (the ``path_switches``
column), while a rigid job has only its one shape's remaining slack;
``shape1`` (tall-first) suffers most because a shrunken machine or a
dilated first task leaves the 16-wide task nowhere to go.

The machine is 2x the tall task (P=32) as in the survival experiment, and
the default severity removes 12 processors per failure, so a fault leaves
the tall task feasible but unpackable next to other work — the regime
where *ordering* flexibility matters.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.resilience.events import FaultModel
from repro.workloads import presets
from repro.workloads.sweep import SweepConfig, SweepResult, run_sweep
from repro.workloads.synthetic import SyntheticParams

__all__ = [
    "DEFAULT_FAULT_MODEL",
    "DEFAULT_FAULT_RATES",
    "run_faults",
    "render_faults",
]

#: Perturbation intensities of the committed default sweep (the failure
#: rate itself is the swept axis).  Calibrated so the tunable system's
#: survival rate dominates both rigid shapes' at every committed rate —
#: regression-tested in tests/resilience/test_faults_experiment.py.
DEFAULT_FAULT_MODEL = FaultModel(
    fault_severity=0.375,
    mean_repair=300.0,
    overrun_prob=0.10,
    burst_rate=5e-5,
    burst_size=4,
)

#: Processor failures per unit virtual time (0 = overruns/bursts only).
DEFAULT_FAULT_RATES: tuple[float, ...] = (0.0, 1e-4, 3e-4, 6e-4)

#: Machine size and arrival interval: 2x the tall task, moderate load
#: (offered utilization ~0.5) so all three systems admit comparably and
#: the comparison isolates *surviving* perturbations, not initial packing.
FAULTS_PROCESSORS = 32
FAULTS_INTERVAL = 50.0


def run_faults(
    rates: tuple[float, ...] = DEFAULT_FAULT_RATES,
    processors: int = FAULTS_PROCESSORS,
    interval: float = FAULTS_INTERVAL,
    n_jobs: int | None = None,
    seed: int = presets.DEFAULT_SEED,
    model: FaultModel | None = None,
    params: SyntheticParams | None = None,
) -> SweepResult:
    """Sweep the failure rate across the three task systems."""
    config = SweepConfig(
        params=params or presets.default_params(),
        processors=processors,
        interval=interval,
        n_jobs=min(presets.n_jobs(n_jobs), 2_000),
        seed=seed,
        faults=model or DEFAULT_FAULT_MODEL,
    )
    return run_sweep("fault_rate", rates, config)


def render_faults(result: SweepResult) -> str:
    """Survival/degradation table across fault rates and systems."""
    rows: list[dict[str, object]] = []
    for value in result.values:
        for system in result.systems:
            m = result.rows[value][system]
            r = m.resilience
            rows.append(
                {
                    # Rendered as text: rates like 1e-4 vanish at the
                    # table's fixed decimal precision.
                    "fault_rate": format(value, "g"),
                    "system": system,
                    "admitted": m.admitted,
                    "affected": r.get("affected", 0),
                    "survived": r.get("survived", 0),
                    "degraded": r.get("degraded", 0),
                    "dropped": r.get("dropped", 0),
                    "misses": r.get("deadline_misses", 0),
                    "switches": r.get("path_switches", 0),
                    "survival": r.get("survival_rate", 1.0),
                    "util": m.utilization,
                    "wasted": r.get("wasted_work", 0.0),
                }
            )
    return format_table(
        rows,
        precision=3,
        title="extension: online fault stream — survival by tunability "
        "(capacity faults x overruns x bursts)",
    )
