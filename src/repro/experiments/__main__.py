"""Command-line entry: ``python -m repro.experiments <id> [<id> ...]``.

Scale: ``--full-scale`` (or the ``REPRO_FULL_SCALE=1`` environment
variable) selects the paper's 10,000-arrival runs; the default is 2,000
arrivals per point (identical qualitative shapes, minutes faster).

Execution: ``--jobs N`` fans the independent (sweep point × system ×
seed) work units of every experiment out over N worker processes, and
each unit's metrics are memoized in a content-addressed on-disk cache
(``--cache-dir``, default ``.repro-cache`` or ``$REPRO_CACHE_DIR``) so
re-runs and overlapping experiments are cache hits.  ``--no-cache``
disables memoization.  Results are bit-identical whichever way the units
were executed; see :mod:`repro.runner`.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.experiments.registry import (
    EXPERIMENTS,
    run_experiment,
    unknown_experiments,
)
from repro.runner import ExperimentRunner, RunnerConfig, using_runner

DEFAULT_CACHE_DIR = ".repro-cache"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids (default: all). Known: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--full-scale",
        action="store_true",
        help="run the paper's 10,000 arrivals per point "
        "(equivalent to REPRO_FULL_SCALE=1)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=int(os.environ.get("REPRO_JOBS", "1")),
        help="worker processes for sweep/replication units "
        "(default: $REPRO_JOBS or 1 = in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=Path(os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR),
        help="content-addressed result cache location "
        f"(default: $REPRO_CACHE_DIR or {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list:
        for exp_id in sorted(EXPERIMENTS):
            print(exp_id)
        return 0

    targets = args.experiments or sorted(EXPERIMENTS)
    unknown = unknown_experiments(targets)
    if unknown:
        print(
            f"error: unknown experiment id(s): {', '.join(unknown)}",
            file=sys.stderr,
        )
        print(f"known ids: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2

    runner = ExperimentRunner(
        RunnerConfig(
            jobs=max(1, args.jobs),
            cache_dir=None if args.no_cache else args.cache_dir,
        )
    )
    saved_scale = os.environ.get("REPRO_FULL_SCALE")
    try:
        if args.full_scale:
            os.environ["REPRO_FULL_SCALE"] = "1"
        with using_runner(runner):
            for exp_id in targets:
                print(f"=== {exp_id} ===")
                print(run_experiment(exp_id))
    finally:
        if args.full_scale:
            if saved_scale is None:
                os.environ.pop("REPRO_FULL_SCALE", None)
            else:
                os.environ["REPRO_FULL_SCALE"] = saved_scale

    snap = runner.perf_snapshot()
    if snap.get("units_total"):
        print(
            f"[runner] units={snap.get('units_total', 0)} "
            f"dedup={snap.get('dedup_hits', 0)} "
            f"cache_hits={snap.get('cache_hits', 0)} "
            f"cache_misses={snap.get('cache_misses', 0)} "
            f"pool={snap.get('units_executed_pool', 0)} "
            f"inline={snap.get('units_executed_inline', 0)} "
            f"retries={snap.get('pool_retries', 0)} "
            f"retry_backoff_total={snap.get('retry_backoff_total', 0.0):.3f}s "
            f"unit_p50={snap.get('unit_p50_us', 0) / 1e3:.1f}ms "
            f"unit_p95={snap.get('unit_p95_us', 0) / 1e3:.1f}ms",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
