"""Command-line entry: ``python -m repro.experiments <id> [<id> ...]``.

Set ``REPRO_FULL_SCALE=1`` for the paper's 10,000-arrival runs; the default
is 2,000 arrivals per point (identical qualitative shapes, minutes faster).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids (default: all). Known: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in sorted(EXPERIMENTS):
            print(exp_id)
        return 0

    targets = args.experiments or sorted(EXPERIMENTS)
    for exp_id in targets:
        print(f"=== {exp_id} ===")
        print(run_experiment(exp_id))
    return 0


if __name__ == "__main__":
    sys.exit(main())
