"""Extension experiment: surviving a capacity drop via tunability.

Section 3.1 says the arbitrator "triggers renegotiation on detecting a
significant change in resource levels (e.g., on a fault ...)".  This
experiment quantifies what tunability buys in that scenario: admit a batch
of jobs on a P-processor machine, drop it to P' mid-run, renegotiate, and
count the *affected* jobs (those not yet finished at the drop) that keep a
reservation.  A tunable job can be re-admitted on a different path — e.g.
its narrow-first transposition when the machine can no longer host the
wide task early — so its survival rate should dominate both rigid shapes'.

Superseded by the trace-driven :mod:`repro.experiments.faults`, which runs
the same comparison as an *online* event stream (repeated failures with
repair, overruns, bursts) through :mod:`repro.resilience` instead of one
offline drop over a finished batch; this batch variant is kept as the
minimal, assumption-free illustration of the renegotiation primitive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.arbitrator import QoSArbitrator
from repro.model.job import Job
from repro.qos.renegotiation import CapacityChange, renegotiate
from repro.sim.arrivals import PoissonArrivals
from repro.sim.rng import RandomStreams
from repro.workloads import presets
from repro.workloads.synthetic import SyntheticParams

__all__ = ["SurvivalPoint", "run_survival", "render_survival"]


@dataclass(frozen=True, slots=True)
class SurvivalPoint:
    """One (system, new capacity) outcome."""

    system: str
    new_capacity: int
    admitted: int
    affected: int
    carried: int
    reallocated: int
    path_switches: int
    dropped: int

    @property
    def survival_rate(self) -> float:
        """Fraction of affected jobs that kept a reservation."""
        if self.affected == 0:
            return 1.0
        return (self.carried + self.reallocated) / self.affected

    def as_dict(self) -> dict[str, object]:
        return {
            "system": self.system,
            "new_P": self.new_capacity,
            "admitted": self.admitted,
            "affected": self.affected,
            "carried": self.carried,
            "reallocated": self.reallocated,
            "path_switches": self.path_switches,
            "dropped": self.dropped,
            "survival": self.survival_rate,
        }


def run_survival(
    new_capacities: tuple[int, ...] = (24, 20, 16, 12),
    processors: int = 32,
    n_jobs: int | None = None,
    interval: float = 60.0,
    seed: int = presets.DEFAULT_SEED,
    params: SyntheticParams | None = None,
) -> list[SurvivalPoint]:
    """Admit a batch, drop capacity mid-horizon, renegotiate, count survivors.

    The drop instant is the median committed finish time, so roughly half
    the admitted work is affected.  The base machine is 2x the tall task
    (both rigid shapes admit well before the fault — the comparison is
    about *surviving* it, not about initial admission).
    """
    params = params or presets.default_params()
    n = min(presets.n_jobs(n_jobs), 2_000)
    points: list[SurvivalPoint] = []
    for system in ("tunable", "shape1", "shape2"):
        arrivals = list(
            PoissonArrivals(interval, RandomStreams(seed)).times(n)
        )
        arbitrator = QoSArbitrator(processors)
        jobs: dict[int, Job] = {}
        for release in arrivals:
            if system == "tunable":
                job = params.tunable_job(release)
            else:
                job = params.rigid_job(int(system[-1]), release)
            jobs[job.job_id] = job
            arbitrator.submit(job)
        finishes = sorted(cp.finish for cp in arbitrator.schedule.placements)
        if not finishes:
            continue
        tau = finishes[len(finishes) // 2]
        for new_capacity in new_capacities:
            result = renegotiate(
                arbitrator.schedule, CapacityChange(tau, new_capacity), jobs
            )
            affected = (
                len(result.carried)
                + len(result.reallocated)
                + len(result.dropped)
            )
            points.append(
                SurvivalPoint(
                    system=system,
                    new_capacity=new_capacity,
                    admitted=arbitrator.admitted,
                    affected=affected,
                    carried=len(result.carried),
                    reallocated=len(result.reallocated),
                    path_switches=result.path_switches,
                    dropped=len(result.dropped),
                )
            )
    return points


def render_survival(points: list[SurvivalPoint]) -> str:
    """Survival table across systems and drop severities."""
    return format_table(
        [p.as_dict() for p in points],
        precision=3,
        title="extension: job survival across a capacity drop "
        "(renegotiation with path switching)",
    )
