"""Figure 5: tunability benefits for non-malleable tasks (Section 5.3).

Four panels, each sweeping one parameter of the synthetic Figure-4 task
system with the others fixed at the documented defaults:

* (a) mean arrival interval 10..85,
* (b) laxity 0.05..0.95,
* (c) processors 16..64,
* (d) job shape α over k/16.

Each panel compares the tunable system against the two rigid shapes on the
paper's two metrics, system utilization and job throughput.
"""

from __future__ import annotations

from repro.analysis.plots import sweep_chart
from repro.analysis.tables import format_sweep
from repro.workloads import SweepConfig, presets
from repro.workloads.sweep import SweepResult, run_sweep

__all__ = [
    "run_fig5a",
    "run_fig5b",
    "run_fig5c",
    "run_fig5d",
    "render_fig5",
]


def _config(n_jobs: int | None, seed: int) -> SweepConfig:
    return SweepConfig(n_jobs=presets.n_jobs(n_jobs), seed=seed)


def run_fig5a(
    n_jobs: int | None = None, seed: int = presets.DEFAULT_SEED
) -> SweepResult:
    """Sensitivity to inter-arrival time (Figure 5a)."""
    return run_sweep("interval", presets.FIG5A_INTERVALS, _config(n_jobs, seed))


def run_fig5b(
    n_jobs: int | None = None, seed: int = presets.DEFAULT_SEED
) -> SweepResult:
    """Sensitivity to laxity (Figure 5b)."""
    return run_sweep("laxity", presets.FIG5B_LAXITIES, _config(n_jobs, seed))


def run_fig5c(
    n_jobs: int | None = None, seed: int = presets.DEFAULT_SEED
) -> SweepResult:
    """Sensitivity to the number of processors (Figure 5c)."""
    return run_sweep("processors", presets.FIG5C_PROCESSORS, _config(n_jobs, seed))


def run_fig5d(
    n_jobs: int | None = None, seed: int = presets.DEFAULT_SEED
) -> SweepResult:
    """Sensitivity to the job shape alpha (Figure 5d)."""
    return run_sweep("alpha", presets.FIG5D_ALPHAS, _config(n_jobs, seed))


def render_fig5(result: SweepResult, panel: str = "") -> str:
    """Utilization and throughput tables plus charts for one panel."""
    parts = [
        format_sweep(result, "utilization", title=f"fig5{panel}: utilization vs {result.axis}"),
        format_sweep(result, "throughput", precision=0, title=f"fig5{panel}: throughput vs {result.axis}"),
        sweep_chart(result, "utilization", title=f"fig5{panel}: utilization"),
        sweep_chart(result, "throughput", title=f"fig5{panel}: throughput"),
    ]
    return "\n".join(parts)
