"""Extension experiment: mid-execution malleability under faults.

Sweeps the reconfiguration-cost model against the processor failure rate
for the tunable (malleable) system, comparing ``ResizePolicy.OFF`` with
``GROW_SHRINK`` under **common random numbers**: at each fault rate both
arms replay the identical arrival sequence and perturbation trace, so any
difference is purely the resize decisions (plus their cost).

The committed regime is calibrated (and regression-tested in
tests/resilience/test_reconfig_experiment.py) so that both resize
directions actually fire and the comparison has a definite shape:

* severity 0.6 on a 32-processor machine drops capacity to ~13, forcing
  renegotiated jobs onto narrow placements; mean repair 100 brings the
  processors back while those jobs are still running — the grow window;
* interval 35 keeps the machine loaded enough that arrivals are rejected,
  giving shrink-to-admit donors and beneficiaries;
* at the lowest committed rate, grow/shrink beats no-resize on
  survival x quality at **every** committed cost, while at the highest
  rate the costliest model underperforms no-resize: reconfiguration pays
  exactly while its cost stays small against the work it rescues — the
  DMR/ReSHAPE trade-off this extension models.

Benefit metric: ``survival_rate * achieved_quality`` — quality earned at
admission, discounted by the fraction of perturbation-affected jobs that
still met their deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.analysis.tables import format_table
from repro.resilience.events import FaultModel
from repro.resilience.reconfig import ResizePolicy
from repro.sim.metrics import RunMetrics
from repro.workloads import presets
from repro.workloads.sweep import SweepConfig, run_point
from repro.workloads.synthetic import SyntheticParams

__all__ = [
    "DEFAULT_RECONFIG_MODEL",
    "DEFAULT_RECONFIG_RATES",
    "DEFAULT_RECONFIG_COSTS",
    "ReconfigResult",
    "reconfig_benefit",
    "run_reconfig",
    "render_reconfig",
]

#: Perturbation intensities of the committed sweep (the failure rate is
#: the swept axis).  Severity 0.6 of P=32 leaves ~13 processors — narrow
#: re-plans with grow headroom once the short (100-unit) repair lands.
DEFAULT_RECONFIG_MODEL = FaultModel(
    fault_severity=0.6,
    mean_repair=100.0,
    overrun_prob=0.10,
    burst_rate=5e-5,
    burst_size=4,
)

#: Processor failures per unit virtual time.
DEFAULT_RECONFIG_RATES: tuple[float, ...] = (3e-4, 1e-3, 2e-3)

#: Fixed checkpoint term of the reconfiguration-cost model (time units
#: charged per resize before the remainder restarts).  0 isolates the
#: policy's planning value; 8 is about a third of a task's duration —
#: enough to flip marginal resizes from profitable to harmful.
DEFAULT_RECONFIG_COSTS: tuple[float, ...] = (0.0, 2.0, 8.0)

#: Machine size and arrival interval: 2x the tall task (as in the other
#: resilience experiments) and load high enough that shrink-to-admit has
#: rejections to rescue.
RECONFIG_PROCESSORS = 32
RECONFIG_INTERVAL = 35.0

#: Committed batch size.  Resize opportunities are per-event and rare by
#: design (a growable job must be mid-task when capacity frees); 300
#: arrivals keeps the full OFF + (rates x costs) grid regression-testable
#: in seconds while every committed claim already manifests.
RECONFIG_N_JOBS = 300


@dataclass(frozen=True, slots=True)
class ReconfigResult:
    """One no-resize run and one grow/shrink run per (rate, cost) cell.

    ``off[rate]`` is the ``ResizePolicy.OFF`` arm; ``on[(rate, cost)]``
    the ``GROW_SHRINK`` arm with fixed checkpoint cost ``cost``.
    """

    rates: tuple[float, ...]
    costs: tuple[float, ...]
    off: Mapping[float, RunMetrics]
    on: Mapping[tuple[float, float], RunMetrics]
    config: SweepConfig


def reconfig_benefit(metrics: RunMetrics) -> float:
    """Survival-weighted quality: the quantity the resize policy targets."""
    return metrics.resilience.get("survival_rate", 1.0) * metrics.achieved_quality


def run_reconfig(
    rates: tuple[float, ...] = DEFAULT_RECONFIG_RATES,
    costs: tuple[float, ...] = DEFAULT_RECONFIG_COSTS,
    processors: int = RECONFIG_PROCESSORS,
    interval: float = RECONFIG_INTERVAL,
    n_jobs: int = RECONFIG_N_JOBS,
    seed: int = presets.DEFAULT_SEED,
    model: FaultModel | None = None,
    params: SyntheticParams | None = None,
) -> ReconfigResult:
    """Sweep reconfiguration cost x fault rate, resize on vs off."""
    model = model or DEFAULT_RECONFIG_MODEL
    base = SweepConfig(
        params=params or presets.default_params(),
        processors=processors,
        interval=interval,
        n_jobs=n_jobs,
        seed=seed,
        malleable=True,
    )
    off: dict[float, RunMetrics] = {}
    on: dict[tuple[float, float], RunMetrics] = {}
    for rate in rates:
        rated = replace(base, faults=model.with_fault_rate(rate))
        off[float(rate)] = run_point(rated, "tunable")
        for cost in costs:
            cell = replace(
                rated,
                resize_policy=ResizePolicy.GROW_SHRINK,
                reconfig_cost=float(cost),
            )
            on[(float(rate), float(cost))] = run_point(cell, "tunable")
    return ReconfigResult(
        rates=tuple(float(r) for r in rates),
        costs=tuple(float(c) for c in costs),
        off=off,
        on=on,
        config=base,
    )


def render_reconfig(result: ReconfigResult) -> str:
    """Benefit + resize-ledger table across (fault rate, reconfig cost)."""
    rows: list[dict[str, object]] = []
    for rate in result.rates:
        baseline = result.off[rate]
        rows.append(
            {
                "fault_rate": format(rate, "g"),
                "resize": "off",
                "cost": "-",
                "admitted": baseline.admitted,
                "survival": baseline.resilience.get("survival_rate", 1.0),
                "benefit": reconfig_benefit(baseline),
                "delta": 0.0,
                "grows": 0,
                "shrinks": 0,
                "admits": 0,
                "rescues": 0,
                "resize_cost": 0.0,
            }
        )
        for cost in result.costs:
            m = result.on[(rate, cost)]
            r = m.resilience
            rows.append(
                {
                    "fault_rate": format(rate, "g"),
                    "resize": "grow+shrink",
                    "cost": format(cost, "g"),
                    "admitted": m.admitted,
                    "survival": r.get("survival_rate", 1.0),
                    "benefit": reconfig_benefit(m),
                    "delta": reconfig_benefit(m) - reconfig_benefit(baseline),
                    "grows": r.get("grows", 0),
                    "shrinks": r.get("shrinks", 0),
                    "admits": r.get("shrink_admits", 0),
                    "rescues": r.get("shrink_rescues", 0),
                    "resize_cost": r.get("resize_cost", 0.0),
                }
            )
    return format_table(
        rows,
        precision=3,
        title="extension: mid-execution malleability — grow/shrink vs "
        "no-resize (reconfig cost x fault rate)",
    )
