"""Figure 6: tunability benefit under the non-malleable vs malleable models.

"The two graphs in each of Figures 6(a) and 6(b) correspond to the
throughput benefits of tunability over the non-tunable jobs — shape 1 and
shape 2 — as job arrival interval and laxity are varied."  Panel (a) is the
rigid model of Section 5.3; panel (b) re-runs the same task system with
malleable placement (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.plots import ascii_chart
from repro.analysis.tables import format_table
from repro.workloads import SweepConfig, presets
from repro.workloads.sweep import SweepResult, run_sweep

__all__ = ["Fig6Panel", "run_fig6_panel", "run_fig6a", "run_fig6b", "render_fig6"]


@dataclass(frozen=True, slots=True)
class Fig6Panel:
    """One Figure-6 panel: both axis sweeps under one task model."""

    malleable: bool
    interval_sweep: SweepResult
    laxity_sweep: SweepResult

    def benefit_rows(self, axis: str) -> list[dict[str, object]]:
        """Throughput-benefit rows (tunable − shape_i) along one axis."""
        sweep = self.interval_sweep if axis == "interval" else self.laxity_sweep
        b1 = sweep.benefit("throughput", "shape1")
        b2 = sweep.benefit("throughput", "shape2")
        return [
            {axis: v, "benefit_over_shape1": x1, "benefit_over_shape2": x2}
            for v, x1, x2 in zip(sweep.values, b1, b2)
        ]


def run_fig6_panel(
    malleable: bool,
    n_jobs: int | None = None,
    seed: int = presets.DEFAULT_SEED,
) -> Fig6Panel:
    """Both sweeps of one panel, under the given task model."""
    cfg = SweepConfig(
        n_jobs=presets.n_jobs(n_jobs), seed=seed, malleable=malleable
    )
    return Fig6Panel(
        malleable=malleable,
        interval_sweep=run_sweep("interval", presets.FIG6_INTERVALS, cfg),
        laxity_sweep=run_sweep("laxity", presets.FIG6_LAXITIES, cfg),
    )


def run_fig6a(
    n_jobs: int | None = None, seed: int = presets.DEFAULT_SEED
) -> Fig6Panel:
    """Non-malleable model (Figure 6a)."""
    return run_fig6_panel(False, n_jobs, seed)


def run_fig6b(
    n_jobs: int | None = None, seed: int = presets.DEFAULT_SEED
) -> Fig6Panel:
    """Malleable model (Figure 6b)."""
    return run_fig6_panel(True, n_jobs, seed)


def render_fig6(panel: Fig6Panel) -> str:
    """Benefit tables and charts for one panel."""
    tag = "b (malleable)" if panel.malleable else "a (non-malleable)"
    parts = []
    for axis in ("interval", "laxity"):
        rows = panel.benefit_rows(axis)
        printable = [
            {**row, axis: format(float(row[axis]), "g")} for row in rows
        ]
        parts.append(
            format_table(
                printable,
                precision=0,
                title=f"fig6{tag}: throughput benefit vs {axis}",
            )
        )
        parts.append(
            ascii_chart(
                [float(r[axis]) for r in rows],
                {
                    "over shape1": [float(r["benefit_over_shape1"]) for r in rows],
                    "over shape2": [float(r["benefit_over_shape2"]) for r in rows],
                },
                title=f"fig6{tag}: benefit vs {axis}",
            )
        )
    return "\n".join(parts)
