"""The arrival-driven scheduling simulator.

Replays an arrival process against a :class:`~repro.core.arbitrator.QoSArbitrator`:
each arrival instantiates a job from a *job factory*, submits it, and
records the admission decision.  Because allocations are committed at
arrival and never revised (static negotiation, fault-free system — the
Section 5 model), this arrival loop *is* the full simulation; the generic
engine in :mod:`repro.sim.engine` is only needed by runtime-level demos.

The simulator independently verifies the arbitrator's promise: every
admitted placement is re-checked against release, precedence, capacity-safe
commitment (enforced by the profile) and the final deadline.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.arbitrator import QoSArbitrator
from repro.core.resources import time_leq
from repro.errors import ScheduleConsistencyError, SimulationError
from repro.model.job import Job
from repro.sim.arrivals import ArrivalProcess
from repro.sim.metrics import MetricsCollector, RunMetrics

__all__ = ["ArrivalSimulator", "simulate_arrivals"]

#: A job factory maps (sequence number, release time) to a fresh Job.
JobFactory = Callable[[int, float], Job]


class ArrivalSimulator:
    """Drives one arbitrator through an arrival sequence.

    Parameters
    ----------
    arbitrator:
        The system under test (owns capacity, scheduler model and policy).
    job_factory:
        Called as ``job_factory(i, release)`` for the i-th arrival; must
        return a job released at ``release``.
    verify:
        When True (default), re-validate every admitted placement and check
        on-time completion — catching scheduler bugs during experiments
        rather than silently mis-reporting throughput.
    audit:
        Opt-in *independent* verification (stronger and costlier than
        ``verify``, which reuses the scheduler's own validation): every
        offered job is recorded and, after the final arrival, the whole
        committed schedule is re-validated from first principles by
        :class:`repro.verify.auditor.ScheduleAuditor`.  Violations raise
        :class:`~repro.errors.VerificationError`.
    """

    def __init__(
        self,
        arbitrator: QoSArbitrator,
        job_factory: JobFactory,
        verify: bool = True,
        audit: bool = False,
    ) -> None:
        self.arbitrator = arbitrator
        self.job_factory = job_factory
        self.verify = verify
        self.audit = audit
        self.collector = MetricsCollector()
        self._offered: list[Job] = []

    def run(self, arrivals: Iterable[float]) -> RunMetrics:
        """Submit one job per arrival time; return the aggregate metrics."""
        last = -float("inf")
        for i, release in enumerate(arrivals):
            if release < last:
                raise SimulationError(
                    f"arrival {i} at {release} precedes previous arrival {last}"
                )
            last = release
            job = self.job_factory(i, release)
            if job.release != release:
                raise SimulationError(
                    f"job factory returned release {job.release}, expected {release}"
                )
            if self.audit:
                self._offered.append(job)
            decision = self.arbitrator.submit(job)
            deadline = None
            if decision.admitted and decision.placement is not None:
                cp = decision.placement
                deadline = job.release + cp.chain.final_deadline
                if self.verify:
                    cp.validate()
                    if not time_leq(cp.finish, deadline):
                        raise ScheduleConsistencyError(
                            f"admitted job {job.job_id} finishes at {cp.finish} "
                            f"past its deadline {deadline}"
                        )
            self.collector.observe(decision, deadline)
        if self.audit:
            self._run_audit()
        sched = self.arbitrator.schedule
        return self.collector.finalize(
            utilization=self.arbitrator.utilization(),
            chain_usage=self.arbitrator.chain_usage(),
            achieved_quality=self.arbitrator.achieved_quality,
            horizon=sched.last_finish if sched.committed_jobs else 0.0,
            perf=self.arbitrator.perf_snapshot(),
        )


    def _run_audit(self) -> None:
        """Independent end-of-run schedule audit (the ``audit=True`` hook)."""
        # Lazy: repro.verify is optional tooling; the simulator must not
        # pull it (or anything beyond the core stack) in by default.
        from repro.errors import VerificationError
        from repro.verify.auditor import audit_schedule

        report = audit_schedule(
            self.arbitrator.schedule,
            self._offered,
            malleable=self.arbitrator.malleable,
        )
        if not report.ok:
            raise VerificationError(
                f"post-run schedule audit failed:\n{report.summary()}"
            )


def simulate_arrivals(
    arbitrator: QoSArbitrator,
    job_factory: JobFactory,
    process: ArrivalProcess,
    n_jobs: int,
    verify: bool = True,
    audit: bool = False,
) -> RunMetrics:
    """Convenience wrapper: run ``n_jobs`` arrivals from ``process``."""
    sim = ArrivalSimulator(arbitrator, job_factory, verify=verify, audit=audit)
    return sim.run(process.times(n_jobs))
