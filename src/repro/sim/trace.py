"""Schedule traces and text Gantt rendering.

Turns a committed :class:`~repro.core.schedule.Schedule` into inspectable
artifacts: a flat record list, a CSV-ish dump, and an ASCII Gantt chart of
processor occupancy over time (rows = jobs, columns = time buckets).  These
are debugging/teaching aids; the experiments consume metrics, not traces.
"""

from __future__ import annotations

import io
import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.schedule import Schedule

__all__ = ["TraceRecord", "schedule_records", "render_gantt", "records_to_csv"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One placed task occurrence."""

    job_id: int
    chain_index: int
    task: str
    start: float
    end: float
    processors: int

    @property
    def duration(self) -> float:
        return self.end - self.start


def schedule_records(schedule: Schedule) -> list[TraceRecord]:
    """Flatten a schedule's placements to sorted trace records."""
    records = [
        TraceRecord(
            job_id=cp.job_id,
            chain_index=cp.chain_index,
            task=pl.task.name,
            start=pl.start,
            end=pl.end,
            processors=pl.processors,
        )
        for cp in schedule.placements
        for pl in cp.placements
    ]
    records.sort(key=lambda r: (r.start, r.job_id, r.task))
    return records


def records_to_csv(records: Sequence[TraceRecord]) -> str:
    """Render records as CSV text (header included)."""
    buf = io.StringIO()
    buf.write("job_id,chain_index,task,start,end,processors\n")
    for r in records:
        buf.write(
            f"{r.job_id},{r.chain_index},{r.task},{r.start:g},{r.end:g},{r.processors}\n"
        )
    return buf.getvalue()


def render_gantt(
    schedule: Schedule,
    width: int = 72,
    t0: float | None = None,
    t1: float | None = None,
) -> str:
    """ASCII Gantt chart: one row per job, '#' where it holds processors.

    Multi-processor occupancy is annotated with the processor count on the
    row label; overlapping tasks of the same job merge visually (chains
    never overlap in time by construction).
    """
    records = schedule_records(schedule)
    if not records:
        return "(empty schedule)\n"
    lo = min(r.start for r in records) if t0 is None else t0
    hi = max(r.end for r in records) if t1 is None else t1
    if not hi > lo:
        hi = lo + 1.0
    scale = width / (hi - lo)
    by_job: dict[int, list[TraceRecord]] = {}
    for r in records:
        by_job.setdefault(r.job_id, []).append(r)
    lines = [f"time [{lo:g}, {hi:g}] | one column = {(hi - lo) / width:g} units"]
    for job_id in sorted(by_job):
        row = [" "] * width
        widths = set()
        for r in by_job[job_id]:
            widths.add(r.processors)
            a = max(0, min(width - 1, int((r.start - lo) * scale)))
            b = max(0, min(width, int(math.ceil((r.end - lo) * scale))))
            for i in range(a, max(b, a + 1)):
                row[i] = "#"
        label = f"job{job_id:>5} p={'/'.join(str(w) for w in sorted(widths))}"
        lines.append(f"{label:<18}|{''.join(row)}|")
    return "\n".join(lines) + "\n"
