"""Event primitives for the discrete-event engine.

Events are ordered by ``(time, priority, seq)``: ties at equal virtual time
resolve by explicit priority and then by insertion order, making every
simulation run a deterministic function of its inputs.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled occurrence in virtual time.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    kind:
        Free-form tag dispatched on by handlers (e.g. ``"arrival"``).
    payload:
        Arbitrary data for the handler.
    priority:
        Secondary ordering at equal times — smaller fires first.
    seq:
        Insertion sequence number (assigned by the queue), the final
        tie-break.
    """

    time: float
    kind: str
    payload: Any = None
    priority: int = 0
    seq: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if math.isnan(self.time):
            raise SimulationError("event time must not be NaN")

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)


class EventQueue:
    """A deterministic min-heap of :class:`Event`.

    Supports lazy cancellation: :meth:`cancel` marks an event dead; dead
    events are skipped by :meth:`pop`.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, int], Event]] = []
        self._seq = itertools.count()
        self._dead: set[int] = set()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Insert ``event``; returns the stamped (seq-assigned) event."""
        stamped = Event(
            time=event.time,
            kind=event.kind,
            payload=event.payload,
            priority=event.priority,
            seq=next(self._seq),
        )
        heapq.heappush(self._heap, (stamped.sort_key, stamped))
        self._live += 1
        return stamped

    def cancel(self, event: Event) -> None:
        """Mark a previously pushed event as cancelled (lazy removal)."""
        if event.seq < 0:
            raise SimulationError("cannot cancel an event that was never pushed")
        if event.seq not in self._dead:
            self._dead.add(event.seq)
            self._live -= 1

    def peek_time(self) -> float:
        """Time of the next live event (``inf`` when empty)."""
        while self._heap and self._heap[0][1].seq in self._dead:
            _, ev = heapq.heappop(self._heap)
            self._dead.discard(ev.seq)
        return self._heap[0][1].time if self._heap else math.inf

    def pop(self) -> Event:
        """Remove and return the next live event."""
        while self._heap:
            _, ev = heapq.heappop(self._heap)
            if ev.seq in self._dead:
                self._dead.discard(ev.seq)
                continue
            self._live -= 1
            return ev
        raise SimulationError("pop from an empty event queue")
