"""Event primitives for the discrete-event engine.

Events are ordered by ``(time, priority, seq)``: ties at equal virtual time
resolve by explicit priority and then by insertion order, making every
simulation run a deterministic function of its inputs.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled occurrence in virtual time.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    kind:
        Free-form tag dispatched on by handlers (e.g. ``"arrival"``).
    payload:
        Arbitrary data for the handler.
    priority:
        Secondary ordering at equal times — smaller fires first.
    seq:
        Insertion sequence number (assigned by the queue), the final
        tie-break.
    """

    time: float
    kind: str
    payload: Any = None
    priority: int = 0
    seq: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if math.isnan(self.time):
            raise SimulationError("event time must not be NaN")

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)


class EventQueue:
    """A deterministic min-heap of :class:`Event`.

    Supports lazy cancellation: :meth:`cancel` marks an event dead; dead
    events are skipped by :meth:`pop`.  When tombstones come to dominate
    the heap (a cancel-heavy simulation can cancel far-future events that
    :meth:`pop` would otherwise carry for its whole run), the heap is
    compacted in place, so memory tracks the *live* event count rather
    than the all-time push count.
    """

    #: Compact when at least this many tombstones are pending *and* they
    #: fill at least half the heap.  The floor keeps tiny queues from
    #: compacting on every cancel; the ratio amortizes the O(live) rebuild
    #: against the cancels that earned it.
    _COMPACT_MIN_DEAD = 64

    def __init__(self) -> None:
        # Heap entries are mutable [sort_key, event, alive] triples so a
        # cancel can mark the entry in place; sort keys are unique (seq is
        # the final component), so list comparison never reaches the event.
        self._heap: list[list] = []
        self._seq = itertools.count()
        #: Live entries by seq — the cancellation handle.  An entry leaves
        #: on pop or cancel, making double-cancel a natural no-op.
        self._entries: dict[int, list] = {}
        self._dead_pending = 0  # tombstones still sitting in the heap

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def push(self, event: Event) -> Event:
        """Insert ``event``; returns the stamped (seq-assigned) event."""
        stamped = Event(
            time=event.time,
            kind=event.kind,
            payload=event.payload,
            priority=event.priority,
            seq=next(self._seq),
        )
        entry = [stamped.sort_key, stamped, True]
        heapq.heappush(self._heap, entry)
        self._entries[stamped.seq] = entry
        return stamped

    def cancel(self, event: Event) -> None:
        """Mark a previously pushed event as cancelled (lazy removal).

        Idempotent: cancelling an event that is already cancelled (or
        already popped) is a no-op.  Tombstones are dropped lazily by
        :meth:`pop`/:meth:`peek_time`; when they pile up faster than pops
        drain them, the heap is rebuilt without them (see the class docs).
        """
        if event.seq < 0:
            raise SimulationError("cannot cancel an event that was never pushed")
        entry = self._entries.pop(event.seq, None)
        if entry is None:
            return
        entry[2] = False
        self._dead_pending += 1
        if (
            self._dead_pending >= self._COMPACT_MIN_DEAD
            and self._dead_pending * 2 >= len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (O(live) — amortized free)."""
        self._heap = [entry for entry in self._heap if entry[2]]
        heapq.heapify(self._heap)
        self._dead_pending = 0

    def peek_time(self) -> float:
        """Time of the next live event (``inf`` when empty)."""
        while self._heap and not self._heap[0][2]:
            heapq.heappop(self._heap)
            self._dead_pending -= 1
        return self._heap[0][1].time if self._heap else math.inf

    def pop(self) -> Event:
        """Remove and return the next live event."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if not entry[2]:
                self._dead_pending -= 1
                continue
            ev = entry[1]
            del self._entries[ev.seq]
            return ev
        raise SimulationError("pop from an empty event queue")
