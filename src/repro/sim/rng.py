"""Deterministic named random streams.

Experiments must be reproducible bit-for-bit and must support *common
random numbers* across compared systems (the tunable and non-tunable task
systems of Section 5.3 see identical arrival sequences).  A
:class:`RandomStreams` derives independent substreams from a master seed by
name, so "arrivals" randomness is decoupled from, say, "fault-injection"
randomness, and adding a new consumer never perturbs existing streams.
"""

from __future__ import annotations

import random
import zlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Named, independent, reproducible random substreams.

    Parameters
    ----------
    seed:
        Master seed.  Two :class:`RandomStreams` with equal seeds yield
        identical substreams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {seed!r}")
        self._seed = seed

    @property
    def seed(self) -> int:
        """The master seed."""
        return self._seed

    def _derive(self, name: str) -> int:
        """Stable 64-bit derived seed for ``name``."""
        h = zlib.crc32(name.encode("utf-8"))
        # Mix master seed and name hash through SplitMix64-style finalizer.
        z = (self._seed * 0x9E3779B97F4A7C15 + h) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        return z ^ (z >> 31)

    def python(self, name: str) -> random.Random:
        """A :class:`random.Random` seeded for substream ``name``."""
        return random.Random(self._derive(name))

    def numpy(self, name: str) -> np.random.Generator:
        """A NumPy :class:`~numpy.random.Generator` for substream ``name``."""
        return np.random.default_rng(self._derive(name))

    def child(self, name: str) -> "RandomStreams":
        """A nested stream family (e.g. per sweep point)."""
        return RandomStreams(self._derive(name))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomStreams(seed={self._seed})"
