"""Run metrics: the paper's two headline measures plus diagnostics.

"We quantify the benefits of tunability in terms of two metrics — system
utilization and job throughput" (Section 5.3), where throughput counts jobs
that meet their deadlines (equivalently, admitted jobs, since admission
guarantees on-time completion in the fault-free model — the simulator still
verifies this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.admission import AdmissionDecision

__all__ = ["RunMetrics", "MetricsCollector"]


@dataclass(frozen=True, slots=True)
class RunMetrics:
    """Aggregate outcome of one simulated run.

    Attributes
    ----------
    offered / admitted / rejected:
        Job counts; ``throughput`` is an alias for ``admitted``.
    utilization:
        Committed processor-time over capacity x [first release, last finish].
    mean_response / p95_response:
        Response-time stats over admitted jobs (finish − release).
    mean_slack:
        Mean of (absolute deadline − finish) over admitted jobs — how much
        margin the schedule leaves.
    chain_usage:
        Admitted-job count per configuration index (which path won).
    achieved_quality:
        Sum of path qualities over admitted jobs.
    horizon:
        Last committed finish time (virtual).
    resilience:
        Fault-handling outcome of a perturbed run (event counts,
        survived/degraded/dropped tallies, quality delta, capacity lost,
        wasted work — see :mod:`repro.resilience`).  Empty for fault-free
        runs, so a zero-event trace yields metrics equal to the baseline
        simulator's.  Unlike ``perf`` it *is* part of equality and of
        persistence: resilience numbers are experiment results.
    perf:
        Hot-path instrumentation snapshot (wall-clock decision latency
        percentiles, probe/reject counters, profile op stats — see
        :mod:`repro.perf`).  Empty when the driver did not collect one.
        Not part of :meth:`as_dict` — wall-clock numbers are diagnostics,
        not experiment results.
    """

    offered: int
    admitted: int
    rejected: int
    utilization: float
    mean_response: float
    p95_response: float
    mean_slack: float
    chain_usage: Mapping[int, int]
    achieved_quality: float
    horizon: float
    resilience: Mapping[str, float | int] = field(default_factory=dict)
    # compare=False: wall-clock diagnostics never make two runs unequal
    # (and they don't survive persistence round-trips by design).
    perf: Mapping[str, float | int | str] = field(default_factory=dict, compare=False)

    @property
    def throughput(self) -> int:
        """Number of on-time jobs (the paper's throughput metric)."""
        return self.admitted

    @property
    def admit_rate(self) -> float:
        """Fraction of offered jobs admitted."""
        return self.admitted / self.offered if self.offered else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """Flat dict for table/report rendering (resilience keys prefixed)."""
        out = {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "throughput": self.throughput,
            "admit_rate": self.admit_rate,
            "utilization": self.utilization,
            "mean_response": self.mean_response,
            "p95_response": self.p95_response,
            "mean_slack": self.mean_slack,
            "achieved_quality": self.achieved_quality,
            "horizon": self.horizon,
        }
        for key, value in self.resilience.items():
            out[f"resilience_{key}"] = value
        return out


@dataclass
class MetricsCollector:
    """Accumulates per-decision observations into a :class:`RunMetrics`."""

    _responses: list[float] = field(default_factory=list)
    _slacks: list[float] = field(default_factory=list)
    offered: int = 0
    admitted: int = 0
    rejected: int = 0

    def observe(self, decision: AdmissionDecision, final_deadline: float | None = None) -> None:
        """Record one admission decision.

        ``final_deadline`` (absolute) enables slack accounting for admitted
        jobs; pass ``job.absolute_deadline(chain)`` when available.
        """
        self.offered += 1
        if not decision.admitted or decision.placement is None:
            self.rejected += 1
            return
        self.admitted += 1
        cp = decision.placement
        self._responses.append(cp.response_time)
        if final_deadline is not None:
            self._slacks.append(final_deadline - cp.finish)

    def finalize(
        self,
        utilization: float,
        chain_usage: Mapping[int, int],
        achieved_quality: float,
        horizon: float,
        perf: Mapping[str, float | int | str] | None = None,
        resilience: Mapping[str, float | int] | None = None,
    ) -> RunMetrics:
        """Produce the immutable summary."""
        if self._responses:
            resp = np.asarray(self._responses)
            mean_r = float(resp.mean())
            p95_r = float(np.percentile(resp, 95))
        else:
            mean_r = math.nan
            p95_r = math.nan
        mean_slack = (
            float(np.mean(self._slacks)) if self._slacks else math.nan
        )
        return RunMetrics(
            offered=self.offered,
            admitted=self.admitted,
            rejected=self.rejected,
            utilization=utilization,
            mean_response=mean_r,
            p95_response=p95_r,
            mean_slack=mean_slack,
            chain_usage=dict(chain_usage),
            achieved_quality=achieved_quality,
            horizon=horizon,
            resilience=dict(resilience) if resilience else {},
            perf=dict(perf) if perf else {},
        )
