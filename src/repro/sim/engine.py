"""A small, deterministic discrete-event simulation engine.

The figure-level experiments only need arrival-ordered job submission
(:mod:`repro.sim.simulator`), but the runtime-level demos — the EDF
best-effort executor extension and the Calypso integration example — need a
real engine: handlers scheduling further events, virtual clock, stop
conditions.  This engine is intentionally minimal and synchronous.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue

__all__ = ["SimulationEngine"]

Handler = Callable[["SimulationEngine", Event], None]


class SimulationEngine:
    """Virtual-time event loop with kind-dispatched handlers.

    Usage::

        eng = SimulationEngine()
        eng.on("arrival", lambda eng, ev: ...)
        eng.at(3.0, "arrival", payload=job)
        eng.run()
    """

    def __init__(
        self,
        start_time: float = 0.0,
        audit: Handler | None = None,
    ) -> None:
        self._queue = EventQueue()
        self._handlers: dict[str, list[Handler]] = {}
        self._now = start_time
        self._processed = 0
        self._running = False
        #: Opt-in verification hook: called after every dispatched event
        #: (all kind handlers have run) with ``(engine, event)``.  Raise to
        #: abort the run — the clock and counters reflect the audited
        #: event, so the failure is locatable.  See :mod:`repro.verify`.
        self.audit = audit

    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events handled so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of live events awaiting dispatch."""
        return len(self._queue)

    # ------------------------------------------------------------------

    def on(self, kind: str, handler: Handler) -> None:
        """Register ``handler`` for events of ``kind`` (append order kept)."""
        self._handlers.setdefault(kind, []).append(handler)

    def at(self, time: float, kind: str, payload: Any = None, priority: int = 0) -> Event:
        """Schedule an event at absolute virtual time ``time``."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        return self._queue.push(Event(time, kind, payload, priority))

    def after(self, delay: float, kind: str, payload: Any = None, priority: int = 0) -> Event:
        """Schedule an event ``delay`` after the current time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, kind, payload, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------

    def step(self) -> Event:
        """Dispatch exactly one event; returns it."""
        ev = self._queue.pop()
        if ev.time < self._now - 1e-12:
            raise SimulationError(
                f"event queue yielded past event {ev} at time {self._now}"
            )
        self._now = max(self._now, ev.time)
        self._processed += 1
        for handler in self._handlers.get(ev.kind, ()):  # deterministic order
            handler(self, ev)
        if self.audit is not None:
            self.audit(self, ev)
        return ev

    def run(self, until: float = math.inf, max_events: int | None = None) -> int:
        """Run until the queue drains, ``until`` passes, or ``max_events``.

        Returns the number of events processed by this call.  Events at
        exactly ``until`` are processed.

        When ``until`` is finite and every event at or before it has been
        handled (including the queue draining early), the clock advances to
        ``until`` — so back-to-back ``run(until=t1); run(until=t2)`` callers
        observe ``now == t1`` between the calls rather than a clock stuck at
        the last event.  A stop caused by ``max_events`` leaves the clock at
        the last processed event, since work at or before ``until`` remains.
        """
        if self._running:
            raise SimulationError("engine is not re-entrant")
        self._running = True
        count = 0
        try:
            while self._queue:
                if self._queue.peek_time() > until:
                    break
                if max_events is not None and count >= max_events:
                    break
                self.step()
                count += 1
            # peek_time() is +inf on an empty queue, so this single check
            # covers both the early-drain and next-event-beyond-until stops.
            if math.isfinite(until) and self._queue.peek_time() > until:
                self._now = max(self._now, until)
        finally:
            self._running = False
        return count
