"""A best-effort EDF executor (extension; paper §6 context).

The related-work section notes that classic real-time schedulers such as
EDF lose their optimality guarantees for *parallel* tasks, and the
introduction argues best-effort parallel resource management gives soft
real-time applications "arbitrary delay".  This module makes those claims
measurable: it executes the same job streams as the QoS arbitrator but with
**no reservations and no admission control** — tasks queue in
earliest-deadline-first order and start whenever enough processors are
free.

Semantics
---------
* Non-preemptive: a started task holds its processors to completion.
* A task is dispatched only if it can still meet its deadline
  (``now + duration <= deadline``); otherwise its whole job is dropped as
  *late* (its chain cannot complete on time).  Work already spent on a
  later-dropped job is counted as *wasted*.
* ``backfill=True`` (default) lets tasks behind a too-wide queue head start
  if they fit; ``backfill=False`` is strict head-of-line EDF.
* A tunable job must pick one path up front (there is no negotiation in a
  best-effort world); :class:`ChainSelector` offers the obvious policies.

The executor runs on the generic discrete-event engine
(:class:`repro.sim.engine.SimulationEngine`).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from repro.errors import ConfigurationError, SimulationError
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.sim.engine import SimulationEngine

__all__ = ["ChainSelector", "BestEffortMetrics", "EDFExecutor"]


class ChainSelector(Enum):
    """How a tunable job picks its single path in a best-effort system."""

    #: The first enumerated chain (the application's default).
    FIRST = "first"
    #: The chain with the smallest zero-gap execution time.
    MIN_DURATION = "min-duration"
    #: The chain with the smallest maximum width (easiest to squeeze in).
    MIN_WIDTH = "min-width"


def _select(job: Job, selector: ChainSelector) -> TaskChain:
    if selector is ChainSelector.FIRST or len(job.chains) == 1:
        return job.chains[0]
    if selector is ChainSelector.MIN_DURATION:
        return min(job.chains, key=lambda c: c.total_duration)
    if selector is ChainSelector.MIN_WIDTH:
        return min(job.chains, key=lambda c: c.max_width)
    raise ConfigurationError(f"unknown selector {selector!r}")  # pragma: no cover


@dataclass(frozen=True, slots=True)
class BestEffortMetrics:
    """Outcome of one best-effort run.

    ``on_time`` jobs completed every task by its deadline; ``late`` jobs
    were dropped when some task could no longer meet its deadline.
    ``wasted_area`` is processor-time consumed by tasks of jobs that were
    later dropped — work a reservation-based admission controller would
    never have started.
    """

    offered: int
    on_time: int
    late: int
    busy_area: float
    wasted_area: float
    horizon: float
    capacity: int

    @property
    def on_time_rate(self) -> float:
        """Fraction of offered jobs finishing entirely on time."""
        return self.on_time / self.offered if self.offered else 0.0

    @property
    def utilization(self) -> float:
        """Busy processor-time over capacity x horizon."""
        if self.horizon <= 0:
            return 0.0
        return self.busy_area / (self.capacity * self.horizon)

    @property
    def goodput_utilization(self) -> float:
        """Utilization counting only work of on-time jobs."""
        if self.horizon <= 0:
            return 0.0
        return (self.busy_area - self.wasted_area) / (self.capacity * self.horizon)


class _JobState:
    __slots__ = ("job", "chain", "next_task", "consumed_area")

    def __init__(self, job: Job, chain: TaskChain) -> None:
        self.job = job
        self.chain = chain
        self.next_task = 0
        self.consumed_area = 0.0


class EDFExecutor:
    """Queue-based best-effort execution of parallel real-time job chains.

    Parameters
    ----------
    capacity:
        Number of processors.
    selector:
        Path choice for tunable jobs (no negotiation here).
    backfill:
        Allow non-head ready tasks to start when the EDF head does not fit.
    """

    def __init__(
        self,
        capacity: int,
        selector: ChainSelector = ChainSelector.FIRST,
        backfill: bool = True,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.selector = selector
        self.backfill = backfill
        self._engine = SimulationEngine()
        self._engine.on("arrival", self._on_arrival)
        self._engine.on("finish", self._on_finish)
        self._free = capacity
        self._ready: list[tuple[float, int, _JobState]] = []  # (abs deadline, seq, state)
        self._seq = itertools.count()
        self._offered = 0
        self._on_time = 0
        self._late = 0
        self._busy_area = 0.0
        self._wasted_area = 0.0
        self._horizon = 0.0

    # ------------------------------------------------------------------

    def run(self, jobs: Iterable[Job]) -> BestEffortMetrics:
        """Execute a complete arrival sequence to quiescence."""
        last = -math.inf
        for job in jobs:
            if job.release < last:
                raise SimulationError("jobs must be supplied in release order")
            last = job.release
            self._engine.at(job.release, "arrival", payload=job)
        self._engine.run()
        return BestEffortMetrics(
            offered=self._offered,
            on_time=self._on_time,
            late=self._late,
            busy_area=self._busy_area,
            wasted_area=self._wasted_area,
            horizon=self._horizon,
            capacity=self.capacity,
        )

    # ------------------------------------------------------------------

    def _enqueue(self, state: _JobState) -> None:
        task = state.chain[state.next_task]
        abs_deadline = state.job.release + task.deadline
        heapq.heappush(self._ready, (abs_deadline, next(self._seq), state))

    def _drop(self, state: _JobState) -> None:
        self._late += 1
        self._wasted_area += state.consumed_area

    def _dispatch(self, engine: SimulationEngine) -> None:
        """Start every ready task allowed by EDF order and free processors."""
        now = engine.now
        deferred: list[tuple[float, int, _JobState]] = []
        while self._ready:
            abs_deadline, seq, state = self._ready[0]
            task = state.chain[state.next_task]
            if now + task.duration > abs_deadline + 1e-9:
                heapq.heappop(self._ready)
                self._drop(state)  # cannot finish on time any more
                continue
            if task.processors > self.capacity:
                heapq.heappop(self._ready)
                self._drop(state)  # can never run on this machine
                continue
            if task.processors > self._free:
                if not self.backfill:
                    break
                deferred.append(heapq.heappop(self._ready))
                continue
            heapq.heappop(self._ready)
            self._free -= task.processors
            self._busy_area += task.area
            state.consumed_area += task.area
            engine.after(task.duration, "finish", payload=state)
        for item in deferred:
            heapq.heappush(self._ready, item)

    # Handlers ----------------------------------------------------------

    def _on_arrival(self, engine: SimulationEngine, event) -> None:
        job: Job = event.payload
        self._offered += 1
        self._enqueue(_JobState(job, _select(job, self.selector)))
        self._dispatch(engine)

    def _on_finish(self, engine: SimulationEngine, event) -> None:
        state: _JobState = event.payload
        task = state.chain[state.next_task]
        self._free += task.processors
        self._horizon = max(self._horizon, engine.now)
        state.next_task += 1
        if state.next_task == len(state.chain):
            self._on_time += 1
        else:
            self._enqueue(state)
        self._dispatch(engine)
