"""Discrete-event simulation substrate.

The paper evaluates its heuristic on a synthetic task system with Poisson
arrivals over 10,000 jobs (Section 5.3).  This subpackage provides the
machinery: deterministic seeded randomness (:mod:`repro.sim.rng`), arrival
processes (:mod:`repro.sim.arrivals`), a generic discrete-event engine
(:mod:`repro.sim.engine`), the arrival-driven scheduling simulator
(:mod:`repro.sim.simulator`), metrics (:mod:`repro.sim.metrics`) and trace
rendering (:mod:`repro.sim.trace`).

All performance numbers in this reproduction come from *virtual time* —
see DESIGN.md ("GIL substitution") for why.
"""

from repro.sim.rng import RandomStreams
from repro.sim.events import Event, EventQueue
from repro.sim.engine import SimulationEngine
from repro.sim.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    PoissonArrivals,
    TraceArrivals,
    BurstyArrivals,
)
from repro.sim.metrics import RunMetrics, MetricsCollector
from repro.sim.simulator import ArrivalSimulator, simulate_arrivals
from repro.sim.executor import BestEffortMetrics, ChainSelector, EDFExecutor

__all__ = [
    "RandomStreams",
    "Event",
    "EventQueue",
    "SimulationEngine",
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "TraceArrivals",
    "BurstyArrivals",
    "RunMetrics",
    "MetricsCollector",
    "ArrivalSimulator",
    "simulate_arrivals",
    "EDFExecutor",
    "ChainSelector",
    "BestEffortMetrics",
]
