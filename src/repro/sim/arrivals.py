"""Arrival processes.

"Jobs in each task system are assumed to arrive according to the Poisson
distribution" (Section 5.3); the mean arrival interval is the swept
parameter of Figure 5(a).  Deterministic and trace-driven processes support
testing; the bursty (on/off modulated Poisson) process is an extension used
by the robustness ablation.
"""

from __future__ import annotations

import math
from typing import Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import WorkloadError
from repro.sim.rng import RandomStreams

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "TraceArrivals",
    "BurstyArrivals",
]


@runtime_checkable
class ArrivalProcess(Protocol):
    """Anything that can produce ``n`` non-decreasing arrival times."""

    def times(self, n: int) -> Iterator[float]:
        """Yield ``n`` absolute arrival times in non-decreasing order."""
        ...


class PoissonArrivals:
    """Poisson process: i.i.d. exponential inter-arrival gaps.

    Parameters
    ----------
    mean_interval:
        Mean of the exponential inter-arrival time (the paper's "arrival
        interval" axis in Figures 5(a) and 6).
    streams:
        Randomness source; the substream name defaults to ``"arrivals"`` so
        compared systems share identical arrival sequences when given equal
        master seeds (common random numbers).
    start:
        Time of reference; the first gap is added to it.
    """

    def __init__(
        self,
        mean_interval: float,
        streams: RandomStreams,
        start: float = 0.0,
        stream_name: str = "arrivals",
    ) -> None:
        if not mean_interval > 0:
            raise WorkloadError(f"mean_interval must be positive, got {mean_interval}")
        self.mean_interval = mean_interval
        self._streams = streams
        self.start = start
        self._stream_name = stream_name

    def times(self, n: int) -> Iterator[float]:
        if n < 0:
            raise WorkloadError(f"cannot generate {n} arrivals")
        rng = self._streams.numpy(self._stream_name)
        gaps = rng.exponential(self.mean_interval, size=n)
        t = self.start
        for g in gaps:
            t += float(g)
            yield t


class DeterministicArrivals:
    """Evenly spaced arrivals every ``interval`` time units."""

    def __init__(self, interval: float, start: float = 0.0) -> None:
        if not interval >= 0:
            raise WorkloadError(f"interval must be >= 0, got {interval}")
        self.interval = interval
        self.start = start

    def times(self, n: int) -> Iterator[float]:
        if n < 0:
            raise WorkloadError(f"cannot generate {n} arrivals")
        for i in range(1, n + 1):
            yield self.start + i * self.interval


class TraceArrivals:
    """Replay a fixed, validated arrival-time trace."""

    def __init__(self, trace: Sequence[float]) -> None:
        times = [float(t) for t in trace]
        for a, b in zip(times, times[1:]):
            if b < a:
                raise WorkloadError("trace arrival times must be non-decreasing")
        for t in times:
            if math.isnan(t) or math.isinf(t):
                raise WorkloadError(f"trace contains non-finite time {t!r}")
        self._times = times

    def times(self, n: int) -> Iterator[float]:
        if n > len(self._times):
            raise WorkloadError(
                f"trace holds {len(self._times)} arrivals, {n} requested"
            )
        return iter(self._times[:n])


class BurstyArrivals:
    """Two-state modulated Poisson process (extension, not in the paper).

    Alternates between a *burst* phase with mean inter-arrival
    ``burst_interval`` and a *calm* phase with ``calm_interval``; phase
    lengths are geometric in the number of arrivals with mean
    ``mean_phase_len``.  Used by the robustness ablation to check that the
    tunability benefit is not an artifact of Poisson smoothness.
    """

    def __init__(
        self,
        burst_interval: float,
        calm_interval: float,
        streams: RandomStreams,
        mean_phase_len: float = 20.0,
        start: float = 0.0,
        stream_name: str = "arrivals-bursty",
    ) -> None:
        if not (burst_interval > 0 and calm_interval > 0):
            raise WorkloadError("phase intervals must be positive")
        if not mean_phase_len >= 1:
            raise WorkloadError("mean_phase_len must be >= 1")
        self.burst_interval = burst_interval
        self.calm_interval = calm_interval
        self.mean_phase_len = mean_phase_len
        self._streams = streams
        self.start = start
        self._stream_name = stream_name

    def times(self, n: int) -> Iterator[float]:
        if n < 0:
            raise WorkloadError(f"cannot generate {n} arrivals")
        rng = self._streams.numpy(self._stream_name)
        t = self.start
        produced = 0
        in_burst = True
        p_switch = 1.0 / self.mean_phase_len
        while produced < n:
            mean = self.burst_interval if in_burst else self.calm_interval
            t += float(rng.exponential(mean))
            yield t
            produced += 1
            if rng.random() < p_switch:
                in_burst = not in_burst

    @property
    def mean_interval(self) -> float:
        """Long-run average inter-arrival time (equal phase occupancy)."""
        return 0.5 * (self.burst_interval + self.calm_interval)
