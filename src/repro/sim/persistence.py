"""JSON persistence for jobs, arrival traces and run metrics.

Replication plumbing: a workload (job templates + exact arrival times) can
be archived and re-run bit-for-bit elsewhere, and run metrics can be
archived alongside for diffing.  The format is plain JSON with a version
tag; unknown versions are rejected loudly.
"""

from __future__ import annotations

import json
import math
from typing import Mapping

from repro.core.resources import ProcessorTimeRequest
from repro.errors import ConfigurationError
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec
from repro.sim.metrics import RunMetrics

__all__ = [
    "job_to_dict",
    "job_from_dict",
    "dump_workload",
    "load_workload",
    "metrics_to_dict",
    "metrics_from_dict",
]

FORMAT_VERSION = 1


def _task_to_dict(task: TaskSpec) -> dict[str, object]:
    return {
        "name": task.name,
        "processors": task.processors,
        "duration": task.duration,
        "deadline": None if math.isinf(task.deadline) else task.deadline,
        "quality": task.quality,
        "max_concurrency": task.max_concurrency,
    }


def _task_from_dict(data: Mapping[str, object]) -> TaskSpec:
    deadline = data["deadline"]
    return TaskSpec(
        str(data["name"]),
        ProcessorTimeRequest(int(data["processors"]), float(data["duration"])),  # type: ignore[arg-type]
        deadline=math.inf if deadline is None else float(deadline),  # type: ignore[arg-type]
        quality=float(data["quality"]),  # type: ignore[arg-type]
        max_concurrency=int(data["max_concurrency"]),  # type: ignore[arg-type]
    )


def job_to_dict(job: Job) -> dict[str, object]:
    """Serialize one job (identity, release, all chains)."""
    return {
        "job_id": job.job_id,
        "release": job.release,
        "name": job.name,
        "chains": [
            {
                "label": chain.label,
                "params": dict(chain.params) if chain.params else None,
                "tasks": [_task_to_dict(t) for t in chain.tasks],
            }
            for chain in job.chains
        ],
    }


def job_from_dict(data: Mapping[str, object]) -> Job:
    """Reconstruct a job serialized by :func:`job_to_dict`."""
    chains = []
    for chain_data in data["chains"]:  # type: ignore[union-attr]
        chains.append(
            TaskChain(
                tuple(_task_from_dict(t) for t in chain_data["tasks"]),
                label=str(chain_data.get("label", "")),
                params=chain_data.get("params"),
            )
        )
    return Job(
        chains=tuple(chains),
        release=float(data["release"]),  # type: ignore[arg-type]
        job_id=int(data["job_id"]),  # type: ignore[arg-type]
        name=str(data.get("name", "")),
    )


def dump_workload(jobs: list[Job], note: str = "") -> str:
    """Archive a complete arrival sequence as JSON text."""
    payload = {
        "version": FORMAT_VERSION,
        "note": note,
        "jobs": [job_to_dict(j) for j in jobs],
    }
    return json.dumps(payload, indent=2)


def load_workload(text: str) -> list[Job]:
    """Load an archived workload; jobs come back in release order."""
    payload = json.loads(text)
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported workload format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    jobs = [job_from_dict(j) for j in payload["jobs"]]
    for a, b in zip(jobs, jobs[1:]):
        if b.release < a.release:
            raise ConfigurationError(
                "archived workload is not in release order"
            )
    return jobs


def metrics_to_dict(metrics: RunMetrics) -> dict[str, object]:
    """Serialize run metrics (NaN-safe: NaN becomes null)."""
    out: dict[str, object] = {"version": FORMAT_VERSION}
    for key, value in metrics.as_dict().items():
        if key.startswith("resilience_"):
            continue  # nested below, like chain_usage
        if isinstance(value, float) and math.isnan(value):
            out[key] = None
        else:
            out[key] = value
    out["chain_usage"] = {str(k): v for k, v in metrics.chain_usage.items()}
    out["resilience"] = dict(metrics.resilience)
    return out


def metrics_from_dict(data: Mapping[str, object]) -> RunMetrics:
    """Reconstruct run metrics serialized by :func:`metrics_to_dict`."""
    if data.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported metrics format version {data.get('version')!r}"
        )

    def fget(key: str) -> float:
        value = data[key]
        return math.nan if value is None else float(value)  # type: ignore[arg-type]

    return RunMetrics(
        offered=int(data["offered"]),  # type: ignore[arg-type]
        admitted=int(data["admitted"]),  # type: ignore[arg-type]
        rejected=int(data["rejected"]),  # type: ignore[arg-type]
        utilization=fget("utilization"),
        mean_response=fget("mean_response"),
        p95_response=fget("p95_response"),
        mean_slack=fget("mean_slack"),
        chain_usage={
            int(k): int(v)
            for k, v in data["chain_usage"].items()  # type: ignore[union-attr]
        },
        achieved_quality=fget("achieved_quality"),
        horizon=fget("horizon"),
        # Absent in archives written before the resilience subsystem.
        resilience=dict(data.get("resilience") or {}),  # type: ignore[arg-type]
    )
