"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class.  Subsystem-specific bases (:class:`SchedulingError`,
:class:`ModelError`, :class:`CalypsoError`, ...) group related failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "InvalidTaskError",
    "InvalidChainError",
    "InvalidJobError",
    "SchedulingError",
    "InfeasibleRequestError",
    "CapacityExceededError",
    "AdmissionRejected",
    "ScheduleConsistencyError",
    "NegotiationError",
    "ConfigurationError",
    "LanguageError",
    "ControlParameterError",
    "ProgramStructureError",
    "CalypsoError",
    "ConcurrentWriteError",
    "StepStateError",
    "SimulationError",
    "WorkloadError",
    "VerificationError",
    "ServiceError",
    "TransientWorkerError",
    "ServiceUnavailableError",
    "WalCorruptionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Task / job model
# ---------------------------------------------------------------------------


class ModelError(ReproError):
    """Base class for task-model validation errors."""


class InvalidTaskError(ModelError):
    """A task specification is malformed (non-positive duration, etc.)."""


class InvalidChainError(ModelError):
    """A task chain is malformed (empty, non-monotone deadlines, ...)."""


class InvalidJobError(ModelError):
    """A job is malformed (no chains, inconsistent release times, ...)."""


# ---------------------------------------------------------------------------
# Scheduling
# ---------------------------------------------------------------------------


class SchedulingError(ReproError):
    """Base class for scheduler errors."""


class InfeasibleRequestError(SchedulingError):
    """A request can never be satisfied (e.g. task wider than the machine)."""


class CapacityExceededError(SchedulingError):
    """A reservation would drive free-processor count negative."""


class AdmissionRejected(SchedulingError):
    """Raised (or reported) when admission control rejects a job.

    Carries the job id so batch callers can account for the rejection.
    """

    def __init__(self, job_id: object, reason: str = "no schedulable configuration"):
        super().__init__(f"job {job_id!r} rejected: {reason}")
        self.job_id = job_id
        self.reason = reason


class ScheduleConsistencyError(SchedulingError):
    """A committed schedule violates an invariant (overlap, deadline, order)."""


class NegotiationError(SchedulingError):
    """QoS agent/arbitrator negotiation protocol violation."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied to a component."""


# ---------------------------------------------------------------------------
# Language / DSL
# ---------------------------------------------------------------------------


class LanguageError(ReproError):
    """Base class for tunability-DSL errors."""


class ControlParameterError(LanguageError):
    """A control parameter is undeclared, re-declared, or mis-assigned."""


class ProgramStructureError(LanguageError):
    """Structural misuse of task/task_select/task_loop constructs."""


# ---------------------------------------------------------------------------
# Calypso runtime
# ---------------------------------------------------------------------------


class CalypsoError(ReproError):
    """Base class for Calypso runtime errors."""


class ConcurrentWriteError(CalypsoError):
    """Two routines in one parallel step wrote the same shared location.

    Calypso guarantees CREW (concurrent-read exclusive-write) semantics;
    violating writes are detected at step commit time.
    """


class StepStateError(CalypsoError):
    """A parallel step was used outside its lifecycle (e.g. commit twice)."""


# ---------------------------------------------------------------------------
# Simulation / workloads
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Discrete-event simulation engine misuse (time travel, etc.)."""


class WorkloadError(ReproError):
    """A workload generator was given inconsistent parameters."""


class VerificationError(ReproError):
    """An independent verification check (audit, differential, post-check)
    found the system lying about its own results."""


# ---------------------------------------------------------------------------
# Admission service
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for admission-service errors (:mod:`repro.service`)."""


class TransientWorkerError(ServiceError):
    """A decision worker failed *before* taking effect; safe to retry.

    The service's retry loop assumes the failed attempt committed nothing
    to the arbitrator — workers must fail-before-side-effect (a worker
    that dies mid-commit takes the whole service down instead, and crash
    recovery replays the WAL).
    """


class ServiceUnavailableError(ServiceError):
    """The admission service is stopped, failed, or crashing; resubmit
    after recovery (requests are idempotent by request id)."""


class WalCorruptionError(ServiceError):
    """The write-ahead decision log is damaged beyond the torn tail that
    a crash legitimately leaves (bad checksum *before* valid records, a
    corrupt checkpoint, an unsupported format version)."""
