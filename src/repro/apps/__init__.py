"""Tunable example applications built on the repro library."""
