"""Step 1: parallel pixel sampling with a quick interest test.

"The first step samples a subset of the pixels in parallel and performs a
quick test to determine whether or not the tested pixel is of interest.  A
pixel is of interest if the difference among intensities/colors of its
neighbor pixels is beyond a threshold."

*Sampling granularity* ``g`` means one of every ``g`` pixels is tested —
a stride of ``sqrt(g)`` in each image dimension (the paper's configurations
``g = 16`` and ``g = 64`` are strides 4 and 8).  The interest test is the
neighborhood intensity range (max − min over the 8-neighborhood) against a
threshold — vectorized over the whole sample lattice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SampleResult", "sample_image", "stride_for_granularity"]


def stride_for_granularity(granularity: int) -> int:
    """Per-dimension sampling stride for 1-in-``granularity`` sampling."""
    if granularity < 1:
        raise ConfigurationError(f"granularity must be >= 1, got {granularity}")
    stride = round(math.sqrt(granularity))
    if stride * stride != granularity:
        raise ConfigurationError(
            f"granularity must be a perfect square (stride^2), got {granularity}"
        )
    return stride


@dataclass(frozen=True, slots=True)
class SampleResult:
    """Outcome of the sampling step.

    Attributes
    ----------
    points:
        ``(N, 2)`` (row, col) coordinates of *interesting* sampled pixels.
    sampled_count:
        How many pixels were tested — the step's work measure.
    granularity:
        The configuration used.
    """

    points: np.ndarray
    sampled_count: int
    granularity: int

    @property
    def interesting_count(self) -> int:
        """Number of pixels that passed the interest test."""
        return int(self.points.shape[0])


def _neighborhood_range(pixels: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Max-min intensity over each sample's 8-neighborhood (vectorized)."""
    h, w = pixels.shape
    lo = np.full(rows.shape, np.inf, dtype=np.float64)
    hi = np.full(rows.shape, -np.inf, dtype=np.float64)
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            rr = np.clip(rows + dr, 0, h - 1)
            cc = np.clip(cols + dc, 0, w - 1)
            vals = pixels[rr, cc]
            np.minimum(lo, vals, out=lo)
            np.maximum(hi, vals, out=hi)
    return hi - lo


def sample_image(
    pixels: np.ndarray,
    granularity: int,
    threshold: float = 0.4,
    row_band: tuple[int, int] | None = None,
) -> SampleResult:
    """Test one of every ``granularity`` pixels for interest.

    ``row_band`` restricts sampling to rows ``[lo, hi)`` — the hook the
    Calypso parallel step uses to split the image across routine copies.
    """
    if pixels.ndim != 2:
        raise ConfigurationError(f"expected a 2D image, got shape {pixels.shape}")
    if not 0 < threshold < 1:
        raise ConfigurationError(f"threshold must be in (0, 1), got {threshold}")
    stride = stride_for_granularity(granularity)
    h, w = pixels.shape
    lo, hi = row_band if row_band is not None else (0, h)
    if not 0 <= lo <= hi <= h:
        raise ConfigurationError(f"row band {row_band!r} outside image of height {h}")
    # Lattice phase centers samples inside the stride cells.
    r0 = lo + (stride // 2)
    rows = np.arange(r0, hi, stride)
    cols = np.arange(stride // 2, w, stride)
    if rows.size == 0 or cols.size == 0:
        return SampleResult(np.empty((0, 2), dtype=np.int64), 0, granularity)
    rr, cc = np.meshgrid(rows, cols, indexing="ij")
    rr = rr.ravel()
    cc = cc.ravel()
    contrast = _neighborhood_range(pixels, rr, cc)
    mask = contrast > threshold
    points = np.stack([rr[mask], cc[mask]], axis=1).astype(np.int64)
    return SampleResult(points, int(rr.size), granularity)
