"""Step 3 and the full pipeline.

"Finally, the third step runs a compute-intensive algorithm for every pixel
in the regions of interest."  The compute-intensive algorithm here is the
Harris corner/junction response (structure-tensor eigen-analysis), applied
only inside region masks; detected junctions are local maxima of the
response above a threshold, with simple non-maximum suppression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.apps.junction.regions import Region, mark_regions
from repro.apps.junction.sampling import SampleResult, sample_image
from repro.errors import ConfigurationError

__all__ = [
    "WorkStats",
    "JunctionResult",
    "harris_response",
    "junction_points",
    "detect_junctions",
]


@dataclass(frozen=True, slots=True)
class WorkStats:
    """Work performed by each pipeline step (the profiling measure).

    ``step1`` counts pixels sampled, ``step2`` counts interesting pixels
    clustered, ``step3`` counts region pixels analysed.  These are the
    quantities the QoS agent's resource table scales with.
    """

    step1: int
    step2: int
    step3: int

    @property
    def total(self) -> int:
        """Total work units across the pipeline."""
        return self.step1 + self.step2 + self.step3


@dataclass(frozen=True, slots=True)
class JunctionResult:
    """Full pipeline output for one image and configuration."""

    points: np.ndarray
    regions: tuple[Region, ...]
    sample: SampleResult
    work: WorkStats
    granularity: int
    search_distance: float

    @property
    def count(self) -> int:
        """Number of junctions detected."""
        return int(self.points.shape[0])


def harris_response(
    pixels: np.ndarray, window: int = 3, kappa: float = 0.05
) -> np.ndarray:
    """Harris corner response ``det(M) - kappa * trace(M)^2`` per pixel.

    ``M`` is the structure tensor of image gradients averaged over a
    ``window x window`` neighborhood.  Junctions (corners, T- and
    X-crossings) score high; straight edges score near zero or negative.
    """
    if pixels.ndim != 2:
        raise ConfigurationError(f"expected a 2D image, got shape {pixels.shape}")
    if window < 1 or window % 2 == 0:
        raise ConfigurationError(f"window must be odd and >= 1, got {window}")
    img = pixels.astype(np.float64)
    gy, gx = np.gradient(img)
    sxx = ndimage.uniform_filter(gx * gx, size=window)
    syy = ndimage.uniform_filter(gy * gy, size=window)
    sxy = ndimage.uniform_filter(gx * gy, size=window)
    det = sxx * syy - sxy * sxy
    trace = sxx + syy
    return det - kappa * trace * trace


def _local_maxima(
    response: np.ndarray, mask: np.ndarray, threshold: float, radius: int
) -> np.ndarray:
    """Thresholded local maxima of ``response`` inside ``mask``."""
    footprint = np.ones((2 * radius + 1, 2 * radius + 1), dtype=bool)
    local_max = ndimage.maximum_filter(response, footprint=footprint)
    peaks = (response >= local_max - 1e-12) & (response > threshold) & mask
    rows, cols = np.nonzero(peaks)
    return np.stack([rows, cols], axis=1).astype(np.int64)


def _orientation_runs(
    pixels: np.ndarray,
    row: int,
    col: int,
    radius: int = 5,
    bins: int = 12,
    occupancy: float = 0.35,
) -> int:
    """Distinct edge orientations (mod pi) in a window around a pixel.

    A gradient-magnitude-weighted orientation histogram is thresholded at
    ``occupancy`` of its peak; the count of circularly-contiguous occupied
    runs approximates the number of distinct edges meeting near the pixel.
    A line *endpoint* or a straight edge shows one run; a genuine junction
    (corner, T, X) shows two or more.
    """
    h, w = pixels.shape
    window = pixels[
        max(row - radius, 0) : row + radius + 1,
        max(col - radius, 0) : col + radius + 1,
    ]
    gy, gx = np.gradient(window.astype(np.float64))
    magnitude = np.hypot(gx, gy)
    if magnitude.max() < 1e-9:
        return 0
    angles = np.mod(np.arctan2(gy, gx), np.pi)
    hist, _ = np.histogram(
        angles, bins=bins, range=(0.0, np.pi), weights=magnitude
    )
    occupied = hist > occupancy * hist.max()
    return int(_count_circular_runs(occupied[np.newaxis, :])[0])


def _count_circular_runs(occupied: np.ndarray) -> np.ndarray:
    """Circularly-contiguous occupied runs per row of a boolean array.

    A run starts at each rising edge of the wrapped sequence; a fully
    occupied row has no edges but is one run.
    """
    rising = occupied & ~np.roll(occupied, 1, axis=1)
    runs = rising.sum(axis=1).astype(np.int64)
    runs[(runs == 0) & occupied.all(axis=1)] = 1
    return runs


def _histogram_bin_indices(values: np.ndarray, bins: int, hi: float) -> np.ndarray:
    """Uniform-bin indices over ``[0, hi]`` matching ``np.histogram``.

    Replicates numpy's fast path exactly — truncation plus edge
    corrections against the explicit edge array — so the batched
    orientation histograms are bitwise identical to per-point
    ``np.histogram`` calls.
    """
    edges = np.linspace(0.0, hi, bins + 1)
    indices = (values * (bins / hi)).astype(np.intp)
    np.clip(indices, 0, bins - 1, out=indices)
    indices[values < edges[indices]] -= 1
    bump = (values >= edges[indices + 1]) & (indices != bins - 1)
    indices[bump] += 1
    return indices


def _orientation_runs_batched(
    pixels: np.ndarray,
    candidates: np.ndarray,
    radius: int = 5,
    bins: int = 12,
    occupancy: float = 0.35,
) -> np.ndarray:
    """:func:`_orientation_runs` for every candidate at once.

    Interior candidates (full ``(2*radius+1)``-square windows) are
    processed as one strided batch: windows are gathered with
    ``sliding_window_view``, gradients taken per-window (``np.gradient``
    broadcasts over the batch axis, keeping the window-local one-sided
    edge differences of the scalar path), and all weighted orientation
    histograms are accumulated in a single ``bincount`` over combined
    (candidate, bin) indices.  Candidates whose windows are clipped by
    the image border fall back to the scalar path — there are at most
    ``O(radius * perimeter)`` of them.
    """
    n = candidates.shape[0]
    runs = np.zeros(n, dtype=np.int64)
    if n == 0:
        return runs
    h, w = pixels.shape
    rows = candidates[:, 0].astype(np.intp)
    cols = candidates[:, 1].astype(np.intp)
    side = 2 * radius + 1
    interior = (
        (rows >= radius)
        & (rows + radius < h)
        & (cols >= radius)
        & (cols + radius < w)
    )
    for i in np.nonzero(~interior)[0]:
        runs[i] = _orientation_runs(
            pixels, int(rows[i]), int(cols[i]), radius, bins, occupancy
        )
    if not interior.any():
        return runs
    idx = np.nonzero(interior)[0]
    img = pixels.astype(np.float64)
    windows = np.lib.stride_tricks.sliding_window_view(img, (side, side))[
        rows[idx] - radius, cols[idx] - radius
    ]
    gy, gx = np.gradient(windows, axis=(1, 2))
    magnitude = np.hypot(gx, gy)
    flat_mag = magnitude.reshape(len(idx), -1)
    angles = np.mod(np.arctan2(gy, gx), np.pi).reshape(len(idx), -1)
    bin_idx = _histogram_bin_indices(angles.ravel(), bins, np.pi).reshape(
        len(idx), -1
    )
    owner = np.repeat(np.arange(len(idx), dtype=np.intp), flat_mag.shape[1])
    hists = np.bincount(
        (owner * bins + bin_idx.ravel()),
        weights=flat_mag.ravel(),
        minlength=len(idx) * bins,
    ).reshape(len(idx), bins)
    occupied = hists > occupancy * hists.max(axis=1, keepdims=True)
    batch_runs = _count_circular_runs(occupied)
    batch_runs[flat_mag.max(axis=1) < 1e-9] = 0
    runs[idx] = batch_runs
    return runs


def junction_points(
    pixels: np.ndarray,
    mask: np.ndarray,
    relative_threshold: float = 0.1,
    nms_radius: int = 9,
    smoothing_sigma: float = 1.2,
    window: int = 5,
    min_orientations: int = 2,
) -> np.ndarray:
    """Step-3 core: thresholded Harris maxima of ``pixels`` inside ``mask``.

    Candidate maxima are post-filtered by the number of distinct edge
    orientations meeting at the point (``min_orientations``; pass 1 to
    disable) — the Harris response alone also fires on line *endpoints*,
    which have high curvature but only one edge direction.  Shared by
    :func:`detect_junctions` and the Calypso step body so both paths
    compute identical detections.
    """
    if not mask.any():
        return np.empty((0, 2), dtype=np.int64)
    smoothed = ndimage.gaussian_filter(pixels.astype(np.float64), smoothing_sigma)
    response = harris_response(smoothed, window=window)
    threshold = relative_threshold * float(response.max())
    candidates = _local_maxima(response, mask, threshold, nms_radius)
    if min_orientations <= 1 or candidates.size == 0:
        return candidates
    runs = _orientation_runs_batched(smoothed, candidates)
    keep = candidates[runs >= min_orientations]
    if keep.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    return np.ascontiguousarray(keep, dtype=np.int64)


def detect_junctions(
    pixels: np.ndarray,
    granularity: int = 16,
    search_distance: float = 6.0,
    interest_threshold: float = 0.4,
    min_points: int = 3,
    relative_threshold: float = 0.1,
    nms_radius: int = 9,
    smoothing_sigma: float = 1.2,
    window: int = 5,
) -> JunctionResult:
    """Run the complete 3-step junction detection pipeline.

    Parameters mirror the paper's two tuning knobs (``granularity``,
    ``search_distance``) plus the fixed thresholds a deployment would
    profile once: the Harris threshold is ``relative_threshold`` times the
    image's global peak response, computed on a Gaussian-smoothed copy
    (rasterized lines alias into spurious corners otherwise).  Work
    counters for each step are returned alongside the detections; they
    feed the QoS agent's resource table.
    """
    if not 0 < relative_threshold < 1:
        raise ConfigurationError(
            f"relative_threshold must be in (0, 1), got {relative_threshold}"
        )
    sample = sample_image(pixels, granularity, threshold=interest_threshold)
    regions = tuple(
        mark_regions(
            sample.points,
            search_distance,
            image_shape=pixels.shape,  # type: ignore[arg-type]
            min_points=min_points,
        )
    )

    # Step 3: Harris response only on region pixels.
    mask = np.zeros(pixels.shape, dtype=bool)
    for region in regions:
        mask |= region.pixel_mask(pixels.shape)  # type: ignore[arg-type]
    step3_work = int(mask.sum())
    points = junction_points(
        pixels,
        mask,
        relative_threshold=relative_threshold,
        nms_radius=nms_radius,
        smoothing_sigma=smoothing_sigma,
        window=window,
    )

    work = WorkStats(
        step1=sample.sampled_count,
        step2=sample.interesting_count,
        step3=step3_work,
    )
    return JunctionResult(
        points=points,
        regions=regions,
        sample=sample,
        work=work,
        granularity=granularity,
        search_distance=search_distance,
    )
