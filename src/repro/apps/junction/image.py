"""Synthetic images with planted, ground-truth junctions.

The paper ran junction detection on real imagery with profiled resource
tables; offline we need images whose junctions are *known*, so detection
quality (precision/recall) is measurable rather than asserted.  The
generator plants K junction points and radiates 2–4 dark line segments
from each onto a light, noisy background — every planted point is a true
intensity junction, and segments rarely cross elsewhere at the densities
used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams

__all__ = ["JunctionImage", "synthetic_image"]


@dataclass(frozen=True, slots=True)
class JunctionImage:
    """An image plus its planted ground truth.

    Attributes
    ----------
    pixels:
        ``(H, W)`` float32 array in [0, 1]; lines are dark on light.
    junctions:
        ``(K, 2)`` integer array of (row, col) planted junction centers.
    """

    pixels: np.ndarray
    junctions: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        """Image (height, width)."""
        return self.pixels.shape  # type: ignore[return-value]


def _draw_segment(
    canvas: np.ndarray, r0: float, c0: float, angle: float, length: float
) -> None:
    """Rasterize one dark segment from (r0, c0) along ``angle``."""
    h, w = canvas.shape
    n = max(int(length * 2), 2)  # 2 samples per pixel of length: no gaps
    ts = np.linspace(0.0, length, n)
    rows = np.clip(np.round(r0 + ts * np.sin(angle)).astype(int), 0, h - 1)
    cols = np.clip(np.round(c0 + ts * np.cos(angle)).astype(int), 0, w - 1)
    canvas[rows, cols] = 0.0


def synthetic_image(
    size: int = 128,
    n_junctions: int = 6,
    noise: float = 0.03,
    seed: int = 0,
    margin: int = 12,
    min_arms: int = 3,
    max_arms: int = 4,
) -> JunctionImage:
    """Generate a light image with ``n_junctions`` planted dark junctions.

    Parameters
    ----------
    size:
        Image is ``size x size`` pixels.
    n_junctions:
        Number of planted junction centers; centers keep at least ~2x
        ``margin`` separation so matching is unambiguous.
    noise:
        Std-dev of additive Gaussian background noise (clipped to [0, 1]).
    seed:
        Reproducibility seed.
    margin:
        Minimum distance of centers from the border and half the minimum
        center separation.
    min_arms / max_arms:
        Segments radiating from each junction (2 = corner, 3+ = junction).
    """
    if size < 4 * margin:
        raise ConfigurationError(
            f"image size {size} too small for margin {margin}"
        )
    if n_junctions < 1:
        raise ConfigurationError(f"need at least one junction, got {n_junctions}")
    if not 2 <= min_arms <= max_arms:
        raise ConfigurationError(
            f"need 2 <= min_arms <= max_arms, got {min_arms}, {max_arms}"
        )
    rng = RandomStreams(seed).numpy("junction-image")
    canvas = np.ones((size, size), dtype=np.float32)

    centers: list[tuple[int, int]] = []
    attempts = 0
    while len(centers) < n_junctions:
        attempts += 1
        if attempts > 10_000:
            raise ConfigurationError(
                f"cannot place {n_junctions} junctions with margin {margin} "
                f"in a {size}x{size} image"
            )
        r = int(rng.integers(margin, size - margin))
        c = int(rng.integers(margin, size - margin))
        if all((r - rr) ** 2 + (c - cc) ** 2 >= (2 * margin) ** 2 for rr, cc in centers):
            centers.append((r, c))

    for r, c in centers:
        n_arms = int(rng.integers(min_arms, max_arms + 1))
        base = rng.uniform(0, 2 * np.pi)
        # Spread arms so no two are nearly collinear (a degenerate "junction").
        angles = base + np.linspace(0, 2 * np.pi, n_arms, endpoint=False)
        angles = angles + rng.uniform(-0.3, 0.3, size=n_arms)
        for angle in angles:
            length = float(rng.uniform(margin, 2.5 * margin))
            _draw_segment(canvas, float(r), float(c), float(angle), length)

    if noise > 0:
        canvas = canvas + rng.normal(0.0, noise, canvas.shape).astype(np.float32)
        canvas = np.clip(canvas, 0.0, 1.0)

    return JunctionImage(
        pixels=canvas.astype(np.float32),
        junctions=np.asarray(centers, dtype=np.int64),
    )
