"""Step 2: region-of-interest construction.

"The second step draws a region of interest around a cluster of
interesting pixels.  The region is essentially a convex hull containing at
least a certain number of interesting pixels in close proximity."

Clustering: interesting pixels within ``search_distance`` of each other are
transitively grouped (single-linkage) using a KD-tree pair query and
connected components; each cluster of at least ``min_points`` pixels
becomes a region whose geometry is the convex hull of its members, dilated
by ``search_distance`` (the "search" reaches that far past the samples —
this is what lets a *larger* search distance compensate for *coarser*
sampling, the paper's central tunability trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np
from scipy.spatial import ConvexHull, QhullError, cKDTree

from repro.errors import ConfigurationError

__all__ = ["Region", "mark_regions"]


@dataclass(frozen=True, slots=True)
class Region:
    """One region of interest.

    Attributes
    ----------
    points:
        ``(M, 2)`` member (row, col) coordinates.
    bbox:
        ``(r_lo, c_lo, r_hi, c_hi)`` half-open bounding box of the dilated
        region, clipped to the image.
    hull:
        ``(V, 2)`` convex hull vertices of the members (float), or the
        member points themselves when the cluster is degenerate (< 3
        points or collinear).
    dilation:
        The search distance the region was grown by.
    """

    points: np.ndarray
    bbox: tuple[int, int, int, int]
    hull: np.ndarray
    dilation: float

    @property
    def pixel_count(self) -> int:
        """Number of image pixels in the region (the step-3 work measure)."""
        r_lo, c_lo, r_hi, c_hi = self.bbox
        return max(r_hi - r_lo, 0) * max(c_hi - c_lo, 0)

    def pixel_mask(self, shape: tuple[int, int]) -> np.ndarray:
        """Boolean mask of region pixels: inside the dilated hull.

        Membership = within ``dilation`` of the hull polygon, computed as
        "inside every hull half-plane pushed out by ``dilation``"; for
        degenerate hulls it falls back to the (already dilated) bbox.
        """
        h, w = shape
        mask = np.zeros(shape, dtype=bool)
        r_lo, c_lo, r_hi, c_hi = self.bbox
        r_lo, c_lo = max(r_lo, 0), max(c_lo, 0)
        r_hi, c_hi = min(r_hi, h), min(c_hi, w)
        if r_hi <= r_lo or c_hi <= c_lo:
            return mask
        if self.hull.shape[0] < 3:
            mask[r_lo:r_hi, c_lo:c_hi] = True
            return mask
        rr, cc = np.meshgrid(
            np.arange(r_lo, r_hi), np.arange(c_lo, c_hi), indexing="ij"
        )
        inside = np.ones(rr.shape, dtype=bool)
        verts = self.hull
        centroid = verts.mean(axis=0)
        n = verts.shape[0]
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            edge = b - a
            normal = np.array([edge[1], -edge[0]], dtype=np.float64)
            norm = np.hypot(normal[0], normal[1])
            if norm == 0:
                continue
            normal = normal / norm
            # Orient the normal away from the hull centroid so "outward" does
            # not depend on the vertex winding convention.
            if (centroid[0] - a[0]) * normal[0] + (centroid[1] - a[1]) * normal[1] > 0:
                normal = -normal
            signed = (rr - a[0]) * normal[0] + (cc - a[1]) * normal[1]
            inside &= signed <= self.dilation
        mask[r_lo:r_hi, c_lo:c_hi] = inside
        return mask


def _clusters(points: np.ndarray, search_distance: float) -> list[np.ndarray]:
    """Single-linkage clusters of points within ``search_distance``."""
    tree = cKDTree(points)
    pairs = tree.query_pairs(search_distance, output_type="ndarray")
    graph = nx.Graph()
    graph.add_nodes_from(range(points.shape[0]))
    graph.add_edges_from(pairs)
    return [
        points[np.fromiter(component, dtype=np.int64)]
        for component in nx.connected_components(graph)
    ]


def mark_regions(
    points: np.ndarray,
    search_distance: float,
    image_shape: tuple[int, int],
    min_points: int = 3,
) -> list[Region]:
    """Group interesting pixels into dilated convex-hull regions.

    Returns regions sorted by bounding box for determinism.  Clusters with
    fewer than ``min_points`` members are noise and dropped.
    """
    if search_distance <= 0:
        raise ConfigurationError(
            f"search_distance must be positive, got {search_distance}"
        )
    if min_points < 1:
        raise ConfigurationError(f"min_points must be >= 1, got {min_points}")
    h, w = image_shape
    regions: list[Region] = []
    if points.shape[0] == 0:
        return regions
    for members in _clusters(np.asarray(points, dtype=np.float64), search_distance):
        if members.shape[0] < min_points:
            continue
        try:
            hull_obj = ConvexHull(members)
            hull = members[hull_obj.vertices]
        except (QhullError, ValueError):
            hull = members  # degenerate (collinear / tiny) cluster
        pad = search_distance
        r_lo = int(np.floor(members[:, 0].min() - pad))
        c_lo = int(np.floor(members[:, 1].min() - pad))
        r_hi = int(np.ceil(members[:, 0].max() + pad)) + 1
        c_hi = int(np.ceil(members[:, 1].max() + pad)) + 1
        bbox = (max(r_lo, 0), max(c_lo, 0), min(r_hi, h), min(c_hi, w))
        regions.append(
            Region(
                points=members.astype(np.int64),
                bbox=bbox,
                hull=np.asarray(hull, dtype=np.float64),
                dilation=float(search_distance),
            )
        )
    regions.sort(key=lambda r: r.bbox)
    return regions
