"""Junction detection (Section 3.2) — the paper's tunable application.

"The junction detection application detects distinguished pixels in an
image where the intensity or color changes abruptly. ... Our junction
detection algorithm consists of three steps": parallel pixel sampling with
a quick interest test; region-of-interest construction (convex hulls around
clusters of interesting pixels); and a compute-intensive per-pixel analysis
inside the regions.  Tunability: coarser sampling (cheaper step 1) is
compensated by a larger search distance and therefore larger/more regions
(more expensive step 3).

The paper used live images and profiled resource tables; we substitute a
synthetic image generator with planted ground-truth junctions
(:mod:`repro.apps.junction.image`) so output *quality* is measurable, and
derive the resource tables by profiling the actual pipeline
(:mod:`repro.apps.junction.tunable`).
"""

from repro.apps.junction.image import JunctionImage, synthetic_image
from repro.apps.junction.sampling import sample_image, SampleResult
from repro.apps.junction.regions import Region, mark_regions
from repro.apps.junction.detect import JunctionResult, detect_junctions, harris_response
from repro.apps.junction.quality import match_quality, QualityReport
from repro.apps.junction.tunable import (
    JunctionConfig,
    ProfiledStep,
    profile_configuration,
    junction_program,
    DEFAULT_CONFIGS,
)

__all__ = [
    "JunctionImage",
    "synthetic_image",
    "sample_image",
    "SampleResult",
    "Region",
    "mark_regions",
    "JunctionResult",
    "detect_junctions",
    "harris_response",
    "match_quality",
    "QualityReport",
    "JunctionConfig",
    "ProfiledStep",
    "profile_configuration",
    "junction_program",
    "DEFAULT_CONFIGS",
]
