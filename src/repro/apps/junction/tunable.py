"""The tunable junction-detection program (Sections 3.2 and 4.3, Fig. 3).

Builds the :class:`~repro.lang.program.TunableProgram` whose structure
mirrors Figure 3: control parameters ``sampleGranularity``,
``searchDistance`` and the derived ``c``; a tunable ``sampleImage`` task; a
``task_select`` choosing a ``markRegion`` variant on the granularity; and a
``computeJunctions`` task whose admissible configuration is restricted by
``c`` — the cross-step resource trade-off the paper highlights.

Resource tables come from *profiling the actual pipeline* on a training
image ("these can be obtained by profiling on a training set of
representative images", Section 3.2): work counters from
:func:`~repro.apps.junction.detect.detect_junctions` convert to durations
via a work rate, and measured F1 becomes the configuration's quality.

The task bodies integrate with the Calypso runtime: ``sampleImage``
executes as a real parallel step (one routine copy per image band), the
other steps run sequentially, all communicating through shared memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.apps.junction.detect import detect_junctions, junction_points
from repro.apps.junction.image import JunctionImage
from repro.apps.junction.quality import match_quality
from repro.apps.junction.regions import mark_regions
from repro.apps.junction.sampling import sample_image
from repro.calypso.routine import Routine
from repro.calypso.shared import SharedMemory
from repro.calypso.step import ParallelStep
from repro.core.resources import ProcessorTimeRequest
from repro.errors import ConfigurationError
from repro.lang.constructs import (
    SelectBranch,
    SelectConstruct,
    TaskConfig,
    TaskConstruct,
)
from repro.lang.expr import P
from repro.lang.params import ParameterSet
from repro.lang.program import TunableProgram

__all__ = [
    "JunctionConfig",
    "ProfiledStep",
    "ConfigProfile",
    "profile_configuration",
    "junction_program",
    "prepare_memory",
    "DEFAULT_CONFIGS",
]

#: Work units one processor retires per unit of virtual time.  Any constant
#: works — it scales all durations equally; 500 gives durations of the same
#: order as the paper's example numbers (8.0 / 2.0 for sampling).
WORK_RATE: float = 500.0

#: Processor counts per step (step 2 is the sequential clustering step).
STEP_WIDTHS: tuple[int, int, int] = (4, 1, 4)


@dataclass(frozen=True, slots=True)
class JunctionConfig:
    """One (sampling granularity, search distance) configuration."""

    granularity: int
    search_distance: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.granularity < 1:
            raise ConfigurationError(
                f"granularity must be >= 1, got {self.granularity}"
            )
        if self.search_distance <= 0:
            raise ConfigurationError(
                f"search_distance must be positive, got {self.search_distance}"
            )


#: Figure 2's two configurations: fine sampling with a small search
#: distance versus coarse sampling compensated by a large one.  Calibrated
#: (see EXPERIMENTS.md, fig2) so the paper's trade-off is visible in the
#: profiled work: coarse saves ~4x in step 1 and pays ~3x in step 3 while
#: holding comparable output quality.
DEFAULT_CONFIGS: tuple[JunctionConfig, ...] = (
    JunctionConfig(granularity=16, search_distance=5.0, label="fine"),
    JunctionConfig(granularity=64, search_distance=20.0, label="coarse"),
)


@dataclass(frozen=True, slots=True)
class ProfiledStep:
    """Measured resource request of one step under one configuration."""

    work: int
    processors: int
    duration: float

    @property
    def request(self) -> ProcessorTimeRequest:
        """The processor-time request the QoS agent advertises."""
        return ProcessorTimeRequest(self.processors, self.duration)


@dataclass(frozen=True, slots=True)
class ConfigProfile:
    """Profile of the full pipeline under one configuration."""

    config: JunctionConfig
    steps: tuple[ProfiledStep, ProfiledStep, ProfiledStep]
    f1: float
    detected: int

    @property
    def total_area(self) -> float:
        """Total processor-time the configuration consumes."""
        return sum(s.request.area for s in self.steps)


def _duration(work: int, processors: int) -> float:
    """Work → virtual-time duration on ``processors`` CPUs (floor 0.25)."""
    return max(work / (WORK_RATE * processors), 0.25)


def profile_configuration(
    image: JunctionImage, config: JunctionConfig, tolerance: float = 6.0
) -> ConfigProfile:
    """Run the pipeline once and measure per-step work and output quality."""
    result = detect_junctions(
        image.pixels,
        granularity=config.granularity,
        search_distance=config.search_distance,
    )
    quality = match_quality(result.points, image.junctions, tolerance=tolerance)
    w1, w2, w3 = result.work.step1, result.work.step2, result.work.step3
    p1, p2, p3 = STEP_WIDTHS
    steps = (
        ProfiledStep(w1, p1, _duration(w1, p1)),
        ProfiledStep(w2, p2, _duration(w2, p2)),
        ProfiledStep(w3, p3, _duration(w3, p3)),
    )
    return ConfigProfile(
        config=config, steps=steps, f1=quality.f1, detected=result.count
    )


# ---------------------------------------------------------------------------
# Calypso step bodies
# ---------------------------------------------------------------------------


def _sample_body(memory: object, env: Mapping[str, object]) -> ParallelStep:
    """Step 1 as a real parallel step: one routine copy per image band."""
    granularity = int(env["sampleGranularity"])  # set by the QoS agent
    copies = STEP_WIDTHS[0]

    def routine_body(view, width, number):  # noqa: ANN001 - Calypso signature
        pixels = view["image"]
        h = pixels.shape[0]
        band = (h * number // width, h * (number + 1) // width)
        result = sample_image(pixels, granularity, row_band=band)
        view[f"points_{number}"] = result.points

    return ParallelStep(
        (Routine(routine_body, copies=copies, name="sample"),), name="sampleImage"
    )


def _make_mark_body(min_points: int = 3):
    def mark_body(memory: SharedMemory, env: Mapping[str, object]) -> None:
        """Step 2 (sequential): merge bands, cluster, store regions."""
        distance = float(env["searchDistance"])  # set by the QoS agent
        pieces = [
            memory[f"points_{i}"]
            for i in range(STEP_WIDTHS[0])
            if f"points_{i}" in memory
        ]
        points = (
            np.concatenate([p for p in pieces if p.size], axis=0)
            if any(p.size for p in pieces)
            else np.empty((0, 2), dtype=np.int64)
        )
        image = memory["image"]
        memory["regions"] = tuple(
            mark_regions(points, distance, image.shape, min_points=min_points)
        )

    return mark_body


def _compute_body(memory: SharedMemory, env: Mapping[str, object]) -> None:
    """Step 3 (sequential numpy; parallelism is inside the arrays)."""
    image = memory["image"]
    regions = memory["regions"]
    mask = np.zeros(image.shape, dtype=bool)
    for region in regions:
        mask |= region.pixel_mask(image.shape)
    memory["junctions"] = junction_points(image, mask)


def prepare_memory(image: JunctionImage) -> SharedMemory:
    """Shared memory pre-loaded with the program's inputs and outputs."""
    slots: dict[str, object] = {
        "image": image.pixels,
        "regions": (),
        "junctions": np.empty((0, 2), dtype=np.int64),
    }
    for i in range(STEP_WIDTHS[0]):
        slots[f"points_{i}"] = np.empty((0, 2), dtype=np.int64)
    return SharedMemory(**slots)


# ---------------------------------------------------------------------------
# The program
# ---------------------------------------------------------------------------


def junction_program(
    profiles: Sequence[ConfigProfile],
    deadline_scale: float = 3.0,
) -> TunableProgram:
    """Build the Figure-3 program from profiled configurations.

    Exactly two profiles are expected (the fine/coarse pair); deadlines are
    cumulative zero-gap times scaled by ``deadline_scale`` (> 1 leaves
    scheduling slack, mirroring the soft real-time budget a video pipeline
    would impose).
    """
    if len(profiles) != 2:
        raise ConfigurationError(
            f"junction_program expects 2 profiled configurations, got {len(profiles)}"
        )
    fine, coarse = profiles
    if fine.config.granularity >= coarse.config.granularity:
        raise ConfigurationError(
            "profiles must be ordered (fine, coarse) by granularity"
        )

    def deadlines(profile: ConfigProfile) -> tuple[float, float, float]:
        acc = 0.0
        out = []
        for step in profile.steps:
            acc += step.duration
            out.append(acc * deadline_scale)
        return tuple(out)  # type: ignore[return-value]

    d_fine = deadlines(fine)
    d_coarse = deadlines(coarse)
    # Task deadlines must be single values per construct: use the max over
    # configurations (per-config deadlines would need Expr deadlines; the
    # paper's example also states one deadline per task).
    d1 = max(d_fine[0], d_coarse[0])
    d2 = max(d_fine[1], d_coarse[1])
    d3 = max(d_fine[2], d_coarse[2])

    params = ParameterSet(sampleGranularity=None, searchDistance=None, c=None)

    sample = TaskConstruct(
        "sampleImage",
        deadline=d1,
        parameter_list=("sampleGranularity",),
        configs=(
            TaskConfig(
                (fine.config.granularity,), fine.steps[0].request, quality=1.0
            ),
            TaskConfig(
                (coarse.config.granularity,), coarse.steps[0].request, quality=1.0
            ),
        ),
        body=_sample_body,
    )

    mark = SelectConstruct(
        branches=(
            SelectBranch(
                when=P("sampleGranularity") == fine.config.granularity,
                body=(
                    TaskConstruct(
                        "markRegionFine",
                        deadline=d2,
                        parameter_list=("searchDistance",),
                        configs=(
                            TaskConfig(
                                (fine.config.search_distance,),
                                fine.steps[1].request,
                            ),
                        ),
                        body=_make_mark_body(),
                    ),
                ),
                finally_binds={"c": 1},
                label="fine",
            ),
            SelectBranch(
                when=P("sampleGranularity") == coarse.config.granularity,
                body=(
                    TaskConstruct(
                        "markRegionCoarse",
                        deadline=d2,
                        parameter_list=("searchDistance",),
                        configs=(
                            TaskConfig(
                                (coarse.config.search_distance,),
                                coarse.steps[1].request,
                            ),
                        ),
                        body=_make_mark_body(),
                    ),
                ),
                finally_binds={"c": 2},
                label="coarse",
            ),
        ),
        name="markRegion",
    )

    compute = TaskConstruct(
        "computeJunctions",
        deadline=d3,
        parameter_list=("c",),
        configs=(
            TaskConfig((1,), fine.steps[2].request, quality=fine.f1),
            TaskConfig((2,), coarse.steps[2].request, quality=coarse.f1),
        ),
        body=_compute_body,
    )

    return TunableProgram("junction-detection", params, (sample, mark, compute))
