"""Detection quality versus planted ground truth.

The paper's quality values are asserted a-priori per configuration; with a
synthetic ground truth we can *measure* them.  Matching is greedy nearest-
neighbor within a tolerance radius: each planted junction may be claimed by
at most one detection and vice versa, giving standard precision / recall /
F1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["QualityReport", "match_quality"]


@dataclass(frozen=True, slots=True)
class QualityReport:
    """Precision/recall of a detection set against ground truth."""

    true_positives: int
    detected: int
    planted: int
    tolerance: float

    @property
    def precision(self) -> float:
        """Fraction of detections that match a planted junction."""
        return self.true_positives / self.detected if self.detected else 0.0

    @property
    def recall(self) -> float:
        """Fraction of planted junctions found."""
        return self.true_positives / self.planted if self.planted else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def match_quality(
    detected: np.ndarray, planted: np.ndarray, tolerance: float = 6.0
) -> QualityReport:
    """Greedily match detections to planted junctions within ``tolerance``.

    Pairs are considered in increasing distance order; each side is matched
    at most once.  ``detected`` and ``planted`` are ``(N, 2)`` / ``(K, 2)``
    (row, col) arrays.
    """
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
    detected = np.asarray(detected, dtype=np.float64).reshape(-1, 2)
    planted = np.asarray(planted, dtype=np.float64).reshape(-1, 2)
    if detected.shape[0] == 0 or planted.shape[0] == 0:
        return QualityReport(0, detected.shape[0], planted.shape[0], tolerance)

    diff = detected[:, None, :] - planted[None, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    order = np.argsort(dist, axis=None)
    used_det = np.zeros(detected.shape[0], dtype=bool)
    used_gt = np.zeros(planted.shape[0], dtype=bool)
    tp = 0
    for flat in order:
        i, j = np.unravel_index(flat, dist.shape)
        if dist[i, j] > tolerance:
            break
        if used_det[i] or used_gt[j]:
            continue
        used_det[i] = True
        used_gt[j] = True
        tp += 1
    return QualityReport(tp, detected.shape[0], planted.shape[0], tolerance)
