"""Adaptive iterative refinement — a ``task_loop`` tunable application.

A third tunable workload alongside junction detection and the video
pipeline: solve the Poisson problem ``-Δu = f`` on the unit square by
Jacobi iteration, tunable between

* a **fine** grid with few sweeps (expensive per sweep, accurate), and
* a **coarse** grid with more sweeps (cheap per sweep, less accurate),

so resource demand again shifts across the job's lifetime.  Unlike the
junction program this one is built around the ``task_loop`` construct: the
iteration count is a control parameter evaluated at scheduling time, and
each sweep's deadline is an expression over the loop variable — exercising
the scheduling-time expression language end to end.

Ground truth is analytic (``u = sin(pi x) sin(pi y)``), so output quality
is a measured accuracy, mirroring the junction app's measured F1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.calypso.shared import SharedMemory
from repro.core.resources import ProcessorTimeRequest
from repro.errors import ConfigurationError
from repro.lang.constructs import LoopConstruct, TaskConfig, TaskConstruct
from repro.lang.expr import P
from repro.lang.params import ParameterSet
from repro.lang.program import TunableProgram

__all__ = [
    "RefinementConfig",
    "RefinementProfile",
    "DEFAULT_REFINEMENT_CONFIGS",
    "jacobi_sweeps",
    "solution_error",
    "profile_refinement",
    "refinement_program",
    "prepare_refinement_memory",
]

#: Grid cells one processor relaxes per unit of virtual time.
SWEEP_RATE: float = 200_000.0


@dataclass(frozen=True, slots=True)
class RefinementConfig:
    """One configuration: grid resolution and the relaxation schedule.

    Jacobi needs thousands of sweeps to converge, so the schedulable unit
    is a *block* of ``sweeps_per_block`` sweeps; the ``task_loop`` iterates
    ``blocks`` times.  Total sweeps = ``blocks * sweeps_per_block``.
    """

    resolution: int
    blocks: int
    sweeps_per_block: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.resolution < 8:
            raise ConfigurationError(
                f"resolution must be >= 8, got {self.resolution}"
            )
        if self.blocks < 1:
            raise ConfigurationError(f"blocks must be >= 1, got {self.blocks}")
        if self.sweeps_per_block < 1:
            raise ConfigurationError(
                f"sweeps_per_block must be >= 1, got {self.sweeps_per_block}"
            )

    @property
    def cells(self) -> int:
        """Interior cells relaxed per sweep."""
        return (self.resolution - 1) ** 2

    @property
    def total_sweeps(self) -> int:
        """Sweeps across the whole schedule."""
        return self.blocks * self.sweeps_per_block


#: Fine grid, 12 heavy blocks (accurate, ~20x the work) versus coarse grid,
#: 6 light blocks (cheap, ~4x the error).
DEFAULT_REFINEMENT_CONFIGS: tuple[RefinementConfig, ...] = (
    RefinementConfig(resolution=64, blocks=12, sweeps_per_block=500, label="fine"),
    RefinementConfig(resolution=32, blocks=6, sweeps_per_block=200, label="coarse"),
)


def _grids(resolution: int) -> tuple[np.ndarray, np.ndarray, float]:
    """Right-hand side, analytic solution and grid spacing."""
    h = 1.0 / resolution
    xs = np.linspace(0.0, 1.0, resolution + 1)
    x, y = np.meshgrid(xs, xs, indexing="ij")
    exact = np.sin(np.pi * x) * np.sin(np.pi * y)
    rhs = 2.0 * np.pi**2 * exact
    return rhs, exact, h


def jacobi_sweeps(u: np.ndarray, rhs: np.ndarray, h: float, sweeps: int) -> np.ndarray:
    """Run ``sweeps`` Jacobi relaxations of ``-Δu = rhs`` (Dirichlet 0)."""
    if sweeps < 0:
        raise ConfigurationError(f"sweeps must be >= 0, got {sweeps}")
    out = u.copy()
    for _ in range(sweeps):
        interior = 0.25 * (
            out[:-2, 1:-1]
            + out[2:, 1:-1]
            + out[1:-1, :-2]
            + out[1:-1, 2:]
            + h * h * rhs[1:-1, 1:-1]
        )
        out = out.copy()
        out[1:-1, 1:-1] = interior
    return out


def solution_error(u: np.ndarray, exact: np.ndarray) -> float:
    """Relative L2 error against the analytic solution."""
    denom = float(np.linalg.norm(exact))
    if denom == 0:
        raise ConfigurationError("degenerate exact solution")
    return float(np.linalg.norm(u - exact)) / denom


@dataclass(frozen=True, slots=True)
class RefinementProfile:
    """Measured cost/quality of one configuration."""

    config: RefinementConfig
    block_duration: float
    setup_duration: float
    error: float

    @property
    def quality(self) -> float:
        """Accuracy mapped to (0, 1]: 1 at zero error, ~0.5 at 0.1% error."""
        return 1.0 / (1.0 + 1000.0 * self.error)

    @property
    def total_duration(self) -> float:
        """Zero-gap virtual time of the whole configuration."""
        return self.setup_duration + self.config.blocks * self.block_duration


def profile_refinement(config: RefinementConfig) -> RefinementProfile:
    """Run the configuration once; measure its error and derive durations."""
    rhs, exact, h = _grids(config.resolution)
    u = jacobi_sweeps(np.zeros_like(rhs), rhs, h, config.total_sweeps)
    error = solution_error(u, exact)
    block_duration = max(
        config.cells * config.sweeps_per_block / SWEEP_RATE, 0.05
    )
    setup_duration = max(config.cells / (4 * SWEEP_RATE), 0.05)
    return RefinementProfile(
        config=config,
        block_duration=block_duration,
        setup_duration=setup_duration,
        error=error,
    )


# ---------------------------------------------------------------------------
# Program construction
# ---------------------------------------------------------------------------


def _setup_body(memory: SharedMemory, env: Mapping[str, object]) -> None:
    resolution = int(env["resolution"])
    rhs, exact, h = _grids(resolution)
    memory["rhs"] = rhs
    memory["exact"] = exact
    memory["h"] = h
    memory["u"] = np.zeros_like(rhs)


def _sweep_body(memory: SharedMemory, env: Mapping[str, object]) -> None:
    memory["u"] = jacobi_sweeps(
        memory["u"], memory["rhs"], memory["h"], int(env["spb"])
    )


def _evaluate_body(memory: SharedMemory, env: Mapping[str, object]) -> None:
    memory["error"] = solution_error(memory["u"], memory["exact"])


def prepare_refinement_memory() -> SharedMemory:
    """Shared memory with the program's slots declared."""
    return SharedMemory(rhs=None, exact=None, h=0.0, u=None, error=1.0)


def refinement_program(
    profiles: tuple[RefinementProfile, RefinementProfile],
    deadline_scale: float = 3.0,
    processors: int = 4,
) -> TunableProgram:
    """Build the tunable program from two measured profiles.

    Structure::

        task setup [deadline] [resolution, blocks, spb] [ (fine), (coarse) ]
        task_loop ( blocks ) with k:
            task sweep [deadline = f(k, per-block budget)] [resolution] ...
        task evaluate

    The loop count is the ``blocks`` control parameter bound by the chosen
    setup configuration; each block's deadline advances by the slower
    configuration's per-block budget so both paths stay schedulable.
    """
    fine, coarse = profiles
    if fine.config.resolution <= coarse.config.resolution:
        raise ConfigurationError("profiles must be ordered (fine, coarse)")

    setup_d = deadline_scale * max(fine.setup_duration, coarse.setup_duration)
    per_block = deadline_scale * max(fine.block_duration, coarse.block_duration)
    tail = deadline_scale * 0.25
    max_blocks = max(fine.config.blocks, coarse.config.blocks)

    params = ParameterSet(resolution=None, blocks=None, spb=None)

    # Path quality rides on the setup configuration (the path is fully
    # determined there; blocks repeat, so attaching quality to them would
    # compound under product composition).
    setup = TaskConstruct(
        "setup",
        deadline=setup_d,
        parameter_list=("resolution", "blocks", "spb"),
        configs=tuple(
            TaskConfig(
                (p.config.resolution, p.config.blocks, p.config.sweeps_per_block),
                ProcessorTimeRequest(processors, p.setup_duration),
                quality=p.quality,
            )
            for p in (fine, coarse)
        ),
        body=_setup_body,
    )

    # Each block's deadline advances by the slower configuration's block
    # budget — a worked example of an Expr deadline over the loop variable.
    sweep = TaskConstruct(
        "sweep",
        deadline=setup_d + (P("k") + 1) * per_block,
        parameter_list=("resolution",),
        configs=tuple(
            TaskConfig(
                (p.config.resolution,),
                ProcessorTimeRequest(processors, p.block_duration),
            )
            for p in (fine, coarse)
        ),
        body=_sweep_body,
    )

    loop = LoopConstruct(count=P("blocks"), var="k", body=(sweep,), name="relax")

    evaluate = TaskConstruct(
        "evaluate",
        deadline=setup_d + max_blocks * per_block + tail,
        parameter_list=(),
        configs=(TaskConfig((), ProcessorTimeRequest(1, 0.25)),),
        body=_evaluate_body,
    )

    return TunableProgram("refinement", params, (setup, loop, evaluate))
