"""A soft real-time media pipeline built on tunable jobs.

The introduction motivates tunability with "general-purpose applications
such as image recognition, virtual reality, and media processing" that must
"complete [their] processing by the time the next frame arrives".  This app
models that workload: frames arrive periodically (with optional jitter);
each frame is a tunable job offering a *full-quality* analysis path and a
cheaper *degraded* path; admission control either schedules a path by the
frame's deadline or drops the frame.

Under light load the arbitrator grants the full path; as load grows a
quality-aware arbitrator degrades frames instead of dropping them — the
graceful-degradation story quantified by :func:`run_pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.arbitrator import ArbitrationObjective, QoSArbitrator
from repro.core.resources import ProcessorTimeRequest
from repro.errors import WorkloadError
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec
from repro.sim.rng import RandomStreams

__all__ = ["FrameSpec", "PipelineReport", "frame_job", "run_pipeline"]


@dataclass(frozen=True, slots=True)
class FrameSpec:
    """Per-frame work shape for the two analysis paths.

    The decode step is common; the analysis step is tunable: the full path
    runs a wide analysis at quality 1.0, the degraded path runs a narrower,
    subsampled (less total work, hence also faster) analysis at
    ``degraded_quality``.  The degraded path finishing *earlier* is what
    separates the two arbitration objectives: earliest-finish degrades
    eagerly, MAX_QUALITY degrades only when the full path cannot be
    scheduled.
    """

    decode: ProcessorTimeRequest = field(
        default_factory=lambda: ProcessorTimeRequest(2, 1.0)
    )
    analyze_full: ProcessorTimeRequest = field(
        default_factory=lambda: ProcessorTimeRequest(8, 2.0)
    )
    analyze_degraded: ProcessorTimeRequest = field(
        default_factory=lambda: ProcessorTimeRequest(4, 1.5)
    )
    degraded_quality: float = 0.7
    deadline_factor: float = 1.5

    def __post_init__(self) -> None:
        if not 0 < self.degraded_quality <= 1:
            raise WorkloadError(
                f"degraded_quality must be in (0, 1], got {self.degraded_quality}"
            )
        if self.deadline_factor <= 0:
            raise WorkloadError(
                f"deadline_factor must be positive, got {self.deadline_factor}"
            )


def frame_job(spec: FrameSpec, period: float, release: float) -> Job:
    """One frame as a two-path tunable job with deadline ``deadline_factor * period``."""
    budget = spec.deadline_factor * period
    d_decode = budget * 0.4
    full = TaskChain(
        (
            TaskSpec("decode", spec.decode, deadline=d_decode),
            TaskSpec("analyze", spec.analyze_full, deadline=budget, quality=1.0),
        ),
        label="full",
        params={"mode": "full"},
    )
    degraded = TaskChain(
        (
            TaskSpec("decode", spec.decode, deadline=d_decode),
            TaskSpec(
                "analyze",
                spec.analyze_degraded,
                deadline=budget,
                quality=spec.degraded_quality,
            ),
        ),
        label="degraded",
        params={"mode": "degraded"},
    )
    return Job.tunable_of([full, degraded], release=release, name="frame")


@dataclass(frozen=True, slots=True)
class PipelineReport:
    """Outcome of a pipeline run."""

    frames: int
    on_time: int
    dropped: int
    full_quality_frames: int
    degraded_frames: int
    mean_quality: float
    utilization: float

    @property
    def on_time_rate(self) -> float:
        """Fraction of frames completing by their deadline."""
        return self.on_time / self.frames if self.frames else 0.0


def run_pipeline(
    processors: int,
    n_frames: int = 300,
    period: float = 2.0,
    jitter: float = 0.0,
    spec: FrameSpec | None = None,
    quality_aware: bool = True,
    seed: int = 7,
) -> PipelineReport:
    """Feed ``n_frames`` periodic frames through an arbitrator.

    ``jitter`` adds uniform arrival noise in ``[0, jitter)`` per frame
    (release times stay monotone: jitter is bounded by the period).
    ``quality_aware`` selects the MAX_QUALITY arbitration objective; with
    it off, the arbitrator picks earliest-finish paths regardless of
    quality.
    """
    if jitter < 0 or jitter >= period:
        raise WorkloadError(f"jitter must be in [0, period), got {jitter}")
    spec = spec or FrameSpec()
    arbitrator = QoSArbitrator(
        processors,
        objective=(
            ArbitrationObjective.MAX_QUALITY
            if quality_aware
            else ArbitrationObjective.EARLIEST_FINISH
        ),
        keep_placements=False,
    )
    rng = RandomStreams(seed).python("frame-jitter")
    on_time = dropped = full_count = degraded_count = 0
    quality_sum = 0.0
    for i in range(n_frames):
        release = i * period + (rng.uniform(0.0, jitter) if jitter else 0.0)
        decision = arbitrator.submit(frame_job(spec, period, release))
        if not decision.admitted or decision.placement is None:
            dropped += 1
            continue
        on_time += 1
        chain = decision.placement.chain
        if chain.label == "full":
            full_count += 1
            quality_sum += 1.0
        else:
            degraded_count += 1
            quality_sum += spec.degraded_quality
    return PipelineReport(
        frames=n_frames,
        on_time=on_time,
        dropped=dropped,
        full_quality_frames=full_count,
        degraded_frames=degraded_count,
        mean_quality=quality_sum / n_frames if n_frames else 0.0,
        utilization=arbitrator.utilization(),
    )
