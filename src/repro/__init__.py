"""repro — tunable parallel resource management.

A production-quality reproduction of *"Exploiting Application Tunability
for Efficient, Predictable Parallel Resource Management"* (Chang,
Karamcheti, Kedem — IPPS 1999): the maximal-holes greedy scheduler for
parallel real-time task chains, the MILAN QoS agent/arbitrator
architecture, the Calypso tunability language extensions (as an embedded
DSL) and execution runtime, the synthetic Figure-4 task system, and the
junction-detection tunable application.

Quickstart::

    from repro import QoSArbitrator, SyntheticParams

    params = SyntheticParams(x=16, t=25.0, alpha=0.5, laxity=0.5)
    arbitrator = QoSArbitrator(capacity=16)
    decision = arbitrator.submit(params.tunable_job(release=0.0))
    print(decision.admitted, decision.chain_index)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.core import (
    AvailabilityProfile,
    GreedyScheduler,
    MalleableScheduler,
    MalleableStrategy,
    MaximalHole,
    ProcessorTimeRequest,
    QoSArbitrator,
    Schedule,
    TieBreakPolicy,
    earliest_fit,
    maximal_holes,
)
from repro.core.arbitrator import ArbitrationObjective
from repro.model import Job, TaskChain, TaskSpec
from repro.qos import QoSAgent, ResourceContract
from repro.sim import PoissonArrivals, RandomStreams, simulate_arrivals
from repro.workloads import SweepConfig, SyntheticParams, run_point, run_sweep
from repro.runner import ExperimentRunner, RunnerConfig, unit_key

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "ProcessorTimeRequest",
    "AvailabilityProfile",
    "MaximalHole",
    "maximal_holes",
    "earliest_fit",
    "Schedule",
    "GreedyScheduler",
    "MalleableScheduler",
    "MalleableStrategy",
    "TieBreakPolicy",
    "QoSArbitrator",
    "ArbitrationObjective",
    "TaskSpec",
    "TaskChain",
    "Job",
    "QoSAgent",
    "ResourceContract",
    "RandomStreams",
    "PoissonArrivals",
    "simulate_arrivals",
    "SyntheticParams",
    "SweepConfig",
    "run_point",
    "run_sweep",
    "ExperimentRunner",
    "RunnerConfig",
    "unit_key",
]
