"""Mid-execution malleability: grow/shrink *running* jobs (ROADMAP item).

The paper renegotiates only at admission (and, via :mod:`repro.resilience`,
at fault events); a running malleable job never reclaims capacity freed by
a completion or a repair, and the system never narrows a running job to
admit a pressed arrival.  DMR and ReSHAPE both show that dynamic resizing
of running jobs — with an *honest* reconfiguration-cost charge — is where
malleability pays off.  This module supplies that policy layer:

* **grow** — fired on capacity-freeing events (job completions, capacity
  repairs): a running malleable job's in-flight task is restarted wider on
  idle processors, accepted only when the job's reserved finish strictly
  improves despite the cost charge;
* **shrink-to-admit** — fired on capacity-pressure events (an arrival the
  arbitrator just rejected): a running job's in-flight task is restarted
  narrower, and the arrival re-offered against the freed capacity; the
  shrink is kept only when the arrival is then admitted;
* **shrink-to-rescue** — fired inside the capacity-change re-plan loop
  when a displaced job fits on no path of the shrunken machine: a donor
  job already re-established on the new schedule is narrowed and the
  victim re-planned once more before it is honestly dropped.

Every resize charges the :class:`ReconfigCostModel` — a checkpoint term
plus a redistribute term per processor of width change, à la DMR/ReSHAPE —
as *dead time* before the restarted task may begin, and restarts the
interrupted task from scratch with its full declared work, justified by
the Calypso-style idempotent two-phase execution model (:mod:`repro.calypso`)
already used for fault restarts.  The consumed partial run is charged to
the driver's ``spent`` *and* ``wasted`` ledgers.  The mechanics (tail
rollback, width-bounded re-placement, bit-exact undo) live in
:meth:`repro.resilience.driver.RenegotiationDriver.resize_remainder`; this
module owns the policy, the cost model, the grow/shrink ledger, and the
:class:`ResizeRecord` stream the independent auditor re-validates
(:meth:`repro.verify.auditor.ScheduleAuditor.audit_resizes`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

from repro.core.resources import TIME_EPS
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.admission import AdmissionDecision
    from repro.core.arbitrator import QoSArbitrator
    from repro.model.job import Job
    from repro.resilience.driver import RenegotiationDriver, ResizeTxn, _LiveJob

__all__ = [
    "ResizePolicy",
    "ReconfigCostModel",
    "ResizeRecord",
    "ReconfigEngine",
]

#: How many running jobs a shrink pass may probe per pressed arrival;
#: bounds the per-event work without sacrificing determinism (candidates
#: are ranked widest-in-flight first, so the most capacity-rich donors are
#: always tried).
MAX_SHRINK_CANDIDATES = 4


class ResizePolicy(Enum):
    """Which mid-execution resize directions are enabled."""

    OFF = "off"
    GROW = "grow"
    SHRINK = "shrink"
    GROW_SHRINK = "grow-shrink"

    @property
    def grows(self) -> bool:
        """Whether capacity-freeing events may widen running jobs."""
        return self in (ResizePolicy.GROW, ResizePolicy.GROW_SHRINK)

    @property
    def shrinks(self) -> bool:
        """Whether capacity pressure may narrow running jobs."""
        return self in (ResizePolicy.SHRINK, ResizePolicy.GROW_SHRINK)


@dataclass(frozen=True, slots=True)
class ReconfigCostModel:
    """Reconfiguration delay charged before a resized task restarts.

    ``delay = checkpoint + redistribute * |new_width - old_width|``:
    a fixed checkpoint/drain term plus a data-redistribution term that
    scales with the width change, the standard first-order model of the
    DMR/ReSHAPE measurements.  Both terms are virtual time; either may be
    zero (free resizing) and ``checkpoint`` may be ``inf`` to disable
    resizing behaviourally while keeping the engine wired (no finite-
    deadline remainder can ever be re-placed).
    """

    checkpoint: float = 0.0
    redistribute: float = 0.0

    def __post_init__(self) -> None:
        if self.checkpoint < 0 or self.redistribute < 0:
            raise ConfigurationError(
                f"reconfiguration costs must be >= 0, got "
                f"checkpoint={self.checkpoint}, redistribute={self.redistribute}"
            )

    def delay(self, old_width: int, new_width: int) -> float:
        """Dead time charged for restarting ``old_width`` → ``new_width``."""
        return self.checkpoint + self.redistribute * abs(new_width - old_width)


@dataclass(frozen=True, slots=True)
class ResizeRecord:
    """One accepted resize, as data — the auditor's input.

    Everything the independent resize invariants need is captured at the
    moment the resize is finalized: the cut instant and charged delay, the
    width transition and its declared bounds, the restarted task's full
    work area, and the extent of the new leading placement.
    """

    kind: str  # "grow" | "shrink"
    job_id: int
    task: str
    time: float  # resize instant (the tail-rollback cut)
    delay: float  # charged reconfiguration dead time
    old_width: int
    new_width: int
    min_width: int  # lower width bound in force (scheduler floor)
    max_width: int  # upper width bound in force (concurrency/capacity cap)
    task_area: float  # full declared work of the restarted task
    new_start: float
    new_duration: float

    @property
    def new_area(self) -> float:
        """Processor-time of the restarted leading placement."""
        return self.new_width * self.new_duration


class ReconfigEngine:
    """Policy layer for mid-execution grow/shrink of running malleable jobs.

    One engine instance serves one simulated run: it binds to the run's
    :class:`~repro.resilience.driver.RenegotiationDriver`, decides when the
    driver's resize mechanics fire and whether their outcome is kept, and
    accumulates the grow/shrink ledger plus the audited
    :class:`ResizeRecord` stream.

    Parameters
    ----------
    policy:
        Enabled directions; :attr:`ResizePolicy.OFF` makes every hook a
        no-op (the simulator then never even enqueues resize events).
    cost:
        The reconfiguration-cost model charged on every resize.
    """

    def __init__(
        self,
        policy: ResizePolicy = ResizePolicy.GROW_SHRINK,
        cost: ReconfigCostModel | None = None,
    ) -> None:
        self.policy = policy
        self.cost = cost if cost is not None else ReconfigCostModel()
        self.driver: "RenegotiationDriver | None" = None
        self.records: list[ResizeRecord] = []
        # Ledger.
        self._grow_attempts = 0
        self._grows = 0
        self._shrink_attempts = 0
        self._shrinks = 0
        self._shrink_admits = 0
        self._shrink_rescues = 0

    def bind(self, driver: "RenegotiationDriver") -> None:
        """Attach to one run's driver (and register the rescue hook)."""
        self.driver = driver
        driver.reconfig = self

    @property
    def active(self) -> bool:
        """Whether any resize direction is enabled."""
        return self.policy is not ResizePolicy.OFF

    @property
    def resizes(self) -> int:
        """Total accepted resizes (grows + shrinks)."""
        return self._grows + self._shrinks

    def ledger(self) -> dict[str, float | int]:
        """Grow/shrink detail merged into the run's resilience block."""
        return {
            "grow_attempts": self._grow_attempts,
            "grows": self._grows,
            "shrink_attempts": self._shrink_attempts,
            "shrinks": self._shrinks,
            "shrink_admits": self._shrink_admits,
            "shrink_rescues": self._shrink_rescues,
        }

    # ------------------------------------------------------------------
    # Grow: capacity-freeing events
    # ------------------------------------------------------------------

    def grow_all(self, now: float) -> list[int]:
        """Widen every running job that profits at ``now``; returns job ids.

        Fired after a completion sweep or a capacity repair.  Jobs are
        probed in ascending ``job_id`` order (deterministic); each grow is
        kept only when the job's reserved finish strictly improves despite
        the cost charge, so a grow can never hurt the job it touches.
        """
        driver = self.driver
        if driver is None or not self.policy.grows:
            return []
        capacity = driver.arbitrator.capacity
        grown: list[int] = []
        for job_id in sorted(driver._live):
            state = driver.inflight(job_id, now)
            if state is None:
                continue
            width, task = state
            cap = min(task.max_concurrency, capacity)
            if width >= cap:
                continue
            self._grow_attempts += 1
            txn = self._probe_grow(job_id, now, width, cap)
            if txn is None:
                continue
            self._grows += 1
            self._record("grow", txn, task)
            txn.finalize()
            grown.append(job_id)
        return grown

    def _probe_grow(
        self, job_id: int, now: float, width: int, cap: int
    ) -> "ResizeTxn | None":
        """Widest profitable restart of ``job_id``'s in-flight task."""
        driver = self.driver
        assert driver is not None
        if self.cost.redistribute == 0.0:
            # Uniform delay across targets: one width-banded probe (the
            # scheduler's widest-first scan picks inside the band).
            txn = driver.resize_remainder(
                job_id,
                now,
                delay=self.cost.delay(width, width + 1),
                first_min_width=width + 1,
                first_max_width=cap,
            )
            if txn is None:
                return None
            if txn.new_finish < txn.old_finish - TIME_EPS:
                return txn
            txn.undo()
            return None
        # Width-dependent delay: probe explicit targets, widest first, and
        # keep the first strict improvement.
        for target in range(cap, width, -1):
            txn = driver.resize_remainder(
                job_id,
                now,
                delay=self.cost.delay(width, target),
                first_min_width=target,
                first_max_width=target,
            )
            if txn is None:
                continue
            if txn.new_finish < txn.old_finish - TIME_EPS:
                return txn
            txn.undo()
        return None

    # ------------------------------------------------------------------
    # Shrink: capacity-pressure events
    # ------------------------------------------------------------------

    def shrink_to_admit(
        self, job: "Job", now: float, arbitrator: "QoSArbitrator"
    ) -> "tuple[AdmissionDecision, int] | None":
        """Narrow one running job so a just-rejected arrival fits.

        Donors are ranked widest-in-flight first (they free the most
        capacity), ties by ``job_id``; at most
        :data:`MAX_SHRINK_CANDIDATES` are probed.  For each donor the
        narrowest feasible restart is committed tentatively and the
        arrival re-offered (:meth:`QoSArbitrator.resubmit
        <repro.core.arbitrator.QoSArbitrator.resubmit>`); the shrink is
        undone bit for bit unless the arrival is admitted.  Returns the
        admitting decision and the donor's ``job_id``, or ``None``.
        """
        if not self.policy.shrinks:
            return None
        for job_id, txn, task in self._shrink_donors(now, exclude=job.job_id):
            decision = arbitrator.resubmit(job)
            if decision.admitted and decision.placement is not None:
                self._shrinks += 1
                self._shrink_admits += 1
                self._record("shrink", txn, task)
                txn.finalize()
                return decision, job_id
            txn.undo()
        return None

    def rescue_replan(
        self, rec: "_LiveJob", now: float, donors: list[int]
    ) -> bool:
        """Shrink a donor so a displaced job survives a capacity drop.

        Called by the driver's capacity-change loop after a straight
        re-plan failed, just before the job would be lost.  Only jobs
        already re-established on the post-change schedule (``donors``)
        may be narrowed — anything later in the loop still holds its
        reservation on the *old* schedule.
        """
        driver = self.driver
        if driver is None or not self.policy.shrinks:
            return False
        for _job_id, txn, task in self._shrink_donors(
            now, exclude=rec.job_id, among=donors
        ):
            # The capacity-change loop's failed re-plan already charged the
            # victim's interrupted portion to ``spent``; each retry would
            # recompute and re-add the same charge, so net it back out.
            spent_before = rec.spent
            ok = driver._replan(rec, now) is not None
            rec.spent = spent_before
            if ok:
                self._shrinks += 1
                self._shrink_rescues += 1
                self._record("shrink", txn, task)
                txn.finalize()
                return True
            txn.undo()
        return False

    def _shrink_donors(
        self,
        now: float,
        exclude: int,
        among: "list[int] | None" = None,
    ):
        """Yield tentative shrink transactions, best donor first.

        Each yielded transaction is already committed to the schedule; the
        consumer must ``finalize()`` or ``undo()`` it before the next
        iteration (the generator never leaves one open).
        """
        driver = self.driver
        assert driver is not None
        scheduler = driver.arbitrator.scheduler
        floor = getattr(scheduler, "min_processors", 1)
        pool = sorted(driver._live) if among is None else sorted(set(among))
        candidates: list[tuple[int, int, object]] = []
        for job_id in pool:
            if job_id == exclude:
                continue
            state = driver.inflight(job_id, now)
            if state is None:
                continue
            width, task = state
            if width <= floor:
                continue
            candidates.append((width, job_id, task))
        candidates.sort(key=lambda c: (-c[0], c[1]))
        for width, job_id, task in candidates[:MAX_SHRINK_CANDIDATES]:
            self._shrink_attempts += 1
            txn = self._probe_shrink(job_id, now, width, floor)
            if txn is not None:
                yield job_id, txn, task

    def _probe_shrink(
        self, job_id: int, now: float, width: int, floor: int
    ) -> "ResizeTxn | None":
        """Narrowest feasible restart (frees the most capacity)."""
        driver = self.driver
        assert driver is not None
        for target in range(floor, width):
            txn = driver.resize_remainder(
                job_id,
                now,
                delay=self.cost.delay(width, target),
                first_min_width=target,
                first_max_width=target,
            )
            if txn is not None:
                return txn
        return None

    # ------------------------------------------------------------------

    def _record(self, kind: str, txn: "ResizeTxn", task) -> None:
        driver = self.driver
        assert driver is not None
        capacity = driver.arbitrator.capacity
        scheduler = driver.arbitrator.scheduler
        lead = txn.new_cp.placements[0]
        self.records.append(
            ResizeRecord(
                kind=kind,
                job_id=txn.rec.job_id,
                task=task.name,
                time=txn.cut,
                delay=txn.delay,
                old_width=txn.old_width,
                new_width=lead.processors,
                min_width=getattr(scheduler, "min_processors", 1),
                max_width=min(task.max_concurrency, capacity),
                task_area=task.area,
                new_start=lead.start,
                new_duration=lead.duration,
            )
        )
