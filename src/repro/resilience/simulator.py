"""The fault-aware arrival simulator.

:class:`ResilientSimulator` replays an arrival process — exactly like
:class:`~repro.sim.simulator.ArrivalSimulator` — while also applying the
events of a :class:`~repro.resilience.events.PerturbationTrace` at their
virtual times, in a single merged discrete-event loop:

* **arrivals** (base process plus burst injections) are submitted to the
  arbitrator and, when admitted, registered with the
  :class:`~repro.resilience.driver.RenegotiationDriver`;
* **capacity events** hand the live schedule to the driver for carrying /
  re-planning / graceful degradation;
* **overrun detections** fire when an afflicted task's reserved finish
  passes; the driver rolls back and re-plans the job's remainder.

With a :class:`~repro.resilience.reconfig.ReconfigEngine` attached (and
the arbitrator malleable), the loop also exercises **mid-execution
malleability**: reserved job completions become resize events that let
running jobs grow onto the freed processors, capacity repairs trigger the
same grow pass, and an arrival the arbitrator rejects may shrink a running
job to make itself admissible (see :mod:`repro.resilience.reconfig`).

Ties at one instant resolve overrun-detection first (the machine notices a
task still running before it reacts to anything else at that time), then
capacity changes, then arrivals, then completion-triggered resizes — so a
job arriving at the instant of a fault negotiates against the post-fault
machine, and a job arriving at the instant another completes is offered
the freed capacity *before* incumbents may grow onto it (growing first
would let running jobs crowd out admissions they could not crowd out in
the no-resize system).

**Zero-event traces are the fault-free baseline, bit for bit**: with an
empty trace the loop degenerates into the baseline arrival loop — the
driver is pure bookkeeping that never touches the schedule — so the
returned :class:`~repro.sim.metrics.RunMetrics` equals
:class:`ArrivalSimulator`'s (with an empty ``resilience`` block).  This is
regression-tested.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Iterable

from repro.core.arbitrator import QoSArbitrator
from repro.core.resources import time_leq
from repro.errors import ScheduleConsistencyError, SimulationError
from repro.model.job import Job
from repro.resilience.driver import RenegotiationDriver
from repro.resilience.events import OverrunEvent, PerturbationTrace
from repro.resilience.reconfig import ReconfigEngine
from repro.sim.metrics import MetricsCollector, RunMetrics

__all__ = ["ResilientSimulator", "simulate_resilient"]

#: A job factory maps (sequence number, release time) to a fresh Job.
JobFactory = Callable[[int, float], Job]

# Event kinds, in tie-break order at equal times.  Completion-triggered
# resizes sort *after* arrivals so same-instant admissions see the machine
# the no-resize system would have shown them (bit-identity when resizing
# is off is regression-tested).
_OVERRUN, _CAPACITY, _ARRIVAL, _RESIZE = 0, 1, 2, 3

#: Tolerance when matching a queued overrun detection against the current
#: due time — entries that drifted (the placement was re-planned) are stale.
_DUE_EPS = 1e-9


class ResilientSimulator:
    """Drives one arbitrator through arrivals *and* perturbation events.

    Parameters
    ----------
    arbitrator:
        The system under test.  Must retain placements
        (``keep_placements=True``) when the trace has capacity events or
        verification is on.
    job_factory:
        Called as ``job_factory(i, release)``; base arrivals keep their
        sequence numbers ``0..n-1`` (identical to a burst-free run, for
        CRN pairing), burst arrivals are numbered after them.
    trace:
        The perturbation schedule; an empty trace reproduces the
        fault-free baseline exactly.
    verify:
        Re-validate every admitted placement at admission (as the baseline
        does) and audit the full schedule plus every live placement after
        each perturbation event.
    audit:
        Opt-in *independent* re-validation on top of ``verify``: after
        every perturbation event and at end of run, the live schedule is
        audited by :class:`repro.verify.auditor.ScheduleAuditor` in its
        resilience-relaxed configuration (tail-rollback stubs legitimately
        stay reserved, so the profile check runs in ``"bound"`` mode, and
        re-planned chains are rebased remainders, so configuration match
        and plain-commit ledger checks are off).  Violations raise
        :class:`~repro.errors.VerificationError` at the offending event.
    reconfig:
        Optional mid-execution resize engine.  Ignored (fully inert, bit
        for bit) unless its policy enables a direction *and* the
        arbitrator is malleable — rigid placements cannot be reshaped.
    """

    def __init__(
        self,
        arbitrator: QoSArbitrator,
        job_factory: JobFactory,
        trace: PerturbationTrace,
        verify: bool = True,
        audit: bool = False,
        reconfig: ReconfigEngine | None = None,
    ) -> None:
        self.arbitrator = arbitrator
        self.job_factory = job_factory
        self.trace = trace
        self.verify = verify
        self.audit = audit
        self.reconfig = reconfig
        self._resizing = (
            reconfig is not None and reconfig.active and arbitrator.malleable
        )
        self.collector = MetricsCollector()
        self.driver = RenegotiationDriver(arbitrator)
        if self._resizing:
            assert reconfig is not None
            reconfig.bind(self.driver)
        self._offered: list[Job] = []

    def run(self, arrivals: Iterable[float]) -> RunMetrics:
        """Replay arrivals and trace events in time order; return metrics."""
        base = list(arrivals)
        overruns = self.trace.overruns_by_seq()

        # (time, kind, tiebreak): kind orders overrun < capacity < arrival
        # at equal times; the tiebreak orders same-kind events
        # deterministically (arrival sequence / event index / job id).
        heap: list[tuple[float, int, int]] = []
        for seq, release in enumerate(base):
            heap.append((release, _ARRIVAL, seq))
        burst_seq = len(base)
        n_bursts = 0
        for ev in self.trace.bursts:
            for _ in range(ev.count):
                heap.append((ev.time, _ARRIVAL, burst_seq))
                burst_seq += 1
                n_bursts += 1
        for i, ev in enumerate(self.trace.capacity_events):
            heap.append((ev.time, _CAPACITY, i))
        heapq.heapify(heap)

        while heap:
            t, kind, ref = heapq.heappop(heap)
            if kind == _ARRIVAL:
                self._on_arrival(ref, t, overruns.get(ref), heap)
            elif kind == _CAPACITY:
                was_capacity = self.arbitrator.capacity
                self.driver.on_capacity_change(self.trace.capacity_events[ref])
                grown = False
                if self._resizing and self.arbitrator.capacity > was_capacity:
                    # A repair freed processors: let running jobs grow onto
                    # them (after every displaced job has been re-planned).
                    assert self.reconfig is not None
                    grown = bool(self.reconfig.grow_all(t))
                # Re-plans and resizes move reserved finishes; refresh
                # detection and resize events (stale queue entries are
                # skipped when popped).
                for job_id, due in self.driver.pending_overruns():
                    heapq.heappush(heap, (due, _OVERRUN, job_id))
                self._push_resizes(heap)
                if self.verify:
                    self.driver.check_consistency()
                if self.audit:
                    context = f"capacity event at t={t:g}"
                    if grown:
                        context += " (post-repair grow)"
                    self._run_audit(context)
            elif kind == _OVERRUN:
                due = self.driver.overrun_due(ref)
                if due is None or abs(due - t) > _DUE_EPS:
                    continue  # consumed, job retired, or a stale entry
                self.driver.handle_overrun(ref)
                self._push_resizes(heap)
                if self.verify:
                    self.driver.check_consistency()
                if self.audit:
                    self._run_audit(f"overrun of job {ref} at t={t:g}")
            else:  # _RESIZE: a reserved completion freed capacity
                finishes = dict(self.driver.live_finishes())
                due = finishes.get(ref)
                if due is None or abs(due - t) > _DUE_EPS:
                    continue  # already retired, or a stale (moved) entry
                assert self.reconfig is not None
                self.driver.sweep_finished(t)
                if self.reconfig.grow_all(t):
                    for job_id, odue in self.driver.pending_overruns():
                        heapq.heappush(heap, (odue, _OVERRUN, job_id))
                    self._push_resizes(heap)
                    if self.verify:
                        self.driver.check_consistency()
                    if self.audit:
                        self._run_audit(
                            f"grow on completion of job {ref} at t={t:g}"
                        )

        if self.audit:
            self._run_audit("end of run")

        if self.trace.empty and not self._resizing:
            # Structurally identical finalization to ArrivalSimulator.
            sched = self.arbitrator.schedule
            return self.collector.finalize(
                utilization=self.arbitrator.utilization(),
                chain_usage=self.arbitrator.chain_usage(),
                achieved_quality=self.arbitrator.achieved_quality,
                horizon=sched.last_finish if sched.committed_jobs else 0.0,
                perf=self.arbitrator.perf_snapshot(),
            )

        self.driver.sweep_finished(math.inf)
        outcome = self.driver.finalize(self.trace, burst_arrivals=n_bursts)
        resilience = outcome.resilience
        if self._resizing:
            assert self.reconfig is not None
            resilience = {**resilience, **self.reconfig.ledger()}
        return self.collector.finalize(
            utilization=outcome.utilization,
            chain_usage=self.arbitrator.chain_usage(),
            achieved_quality=outcome.achieved_quality,
            horizon=outcome.horizon,
            perf=self.arbitrator.perf_snapshot(),
            resilience=resilience,
        )

    # ------------------------------------------------------------------

    def _on_arrival(
        self,
        seq: int,
        release: float,
        overrun: OverrunEvent | None,
        heap: list[tuple[float, int, int]],
    ) -> None:
        """Mirror of the baseline per-arrival path, plus driver registration."""
        job = self.job_factory(seq, release)
        if job.release != release:
            raise SimulationError(
                f"job factory returned release {job.release}, expected {release}"
            )
        if self.audit:
            self._offered.append(job)
        decision = self.arbitrator.submit(job)
        shrunk = False
        if (
            not decision.admitted
            and self._resizing
            and self.reconfig is not None
            and self.reconfig.policy.shrinks
        ):
            # Capacity pressure: try narrowing one running job so this
            # arrival fits (kept only when the re-offer then admits).
            rescue = self.reconfig.shrink_to_admit(job, release, self.arbitrator)
            if rescue is not None:
                decision, _donor = rescue
                shrunk = True
        deadline = None
        if decision.admitted and decision.placement is not None:
            cp = decision.placement
            deadline = job.release + cp.chain.final_deadline
            if self.verify:
                cp.validate()
                if not time_leq(cp.finish, deadline):
                    raise ScheduleConsistencyError(
                        f"admitted job {job.job_id} finishes at {cp.finish} "
                        f"past its deadline {deadline}"
                    )
            self.driver.register(job, cp, overrun=overrun)
            if overrun is not None:
                due = self.driver.overrun_due(job.job_id)
                if due is not None:
                    heapq.heappush(heap, (due, _OVERRUN, job.job_id))
            if self._resizing:
                heapq.heappush(heap, (cp.finish, _RESIZE, job.job_id))
        if shrunk:
            # The donor's reservation (and possibly its overrun due) moved.
            for job_id, due in self.driver.pending_overruns():
                heapq.heappush(heap, (due, _OVERRUN, job_id))
            self._push_resizes(heap)
            if self.verify:
                self.driver.check_consistency()
            if self.audit:
                self._run_audit(
                    f"shrink-to-admit of job {job.job_id} at t={release:g}"
                )
        self.collector.observe(decision, deadline)

    def _push_resizes(self, heap: list[tuple[float, int, int]]) -> None:
        """Refresh completion-triggered resize events from live finishes."""
        if not self._resizing:
            return
        for job_id, finish in self.driver.live_finishes():
            heapq.heappush(heap, (finish, _RESIZE, job_id))

    def _run_audit(self, context: str) -> None:
        """Independent live-schedule audit (the ``audit=True`` hook)."""
        # Lazy: repro.verify is optional tooling, not a simulator dependency.
        from repro.errors import VerificationError
        from repro.verify.auditor import ScheduleAuditor

        schedule = self.arbitrator.schedule
        report = ScheduleAuditor(
            malleable=self.arbitrator.malleable,
            match_config=False,
            ledger=False,
            profile_mode="bound",
            # Carried placements keep pre-change intervals that ran on the
            # previous machine size; judge capacity from this schedule's
            # origin (the last capacity-change time) onward only.
            since=schedule.profile.origin,
        ).audit(schedule)
        if not report.ok:
            raise VerificationError(
                f"schedule audit failed after {context}:\n{report.summary()}"
            )


def simulate_resilient(
    arbitrator: QoSArbitrator,
    job_factory: JobFactory,
    arrivals: Iterable[float],
    trace: PerturbationTrace,
    verify: bool = True,
    audit: bool = False,
    reconfig: ReconfigEngine | None = None,
) -> RunMetrics:
    """Convenience wrapper: one perturbed run over explicit arrival times."""
    sim = ResilientSimulator(
        arbitrator,
        job_factory,
        trace,
        verify=verify,
        audit=audit,
        reconfig=reconfig,
    )
    return sim.run(arrivals)
