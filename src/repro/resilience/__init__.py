"""Fault-aware online simulation (the Section 3.1 monitoring loop).

The paper's arbitrator "monitors system resources, and triggers
renegotiation on detecting a significant change in resource levels"; this
package exercises that claim end to end:

* :mod:`repro.resilience.events` — deterministic, CRN-pairable
  perturbation traces (capacity changes, latent execution-time overruns,
  arrival bursts) drawn from named RNG substreams;
* :mod:`repro.resilience.driver` — the stateful multi-event
  renegotiation driver with degrade-don't-drop re-planning across a job's
  OR-graph paths;
* :mod:`repro.resilience.simulator` — the merged arrival + perturbation
  discrete-event loop, bit-identical to the fault-free baseline under an
  empty trace;
* :mod:`repro.resilience.reconfig` — mid-execution malleability: the
  grow/shrink policy engine that resizes *running* jobs at
  capacity-freeing and capacity-pressure events under an explicit
  reconfiguration-cost model.
"""

from repro.resilience.driver import (
    RenegotiationDriver,
    ResilienceOutcome,
    ResizeTxn,
)
from repro.resilience.events import (
    BurstEvent,
    CapacityEvent,
    FaultModel,
    OverrunEvent,
    PerturbationTrace,
    generate_trace,
)
from repro.resilience.reconfig import (
    ReconfigCostModel,
    ReconfigEngine,
    ResizePolicy,
    ResizeRecord,
)
from repro.resilience.simulator import ResilientSimulator, simulate_resilient

__all__ = [
    "BurstEvent",
    "CapacityEvent",
    "FaultModel",
    "OverrunEvent",
    "PerturbationTrace",
    "generate_trace",
    "ReconfigCostModel",
    "ReconfigEngine",
    "RenegotiationDriver",
    "ResilienceOutcome",
    "ResilientSimulator",
    "ResizePolicy",
    "ResizeRecord",
    "ResizeTxn",
    "simulate_resilient",
]
