"""Stateful multi-event renegotiation (the online Section 3.1 arbitrator).

:func:`repro.qos.renegotiation.renegotiate` re-plans a committed schedule
across exactly one offline capacity change.  The
:class:`RenegotiationDriver` generalizes it into the *online* monitoring
loop the paper describes: it rides along with a live arbitrator, tracks
every admitted job from admission to completion, and re-plans the affected
subset at each event of a :class:`~repro.resilience.events.PerturbationTrace`
— a sequence of capacity changes and detected execution-time overruns, in
arrival order with ordinary admissions interleaved.

The re-planning policy is **degrade, don't drop**: an affected tunable job
is first offered the remainder of its current path (rebased against its
*original* absolute deadlines), and — while no task has completed yet —
every alternate path of its OR graph, so a job that no longer fits wide can
survive narrow at (possibly) lower quality.  Only when no path fits the
remaining deadline slack is the job honestly recorded as lost: ``dropped``
when capacity took its reservation, a ``deadline miss`` when its own
overrun did.

Accounting is work-based and honest: ``spent`` is processor-time a job
actually consumed, ``wasted`` the consumed share that produced no result
(restarted in-progress tasks, discarded runs of overrunning tasks, all
work of a job that is eventually lost).  Task restarts are justified by
the Calypso-style idempotent two-phase execution model reproduced in
:mod:`repro.calypso` — re-executing an interrupted task is always safe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.arbitrator import QoSArbitrator
from repro.core.placement import ChainPlacement
from repro.core.resources import ProcessorTimeRequest, time_leq
from repro.core.schedule import Schedule
from repro.errors import CapacityExceededError, SimulationError
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.quality import chain_quality
from repro.model.task import TaskSpec
from repro.resilience.events import CapacityEvent, OverrunEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.events import PerturbationTrace
    from repro.resilience.reconfig import ReconfigEngine

__all__ = ["RenegotiationDriver", "ResilienceOutcome", "ResizeTxn"]


@dataclass(slots=True)
class _LiveJob:
    """Driver-side record of one admitted, not-yet-finished job."""

    job_id: int
    job: Job
    original_release: float
    granted_quality: float
    current_quality: float
    current_original_index: int
    placement: ChainPlacement
    #: Tasks of the current path completed before the placement's release
    #: (grows on same-path re-plans; the placement covers the remainder).
    completed_before: int = 0
    #: Processor-time consumed so far (completed placements are added when
    #: they finish; interrupted portions are added at re-plan time).
    spent: float = 0.0
    #: Consumed processor-time that produced no retained result.
    wasted: float = 0.0
    replans: int = 0
    resizes: int = 0
    affected: bool = False
    #: Latent overrun: (absolute task position on the current path, factor).
    latent: tuple[int, float] | None = None


@dataclass(slots=True)
class ResizeTxn:
    """One tentative mid-execution resize, applied to the schedule only.

    Returned by :meth:`RenegotiationDriver.resize_remainder` with the old
    tail already rolled back and the reshaped remainder committed; the
    driver's own bookkeeping is untouched until the caller decides.
    Exactly one of :meth:`finalize` (keep the resize, charge the ledger)
    or :meth:`undo` (restore the original reservation bit for bit) must be
    called.
    """

    driver: "RenegotiationDriver"
    rec: _LiveJob
    old_cp: ChainPlacement
    new_cp: ChainPlacement
    cut: float
    completed: int
    executed: float
    kept: float
    old_width: int
    delay: float
    closed: bool = False

    @property
    def old_finish(self) -> float:
        """Reserved finish before the resize."""
        return self.old_cp.finish

    @property
    def new_finish(self) -> float:
        """Reserved finish of the reshaped remainder."""
        return self.new_cp.finish

    @property
    def new_width(self) -> int:
        """Width the in-flight task restarts at."""
        return self.new_cp.placements[0].processors

    def finalize(self) -> None:
        """Keep the resize: charge spent/wasted and swap the live placement.

        The in-flight task restarts from scratch (Calypso idempotent
        re-execution), so its consumed share — everything executed beyond
        the completed prefix — is both ``spent`` (the processors were
        busy) and ``wasted`` (the partial run is discarded).
        """
        assert not self.closed, "resize transaction already closed"
        self.closed = True
        rec = self.rec
        discarded = self.executed - self.kept
        rec.spent += self.executed
        rec.wasted += discarded
        rec.completed_before += self.completed
        rec.placement = self.new_cp
        rec.resizes += 1
        driver = self.driver
        driver._resizes += 1
        driver._resize_cost += self.delay
        driver._resize_wasted += discarded

    def undo(self) -> None:
        """Abandon the resize: restore the pre-resize reservation exactly."""
        assert not self.closed, "resize transaction already closed"
        self.closed = True
        schedule = self.driver.arbitrator.schedule
        schedule.rollback(self.new_cp)
        schedule.restore_tail(self.old_cp, self.cut)


@dataclass(frozen=True, slots=True)
class ResilienceOutcome:
    """Run-level aggregates the driver contributes to :class:`RunMetrics`.

    ``utilization`` and ``horizon`` replace the schedule-derived values
    whenever a perturbation was applied (capacity events replace the
    schedule object wholesale, so only the driver sees the whole run);
    ``achieved_quality`` corrects the arbitrator's admission-time sum for
    path downgrades and lost jobs.
    """

    resilience: dict[str, float | int]
    achieved_quality: float
    utilization: float
    horizon: float


class RenegotiationDriver:
    """Carries live reservations across a sequence of perturbation events.

    Parameters
    ----------
    arbitrator:
        The live system; the driver re-plans through the arbitrator's own
        scheduler (so the malleable model and tie-break policy carry over)
        and swaps its schedule on capacity changes.
    """

    def __init__(self, arbitrator: QoSArbitrator) -> None:
        self.arbitrator = arbitrator
        #: Optional mid-execution resize engine (see
        #: :mod:`repro.resilience.reconfig`); bound by the engine itself.
        self.reconfig: "ReconfigEngine | None" = None
        self._live: dict[int, _LiveJob] = {}
        self._base_capacity = arbitrator.capacity
        self._capacity_steps: list[tuple[float, int]] = []
        self._first_release = math.inf
        self._horizon = 0.0
        # Outcome counters.
        self._affected = 0
        self._survived = 0
        self._degraded = 0
        self._dropped = 0
        self._deadline_misses = 0
        self._path_switches = 0
        self._replans = 0
        self._carried = 0
        self._capacity_events = 0
        self._overrun_events = 0
        # Mid-execution resize ledger (grow/shrink detail lives in the
        # reconfig engine; the driver keeps the work-accounting totals).
        self._resizes = 0
        self._resize_cost = 0.0
        self._resize_wasted = 0.0
        # Work/quality accounting.
        self._spent_total = 0.0
        self._wasted_total = 0.0
        self._quality_delta = 0.0
        self._quality_adjust = 0.0

    # ------------------------------------------------------------------
    # Admission-side bookkeeping
    # ------------------------------------------------------------------

    def register(
        self,
        job: Job,
        placement: ChainPlacement,
        overrun: OverrunEvent | None = None,
    ) -> None:
        """Start tracking an admitted job (optionally with a latent overrun)."""
        quality = chain_quality(
            placement.chain, self.arbitrator.quality_composition
        )
        rec = _LiveJob(
            job_id=job.job_id,
            job=job,
            original_release=job.release,
            granted_quality=quality,
            current_quality=quality,
            current_original_index=placement.chain_index,
            placement=placement,
        )
        if overrun is not None:
            pos = min(overrun.task_index, len(placement.placements) - 1)
            rec.latent = (pos, overrun.factor)
        self._live[job.job_id] = rec
        if job.release < self._first_release:
            self._first_release = job.release

    @property
    def live_jobs(self) -> int:
        """Number of admitted jobs not yet finished or lost."""
        return len(self._live)

    def live_placements(self) -> tuple[ChainPlacement, ...]:
        """Current placements of all live jobs (for verification)."""
        return tuple(rec.placement for rec in self._live.values())

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------

    def sweep_finished(self, now: float) -> None:
        """Retire every live job whose placement finishes by ``now``."""
        for job_id in [
            jid
            for jid, rec in self._live.items()
            if time_leq(rec.placement.finish, now)
        ]:
            rec = self._live.pop(job_id)
            rec.spent += rec.placement.total_area
            self._spent_total += rec.spent
            self._wasted_total += rec.wasted
            delta = rec.current_quality - rec.granted_quality
            self._quality_delta += delta
            self._quality_adjust += delta
            if rec.affected:
                self._survived += 1
                if rec.current_quality < rec.granted_quality - 1e-12:
                    self._degraded += 1
            if rec.placement.finish > self._horizon:
                self._horizon = rec.placement.finish

    def on_capacity_change(self, event: CapacityEvent) -> None:
        """Rebuild the committed schedule on the post-event machine size.

        Mirrors the one-shot :func:`~repro.qos.renegotiation.renegotiate`
        — finished placements are history, running placements are carried
        (clipped at the event time) in ``(start, job_id)`` order, pending
        placements are re-admitted in ``(release, job_id)`` order — but
        instead of dropping a job whose reservation no longer fits, the
        driver re-plans it across its remaining paths first.
        """
        tau = event.time
        self.sweep_finished(tau)
        self._capacity_events += 1
        self._capacity_steps.append((tau, event.new_capacity))
        new_schedule = Schedule(
            event.new_capacity,
            origin=tau,
            keep_placements=self.arbitrator.schedule.keeps_placements,
            backend=self.arbitrator.schedule.profile.backend,
        )
        self.arbitrator.adopt_schedule(new_schedule)
        running = [
            rec for rec in self._live.values() if rec.placement.start < tau
        ]
        future = [
            rec for rec in self._live.values() if rec.placement.start >= tau
        ]
        for rec in self._live.values():
            self._mark_affected(rec)
        # Jobs re-established on the *new* schedule so far: the only legal
        # shrink donors for the capacity-pressure rescue below (a job not
        # yet processed still holds its reservation on the old schedule).
        donors: list[int] = []
        for rec in sorted(running, key=lambda r: (r.placement.start, r.job_id)):
            try:
                new_schedule.adopt_carried(rec.placement, tau)
                self._carried += 1
                donors.append(rec.job_id)
                continue
            except CapacityExceededError:
                pass
            if self._replan(rec, tau) is not None:
                donors.append(rec.job_id)
            elif self.reconfig is not None and self.reconfig.rescue_replan(
                rec, tau, donors
            ):
                donors.append(rec.job_id)
            else:
                self._lose(rec, tau, overrun=False)
        for rec in sorted(future, key=lambda r: (r.placement.release, r.job_id)):
            if self._replan(rec, tau) is not None:
                donors.append(rec.job_id)
            elif self.reconfig is not None and self.reconfig.rescue_replan(
                rec, tau, donors
            ):
                donors.append(rec.job_id)
            else:
                self._lose(rec, tau, overrun=False)

    def overrun_due(self, job_id: int) -> float | None:
        """Detection time of ``job_id``'s latent overrun, if still armed.

        The overrun becomes observable when the afflicted task's *reserved*
        finish passes without completion — which is the reserved end of that
        task on the job's **current** placement (re-plans move it).

        An armed position outside the current placement's range means the
        afflicted task is no longer part of the plan (both known causes —
        the completed-prefix count swallowing an armed task, and a path
        switch keeping the old path's latent — are fixed upstream); rather
        than clamp onto an unrelated placement and re-offer finished work,
        the overrun is disarmed.
        """
        rec = self._live.get(job_id)
        if rec is None or rec.latent is None:
            return None
        pos, _ = rec.latent
        idx = pos - rec.completed_before
        if idx < 0 or idx >= len(rec.placement.placements):
            # pragma: no cover - defensive; upstream bookkeeping keeps armed
            # positions in range
            rec.latent = None
            return None
        return rec.placement.placements[idx].end

    def pending_overruns(self) -> tuple[tuple[int, float], ...]:
        """(job_id, detection time) for every still-armed latent overrun.

        Re-plans move reserved finish times, so the simulator refreshes its
        detection events from this after every capacity change; stale queue
        entries are recognized (their time no longer matches
        :meth:`overrun_due`) and skipped.
        """
        out: list[tuple[int, float]] = []
        for job_id in self._live:
            due = self.overrun_due(job_id)
            if due is not None:
                out.append((job_id, due))
        return tuple(out)

    def handle_overrun(self, job_id: int) -> bool:
        """React to a detected overrun; True when the job keeps a reservation.

        Rolls back the chain's downstream reservations from the detection
        instant (:meth:`Schedule.rollback_tail
        <repro.core.schedule.Schedule.rollback_tail>`), then re-plans the
        remaining tasks — the interrupted task re-offered with its revealed
        (dilated) duration, alternate paths with declared durations, since
        switching configurations sidesteps the slow computation — against
        the job's remaining deadline slack.  Records an honest deadline
        miss when nothing fits.
        """
        rec = self._live[job_id]
        assert rec.latent is not None
        pos, factor = rec.latent
        rec.latent = None
        self._overrun_events += 1
        self._mark_affected(rec)
        idx = pos - rec.completed_before
        if not 0 <= idx < len(rec.placement.placements):
            # An out-of-range armed position would mis-attribute the overrun
            # to an unrelated task and re-offer finished work; detection
            # (overrun_due) disarms those before they get here.
            raise SimulationError(
                f"overrun of job {job_id} armed at position {pos} outside "
                f"its current placement"
            )
        cut = rec.placement.placements[idx].end
        self.arbitrator.schedule.rollback_tail(rec.placement, cut)
        if self._replan(rec, cut, failed_index=idx, factor=factor) is None:
            self._lose(rec, cut, overrun=True)
            return False
        return True

    # ------------------------------------------------------------------
    # Mid-execution resizing (the reconfig engine's mechanics)
    # ------------------------------------------------------------------

    def live_finishes(self) -> tuple[tuple[int, float], ...]:
        """(job_id, reserved finish) for every live job.

        The simulator refreshes its completion-triggered resize events from
        this after any event that moves reservations; stale queue entries
        (finish no longer matching) are skipped when popped.
        """
        return tuple(
            (job_id, rec.placement.finish)
            for job_id, rec in self._live.items()
        )

    def inflight(self, job_id: int, now: float) -> tuple[int, TaskSpec] | None:
        """``(width, task)`` of ``job_id``'s in-flight task at ``now``.

        A task is in flight when it has started strictly before ``now``
        and its reserved finish has not passed.  Jobs between tasks, not
        yet started, or already finished yield ``None`` — the resize
        engine only restarts work that is actually running.
        """
        rec = self._live.get(job_id)
        if rec is None:
            return None
        cp = rec.placement
        k = self._completed_count(rec, now)
        if k >= len(cp.placements):
            return None
        lead = cp.placements[k]
        if time_leq(now, lead.start) or time_leq(lead.end, now):
            return None
        return lead.processors, cp.chain.tasks[k]

    def resize_remainder(
        self,
        job_id: int,
        now: float,
        *,
        delay: float,
        first_min_width: int | None = None,
        first_max_width: int | None = None,
    ) -> ResizeTxn | None:
        """Tentatively restart a live job's in-flight task at a new width.

        The grow/shrink primitive: the placement's tail is rolled back at
        ``now``, and the remainder — the in-flight task restarted from
        scratch with its full declared work (idempotent re-execution),
        downstream tasks reshaped freely — is re-placed no earlier than
        ``now + delay`` (the reconfiguration-cost charge) with the leading
        width bounded by ``first_min_width``/``first_max_width``, against
        the job's original absolute deadlines.  On success the reshaped
        remainder is committed and a :class:`ResizeTxn` returned for the
        caller to finalize or undo; on failure the original reservation is
        restored and ``None`` returned (the schedule is untouched either
        way until ``finalize()``).
        """
        from repro.core.malleable import MalleableScheduler

        rec = self._live.get(job_id)
        scheduler = self.arbitrator.scheduler
        if rec is None or not isinstance(scheduler, MalleableScheduler):
            return None
        cp = rec.placement
        k = self._completed_count(rec, now)
        if k >= len(cp.placements):
            return None
        lead = cp.placements[k]
        if time_leq(now, lead.start) or time_leq(lead.end, now):
            return None  # between tasks or not started: nothing in flight
        rebased = self._rebase(
            cp.chain, tuple(cp.chain.tasks[k:]), cp.release, now
        )
        if rebased is None:
            return None
        executed = sum(
            max(0.0, min(pl.end, now) - pl.start) * pl.processors
            for pl in cp.placements
        )
        kept = sum(pl.area for pl in cp.placements[:k])
        schedule = self.arbitrator.schedule
        schedule.rollback_tail(cp, now)
        new_cp = scheduler.resize_placement(
            rebased,
            now,
            earliest=now + delay,
            first_min_width=first_min_width,
            first_max_width=first_max_width,
            job_id=rec.job_id,
            chain_index=cp.chain_index,
        )
        if new_cp is None:
            schedule.restore_tail(cp, now)
            return None
        schedule.commit(new_cp)
        return ResizeTxn(
            driver=self,
            rec=rec,
            old_cp=cp,
            new_cp=new_cp,
            cut=now,
            completed=k,
            executed=executed,
            kept=kept,
            old_width=lead.processors,
            delay=delay,
        )

    # ------------------------------------------------------------------
    # Re-planning
    # ------------------------------------------------------------------

    def _mark_affected(self, rec: _LiveJob) -> None:
        if not rec.affected:
            rec.affected = True
            self._affected += 1

    def _completed_count(self, rec: _LiveJob, now: float) -> int:
        """Tasks of ``rec.placement`` genuinely completed by ``now``.

        An armed latent overrun caps the count at the afflicted task: the
        overrun means that task is still running when its reservation
        expires, so an event landing within ``TIME_EPS`` of (or after) the
        reserved finish — before detection has fired — must not count it
        as done.  Without the cap, ``completed_before`` advances past the
        armed position, the overrun silently vanishes, and the job
        spuriously survives with its slow task marked complete.
        """
        cp = rec.placement
        k = sum(1 for pl in cp.placements if time_leq(pl.end, now))
        if rec.latent is not None:
            armed = rec.latent[0] - rec.completed_before
            if 0 <= armed < k:
                k = armed
        return k

    def _rebase(
        self,
        chain: TaskChain,
        tasks: tuple[TaskSpec, ...],
        base_release: float,
        now: float,
    ) -> TaskChain | None:
        """Shift ``tasks``' relative deadlines from ``base_release`` to ``now``.

        Absolute deadlines are preserved exactly: a task due at
        ``base_release + d`` becomes due at ``now + (base_release + d - now)``.
        Returns ``None`` when any deadline has already passed.
        """
        rebased: list[TaskSpec] = []
        for task in tasks:
            if math.isinf(task.deadline):
                rebased.append(task)
                continue
            remaining = base_release + task.deadline - now
            if remaining <= 0:
                return None
            rebased.append(task.with_deadline(remaining))
        return TaskChain(tuple(rebased), label=chain.label, params=chain.params)

    def _replan(
        self,
        rec: _LiveJob,
        now: float,
        failed_index: int | None = None,
        factor: float = 1.0,
    ) -> ChainPlacement | None:
        """Re-admit ``rec``'s remaining work at ``now``; None when nothing fits.

        Candidate paths:

        * the **remainder of the current path** — tasks after the completed
          prefix, deadlines rebased so absolute deadlines are unchanged;
          on an overrun the interrupted task leads with its dilated
          (revealed) duration;
        * while **no task has completed on any path**, every alternate
          chain of the original job (rebased likewise) — the OR-graph
          flexibility the paper argues for.

        The arbitrator's own scheduler picks among candidates (earliest
        finish under its tie-break policy), so carried-over semantics match
        admission.  On success the record's placement, quality and
        completed-prefix bookkeeping are updated; the interrupted portion
        of the old placement is charged to ``spent`` (and the discarded
        share to ``wasted``).
        """
        cp = rec.placement
        if failed_index is not None:
            k = failed_index
        else:
            k = self._completed_count(rec, now)
        executed = sum(
            max(0.0, min(pl.end, now) - pl.start) * pl.processors
            for pl in cp.placements
        )
        rec.spent += executed
        kept = sum(pl.area for pl in cp.placements[:k])

        chains: list[TaskChain] = []
        #: chains[i] -> (original chain index, same-path?)
        path_map: list[tuple[int, bool]] = []

        remaining = list(cp.chain.tasks[k:])
        if remaining:
            if failed_index is not None:
                slow = remaining[0]
                remaining[0] = replace(
                    slow,
                    request=ProcessorTimeRequest(
                        slow.processors, slow.duration * factor
                    ),
                )
            same = self._rebase(cp.chain, tuple(remaining), cp.release, now)
            if same is not None:
                chains.append(same)
                path_map.append((rec.current_original_index, True))

        if rec.completed_before + k == 0:
            for j, chain in enumerate(rec.job.chains):
                if j == rec.current_original_index:
                    continue
                alt = self._rebase(
                    chain, chain.tasks, rec.original_release, now
                )
                if alt is not None:
                    chains.append(alt)
                    path_map.append((j, False))

        if not chains:
            return None
        offer = Job(
            chains=tuple(chains),
            release=now,
            job_id=rec.job_id,
            name=rec.job.name,
        )
        new_cp = self.arbitrator.scheduler.schedule_job(offer)
        if new_cp is None:
            return None

        orig_index, same_path = path_map[new_cp.chain_index]
        if same_path:
            rec.wasted += executed - kept
            rec.completed_before += k
        else:
            rec.wasted += executed
            rec.completed_before = 0
            # Switching configurations sidesteps the slow computation (see
            # handle_overrun), so a still-armed overrun of the abandoned
            # path dies with it; keeping it would index the *new* path's
            # placements at the old path's position.
            rec.latent = None
            self._path_switches += 1
            rec.current_quality = chain_quality(
                rec.job.chains[orig_index],
                self.arbitrator.quality_composition,
            )
        rec.current_original_index = orig_index
        rec.placement = new_cp
        rec.replans += 1
        self._replans += 1
        return new_cp

    def _lose(self, rec: _LiveJob, now: float, overrun: bool) -> None:
        """Retire ``rec`` as lost; all its consumed work becomes waste."""
        del self._live[rec.job_id]
        rec.wasted = rec.spent
        self._spent_total += rec.spent
        self._wasted_total += rec.wasted
        self._quality_adjust -= rec.granted_quality
        if overrun:
            self._deadline_misses += 1
        else:
            self._dropped += 1
        if now > self._horizon:
            self._horizon = now

    # ------------------------------------------------------------------
    # Verification / finalization
    # ------------------------------------------------------------------

    def check_consistency(self) -> None:
        """Audit the live schedule and every live placement.

        Every live job must still satisfy release/precedence/deadline on
        its (possibly re-planned) placement, and the committed schedule's
        profile invariants and capacity feasibility must hold.
        """
        self.arbitrator.schedule.check_consistency()
        for rec in self._live.values():
            rec.placement.validate()

    def _capacity_integral(self, start: float, end: float) -> float:
        """∫ capacity(t) dt over ``[start, end]`` under the applied steps."""
        if end <= start:
            return 0.0
        cap = self._base_capacity
        prev = start
        total = 0.0
        for t, new_cap in self._capacity_steps:
            if t <= start:
                cap = new_cap
                continue
            if t >= end:
                break
            total += cap * (t - prev)
            prev, cap = t, new_cap
        total += cap * (end - prev)
        return total

    def finalize(
        self, trace: "PerturbationTrace", burst_arrivals: int = 0
    ) -> ResilienceOutcome:
        """Close the books after the last event; all live jobs must be swept."""
        if self._live:  # pragma: no cover - simulator sweeps at +inf first
            raise SimulationError(
                f"finalize with {len(self._live)} jobs still live"
            )
        if self._capacity_events:
            # Capacity events replace the Schedule object wholesale, so
            # schedule-side accounting only covers the last epoch; compute
            # utilization from the driver's work ledger against the actual
            # (perturbed) capacity trace.
            available = self._capacity_integral(
                self._first_release, self._horizon
            )
            utilization = self._spent_total / available if available > 0 else 0.0
        else:
            # Overrun/burst-only runs keep one coherent schedule
            # (rollback_tail maintains its accounting).
            utilization = self.arbitrator.utilization()
        resilience: dict[str, float | int] = {
            "events": self._capacity_events + self._overrun_events,
            "capacity_events": self._capacity_events,
            "overrun_events": self._overrun_events,
            "burst_arrivals": burst_arrivals,
            "affected": self._affected,
            "survived": self._survived,
            "degraded": self._degraded,
            "dropped": self._dropped,
            "deadline_misses": self._deadline_misses,
            "carried": self._carried,
            "replans": self._replans,
            "path_switches": self._path_switches,
            "survival_rate": (
                self._survived / self._affected if self._affected else 1.0
            ),
            "quality_delta": self._quality_delta,
            "capacity_lost": trace.capacity_lost(
                self._base_capacity, self._horizon
            ),
            "wasted_work": self._wasted_total,
            # Mid-execution resize totals (grow/shrink split is the
            # reconfig engine's ledger, merged in by the simulator).
            "resizes": self._resizes,
            "resize_cost": self._resize_cost,
            "resize_wasted": self._resize_wasted,
        }
        return ResilienceOutcome(
            resilience=resilience,
            achieved_quality=(
                self.arbitrator.achieved_quality + self._quality_adjust
            ),
            utilization=utilization,
            horizon=self._horizon,
        )
