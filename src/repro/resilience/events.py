"""Perturbation traces: the fault model as a reproducible event stream.

Section 3.1 describes an arbitrator that "monitors system resources, and
triggers renegotiation on detecting a significant change in resource
levels (e.g., on a fault, or when new resources become available)", yet
the Section 5 experiments assume a fault-free fixed-capacity machine.
This module makes resource-level change first-class: a
:class:`PerturbationTrace` is a deterministic, timestamped record of

* **capacity events** — processor failures and recoveries, expressed as a
  piecewise-constant machine-capacity trace;
* **overruns** — per-job execution-time overruns relative to the declared
  request (the "wide variations in processing speeds" of Section 2 seen
  from the reservation side);
* **arrival bursts** — extra job arrivals injected at one instant.

Traces are generated from :class:`~repro.sim.rng.RandomStreams`
substreams, so they are reproducible bit-for-bit and *CRN-pairable*: the
tunable and rigid task systems compared at one sweep point see the
identical fault sequence, exactly as they see identical arrivals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams

__all__ = [
    "CapacityEvent",
    "OverrunEvent",
    "BurstEvent",
    "PerturbationTrace",
    "FaultModel",
    "generate_trace",
]


def _check_finite(value: float, what: str) -> None:
    if math.isnan(value) or math.isinf(value):
        raise ConfigurationError(f"{what} must be finite, got {value!r}")


@dataclass(frozen=True, slots=True)
class CapacityEvent:
    """The machine has ``new_capacity`` processors from ``time`` onward.

    A failure is an event lowering capacity; a recovery is one raising it.
    Consecutive events form the piecewise-constant capacity trace.
    """

    time: float
    new_capacity: int

    def __post_init__(self) -> None:
        _check_finite(self.time, "capacity event time")
        if self.new_capacity <= 0:
            raise ConfigurationError(
                f"new_capacity must be positive, got {self.new_capacity}"
            )


@dataclass(frozen=True, slots=True)
class OverrunEvent:
    """Arrival ``job_seq``'s task at ``task_index`` runs ``factor``x long.

    The overrun is *latent* until the task's reserved finish time passes
    without completion — that instant is when the simulator detects it and
    the driver renegotiates the job's remaining work.  ``task_index`` is
    clamped to the granted chain's length (trace generation does not know
    which path admission will choose).
    """

    job_seq: int
    task_index: int
    factor: float

    def __post_init__(self) -> None:
        if self.job_seq < 0:
            raise ConfigurationError(f"job_seq must be >= 0, got {self.job_seq}")
        if self.task_index < 0:
            raise ConfigurationError(
                f"task_index must be >= 0, got {self.task_index}"
            )
        _check_finite(self.factor, "overrun factor")
        if not self.factor > 1.0:
            raise ConfigurationError(
                f"overrun factor must exceed 1, got {self.factor}"
            )


@dataclass(frozen=True, slots=True)
class BurstEvent:
    """``count`` extra job arrivals injected at ``time``."""

    time: float
    count: int

    def __post_init__(self) -> None:
        _check_finite(self.time, "burst time")
        if self.time < 0:
            raise ConfigurationError(f"burst time must be >= 0, got {self.time}")
        if self.count <= 0:
            raise ConfigurationError(f"burst count must be positive, got {self.count}")


@dataclass(frozen=True, slots=True)
class PerturbationTrace:
    """A complete, validated perturbation schedule for one run.

    Attributes
    ----------
    capacity_events:
        Piecewise-constant capacity changes, strictly increasing in time.
    overruns:
        At most one latent overrun per arrival sequence number.
    bursts:
        Extra-arrival injections, non-decreasing in time.
    """

    capacity_events: tuple[CapacityEvent, ...] = ()
    overruns: tuple[OverrunEvent, ...] = ()
    bursts: tuple[BurstEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "capacity_events", tuple(self.capacity_events))
        object.__setattr__(self, "overruns", tuple(self.overruns))
        object.__setattr__(self, "bursts", tuple(self.bursts))
        for a, b in zip(self.capacity_events, self.capacity_events[1:]):
            if not b.time > a.time:
                raise ConfigurationError(
                    f"capacity events must be strictly increasing in time "
                    f"({a.time} then {b.time})"
                )
        seqs = [o.job_seq for o in self.overruns]
        if len(seqs) != len(set(seqs)):
            raise ConfigurationError("at most one overrun per arrival sequence")
        for a, b in zip(self.bursts, self.bursts[1:]):
            if b.time < a.time:
                raise ConfigurationError("burst times must be non-decreasing")

    @property
    def empty(self) -> bool:
        """True when the trace perturbs nothing (the fault-free baseline)."""
        return not (self.capacity_events or self.overruns or self.bursts)

    def overruns_by_seq(self) -> Mapping[int, OverrunEvent]:
        """Index the latent overruns by arrival sequence number."""
        return {o.job_seq: o for o in self.overruns}

    def capacity_at(self, t: float, base_capacity: int) -> int:
        """Machine capacity at instant ``t`` under this trace."""
        cap = base_capacity
        for ev in self.capacity_events:
            if ev.time <= t:
                cap = ev.new_capacity
            else:
                break
        return cap

    def capacity_lost(self, base_capacity: int, horizon: float) -> float:
        """Processor-time removed by faults over ``[0, horizon]``.

        The integral of ``max(0, base - capacity(t))`` — extra capacity
        gained above the base (the "new resources" direction) does not
        offset losses.
        """
        if horizon <= 0 or not self.capacity_events:
            return 0.0
        lost = 0.0
        prev_t, prev_cap = 0.0, base_capacity
        for ev in self.capacity_events:
            t = min(max(ev.time, 0.0), horizon)
            lost += max(0, base_capacity - prev_cap) * (t - prev_t)
            prev_t, prev_cap = t, ev.new_capacity
            if ev.time >= horizon:
                break
        lost += max(0, base_capacity - prev_cap) * (horizon - prev_t)
        return lost


@dataclass(frozen=True, slots=True)
class FaultModel:
    """Stochastic perturbation intensities, the input to :func:`generate_trace`.

    Attributes
    ----------
    fault_rate:
        Processor-failure events per unit virtual time (Poisson).
    fault_severity:
        Fraction of the *base* capacity removed by each failure (at least
        one processor); overlapping failures stack, floored at one live
        processor.
    mean_repair:
        Mean outage duration (exponential); failed processors return
        afterwards.
    overrun_prob:
        Probability that any given arrival carries a latent execution-time
        overrun.
    overrun_excess:
        Mean of the overrun factor's excess over 1 (exponential), i.e. the
        factor is ``1 + Exp(overrun_excess)``.
    burst_rate:
        Arrival-burst events per unit virtual time (Poisson).
    burst_size:
        Extra arrivals injected per burst.
    """

    fault_rate: float = 0.0
    fault_severity: float = 0.25
    mean_repair: float = 500.0
    overrun_prob: float = 0.0
    overrun_excess: float = 0.5
    burst_rate: float = 0.0
    burst_size: int = 4

    def __post_init__(self) -> None:
        for name in ("fault_rate", "overrun_prob", "burst_rate"):
            value = getattr(self, name)
            _check_finite(value, name)
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")
        if self.overrun_prob > 1:
            raise ConfigurationError(
                f"overrun_prob must be <= 1, got {self.overrun_prob}"
            )
        if not 0 < self.fault_severity <= 1:
            raise ConfigurationError(
                f"fault_severity must be in (0, 1], got {self.fault_severity}"
            )
        if not self.mean_repair > 0:
            raise ConfigurationError(
                f"mean_repair must be positive, got {self.mean_repair}"
            )
        if not self.overrun_excess > 0:
            raise ConfigurationError(
                f"overrun_excess must be positive, got {self.overrun_excess}"
            )
        if self.burst_size <= 0:
            raise ConfigurationError(
                f"burst_size must be positive, got {self.burst_size}"
            )

    @property
    def empty(self) -> bool:
        """True when no perturbation can ever be generated."""
        return (
            self.fault_rate == 0
            and self.overrun_prob == 0
            and self.burst_rate == 0
        )

    def with_fault_rate(self, fault_rate: float) -> "FaultModel":
        """Copy with a different failure rate (the ``fault_rate`` sweep axis)."""
        return replace(self, fault_rate=float(fault_rate))


def _poisson_times(rng, rate: float, horizon: float) -> list[float]:
    """Event times of a Poisson process with ``rate`` over ``(0, horizon]``."""
    times: list[float] = []
    if rate <= 0 or horizon <= 0:
        return times
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t > horizon:
            return times
        times.append(t)


def _capacity_events(
    model: FaultModel, rng, horizon: float, base_capacity: int
) -> tuple[CapacityEvent, ...]:
    """Failure/recovery pairs merged into a piecewise-constant trace."""
    deltas: list[tuple[float, int]] = []
    for t_fail in _poisson_times(rng, model.fault_rate, horizon):
        down = max(1, round(model.fault_severity * base_capacity))
        repair = float(rng.exponential(model.mean_repair))
        deltas.append((t_fail, -down))
        deltas.append((t_fail + repair, down))
    if not deltas:
        return ()
    deltas.sort()
    events: list[CapacityEvent] = []
    raw = base_capacity
    effective = base_capacity
    i = 0
    while i < len(deltas):
        t = deltas[i][0]
        while i < len(deltas) and deltas[i][0] == t:
            raw += deltas[i][1]
            i += 1
        new_effective = max(1, raw)
        if new_effective != effective:
            effective = new_effective
            events.append(CapacityEvent(t, effective))
    return tuple(events)


def generate_trace(
    model: FaultModel,
    streams: RandomStreams,
    horizon: float,
    base_capacity: int,
    n_arrivals: int,
) -> PerturbationTrace:
    """Draw a deterministic perturbation trace from named substreams.

    Substream names (``perturb-capacity``, ``perturb-overrun``,
    ``perturb-burst``) are disjoint from the arrival streams, so adding
    faults to a run never perturbs its arrival sequence — and two systems
    sharing a master seed share the identical trace (common random
    numbers across the tunability comparison).

    ``horizon`` bounds capacity/burst event generation; ``n_arrivals``
    bounds the sequence numbers eligible for latent overruns (burst
    arrivals, numbered beyond the base arrivals, never overrun).
    """
    if math.isnan(horizon) or math.isinf(horizon) or horizon < 0:
        raise ConfigurationError(f"horizon must be finite and >= 0, got {horizon!r}")
    if base_capacity <= 0:
        raise ConfigurationError(
            f"base_capacity must be positive, got {base_capacity}"
        )
    if n_arrivals < 0:
        raise ConfigurationError(f"n_arrivals must be >= 0, got {n_arrivals}")
    if model.empty:
        return PerturbationTrace()

    capacity = _capacity_events(
        model, streams.numpy("perturb-capacity"), horizon, base_capacity
    )

    overruns: list[OverrunEvent] = []
    if model.overrun_prob > 0 and n_arrivals > 0:
        rng = streams.numpy("perturb-overrun")
        hits = rng.random(n_arrivals) < model.overrun_prob
        # Draw the per-hit shape variates unconditionally so a changed
        # overrun_prob never re-shuffles which factor a given job gets.
        factors = 1.0 + rng.exponential(model.overrun_excess, size=n_arrivals)
        task_indices = rng.integers(0, 4, size=n_arrivals)
        for seq in range(n_arrivals):
            if hits[seq]:
                overruns.append(
                    OverrunEvent(seq, int(task_indices[seq]), float(factors[seq]))
                )

    bursts: Sequence[BurstEvent] = ()
    if model.burst_rate > 0:
        rng = streams.numpy("perturb-burst")
        bursts = tuple(
            BurstEvent(t, model.burst_size)
            for t in _poisson_times(rng, model.burst_rate, horizon)
        )

    return PerturbationTrace(
        capacity_events=capacity,
        overruns=tuple(overruns),
        bursts=tuple(bursts),
    )
