"""OR task graphs and path enumeration.

Section 3.1: "the application is viewed as an execution path (a chain, or
more generally, a dag) comprising several tasks ... Tunability is expressed
by specifying multiple such execution paths".  Section 5.1: "a job is now
represented by an OR task graph instead of a chain ... we assume that all
paths through an OR graph have been enumerated".

The representation here is a *staged* OR graph: a sequence of stages, each
offering one or more :class:`Alternative` branches.  Alternatives carry
*guards* (control-parameter values that must already hold, mirroring the
DSL's ``when`` expressions) and *bindings* (control-parameter assignments
they make, mirroring configuration choice and ``finally`` code).  Path
enumeration threads a parameter environment through the stages, pruning
branches whose guards fail — this is exactly how the junction-detection
program's third step is restricted by the configuration chosen in its first
step (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.errors import InvalidJobError, ProgramStructureError
from repro.model.chain import TaskChain
from repro.model.task import TaskSpec

__all__ = ["Alternative", "Stage", "ORGraph"]

#: Safety valve for path explosion in deeply tunable programs.
DEFAULT_MAX_PATHS = 4096


@dataclass(frozen=True, slots=True)
class Alternative:
    """One branch of a stage.

    Attributes
    ----------
    tasks:
        Concrete tasks this branch contributes to the path (possibly empty —
        a pure parameter-setting branch).
    guard:
        Control-parameter values that must already hold for the branch to be
        viable.  Every guarded parameter must be *bound* by the time the
        stage is reached; guarding an unbound parameter is a structural
        error (the DSL guarantees ``when`` expressions only read parameters
        assigned by earlier steps).
    binds:
        Control-parameter assignments the branch makes (configuration choice
        plus ``finally``-style derived parameters).  Rebinding a parameter
        to a *different* value prunes the path; rebinding to the same value
        is a no-op.
    label:
        Human-readable tag used to build the chain label.
    """

    tasks: tuple[TaskSpec, ...] = ()
    guard: Mapping[str, object] = field(default_factory=dict)
    binds: Mapping[str, object] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "tasks", tuple(self.tasks))
        object.__setattr__(self, "guard", dict(self.guard))
        object.__setattr__(self, "binds", dict(self.binds))


@dataclass(frozen=True, slots=True)
class Stage:
    """One step of the program: a non-empty set of alternative branches."""

    alternatives: tuple[Alternative, ...]
    name: str = ""

    def __post_init__(self) -> None:
        alts = tuple(self.alternatives)
        object.__setattr__(self, "alternatives", alts)
        if not alts:
            raise ProgramStructureError(f"stage {self.name!r} has no alternatives")

    @staticmethod
    def single(task: TaskSpec, name: str = "") -> "Stage":
        """A stage with exactly one unconditional task."""
        return Stage((Alternative(tasks=(task,), label=task.name),), name=name or task.name)


@dataclass(frozen=True, slots=True)
class ORGraph:
    """A staged OR task graph.

    Paths through the graph pick one viable alternative per stage; the
    concatenation of the alternatives' tasks forms a
    :class:`~repro.model.chain.TaskChain`.
    """

    stages: tuple[Stage, ...]
    name: str = ""

    def __post_init__(self) -> None:
        stages = tuple(self.stages)
        object.__setattr__(self, "stages", stages)
        if not stages:
            raise ProgramStructureError("an OR graph needs at least one stage")

    # ------------------------------------------------------------------

    def path_count_upper_bound(self) -> int:
        """Product of per-stage branch counts (ignores guard pruning)."""
        n = 1
        for s in self.stages:
            n *= len(s.alternatives)
        return n

    def _walk(
        self,
        stage_idx: int,
        env: dict[str, object],
        tasks: list[TaskSpec],
        labels: list[str],
        out: list[TaskChain],
        max_paths: int,
    ) -> None:
        if len(out) >= max_paths:
            raise ProgramStructureError(
                f"OR graph {self.name!r} enumerates more than {max_paths} paths; "
                "raise max_paths if this is intentional"
            )
        if stage_idx == len(self.stages):
            if not tasks:
                raise InvalidJobError(
                    f"OR graph {self.name!r}: a path contributed no tasks"
                )
            out.append(
                TaskChain(
                    tuple(tasks),
                    label="/".join(l for l in labels if l),
                    params=dict(env),
                )
            )
            return
        stage = self.stages[stage_idx]
        for alt in stage.alternatives:
            viable = True
            for key, want in alt.guard.items():
                if key not in env:
                    raise ProgramStructureError(
                        f"stage {stage.name!r}: guard reads unbound parameter "
                        f"{key!r} (guards may only read parameters assigned by "
                        "earlier stages)"
                    )
                if env[key] != want:
                    viable = False
                    break
            if not viable:
                continue
            conflict = False
            added: list[str] = []
            for key, val in alt.binds.items():
                if key in env:
                    if env[key] != val:
                        conflict = True
                        break
                else:
                    env[key] = val
                    added.append(key)
            if not conflict:
                tasks.extend(alt.tasks)
                labels.append(alt.label)
                self._walk(stage_idx + 1, env, tasks, labels, out, max_paths)
                labels.pop()
                if alt.tasks:
                    del tasks[len(tasks) - len(alt.tasks):]
            for key in added:
                del env[key]

    def enumerate_chains(
        self,
        initial_env: Mapping[str, object] | None = None,
        max_paths: int = DEFAULT_MAX_PATHS,
    ) -> list[TaskChain]:
        """Enumerate every viable path as a concrete task chain.

        Raises :class:`~repro.errors.InvalidJobError` if no path is viable
        and :class:`~repro.errors.ProgramStructureError` on guard misuse or
        path explosion beyond ``max_paths``.
        """
        out: list[TaskChain] = []
        env: dict[str, object] = dict(initial_env or {})
        self._walk(0, env, [], [], out, max_paths)
        if not out:
            raise InvalidJobError(
                f"OR graph {self.name!r} has no viable execution path"
            )
        return out

    @staticmethod
    def from_chains(chains: Sequence[TaskChain], name: str = "") -> "ORGraph":
        """Degenerate OR graph: a single stage choosing among whole chains."""
        alts = tuple(
            Alternative(tasks=c.tasks, label=c.label or f"path{i}")
            for i, c in enumerate(chains)
        )
        return ORGraph((Stage(alts, name="choice"),), name=name)
