"""Task chains — one enumerated execution path of a (possibly tunable) job.

"We restrict our attention to jobs which can be represented as a chain of
tasks" (Section 5.1).  Tasks execute strictly in order; "a task can begin
execution as soon as its immediate predecessor completes" and each task's
deadline "denotes the time by which the task and all its predecessors must
finish" (Section 5.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.errors import InvalidChainError
from repro.model.task import TaskSpec

__all__ = ["TaskChain"]


@dataclass(frozen=True, slots=True)
class TaskChain:
    """An ordered, non-empty sequence of :class:`~repro.model.task.TaskSpec`.

    Attributes
    ----------
    tasks:
        The tasks in execution order.
    label:
        Optional human-readable name for the configuration this chain
        represents (e.g. ``"shape1"`` for the synthetic system, or a
        rendering of the control-parameter assignment for DSL programs).
    params:
        The control-parameter assignment that selects this path, when the
        chain was produced by the tunability preprocessor (Section 4); the
        QoS agent uses it to configure the application after negotiation.
    """

    tasks: tuple[TaskSpec, ...]
    label: str = ""
    params: Mapping[str, object] | None = None

    def __post_init__(self) -> None:
        tasks = tuple(self.tasks)
        object.__setattr__(self, "tasks", tasks)
        if not tasks:
            raise InvalidChainError("a task chain must contain at least one task")
        for t in tasks:
            if not isinstance(t, TaskSpec):
                raise InvalidChainError(f"chain element {t!r} is not a TaskSpec")
        if self.params is not None:
            object.__setattr__(self, "params", dict(self.params))

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[TaskSpec]:
        return iter(self.tasks)

    def __getitem__(self, i: int) -> TaskSpec:
        return self.tasks[i]

    @property
    def total_area(self) -> float:
        """Total processor-time consumed by the chain."""
        return sum(t.area for t in self.tasks)

    @property
    def total_duration(self) -> float:
        """Sum of task durations (minimum possible span with zero gaps)."""
        return sum(t.duration for t in self.tasks)

    @property
    def max_width(self) -> int:
        """Largest processor count requested by any task."""
        return max(t.processors for t in self.tasks)

    @property
    def final_deadline(self) -> float:
        """Relative deadline of the whole chain (last task's deadline)."""
        return self.tasks[-1].deadline

    def prefix_areas(self) -> tuple[float, ...]:
        """Cumulative processor-time after each task.

        Used by the tie-break rule of Section 5.2 ("require fewer total
        resources for some prefix of their tasks").
        """
        areas: list[float] = []
        acc = 0.0
        for t in self.tasks:
            acc += t.area
            areas.append(acc)
        return tuple(areas)

    def effective_deadlines(self) -> tuple[float, ...]:
        """Per-task deadlines tightened by successors.

        A task must finish by its own deadline, but since successors must
        also finish by theirs and take positive time, ``d_i`` is effectively
        ``min(d_i, d_{i+1} - dur_{i+1}, d_{i+2} - dur_{i+1} - dur_{i+2}, ...)``.
        The greedy scheduler does not *need* this tightening for correctness
        (it checks each deadline as it places), but admission tests and the
        EDF baseline use it.
        """
        n = len(self.tasks)
        eff = [t.deadline for t in self.tasks]
        for i in range(n - 2, -1, -1):
            eff[i] = min(eff[i], eff[i + 1] - self.tasks[i + 1].duration)
        return tuple(eff)

    def is_trivially_infeasible(self, capacity: int) -> bool:
        """True if no schedule on ``capacity`` processors can ever fit.

        Checks width against the machine and the zero-gap execution against
        each (effective) deadline — a cheap necessary condition used for
        fast-path rejection.
        """
        if self.max_width > capacity:
            return True
        elapsed = 0.0
        for t, eff in zip(self.tasks, self.effective_deadlines()):
            elapsed += t.duration
            if elapsed > eff + 1e-9:
                return True
        return False

    def describe(self) -> str:
        """One-line rendering: ``label: task1 -> task2 -> ...``."""
        body = " -> ".join(str(t) for t in self.tasks)
        return f"{self.label or 'chain'}: {body}"

    @staticmethod
    def of(tasks: Sequence[TaskSpec], label: str = "") -> "TaskChain":
        """Convenience constructor from any task sequence."""
        return TaskChain(tuple(tasks), label=label)
