"""Output-quality composition.

Section 3.1: "Each task also has an associated output quality ... The
quality value of the execution path is obtained by composing the output
qualities of each of the tasks."  The paper does not fix a composition
operator; for the Section 5 experiments all paths have equal quality so the
choice is moot, but the junction-detection application (and the
``max-quality`` arbitration policy) need a concrete one.  We default to the
*product* — qualities are in ``[0, 1]`` and act like independent retention
factors — and also provide min and (normalized) sum compositions.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Iterable, TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.chain import TaskChain

__all__ = [
    "QualityComposition",
    "compose_product",
    "compose_min",
    "compose_sum",
    "chain_quality",
]


class QualityComposition(Enum):
    """Selector for how per-task qualities combine into a path quality."""

    PRODUCT = "product"
    MIN = "min"
    MEAN = "mean"


def compose_product(qualities: Iterable[float]) -> float:
    """Product composition: independent quality-retention factors."""
    out = 1.0
    seen = False
    for q in qualities:
        seen = True
        out *= q
    if not seen:
        raise ConfigurationError("cannot compose an empty quality sequence")
    return out


def compose_min(qualities: Iterable[float]) -> float:
    """Weakest-link composition: the path is as good as its worst step."""
    vals = list(qualities)
    if not vals:
        raise ConfigurationError("cannot compose an empty quality sequence")
    return min(vals)


def compose_sum(qualities: Iterable[float]) -> float:
    """Arithmetic-mean composition (normalized sum)."""
    vals = list(qualities)
    if not vals:
        raise ConfigurationError("cannot compose an empty quality sequence")
    return math.fsum(vals) / len(vals)


_DISPATCH = {
    QualityComposition.PRODUCT: compose_product,
    QualityComposition.MIN: compose_min,
    QualityComposition.MEAN: compose_sum,
}


def chain_quality(
    chain: "TaskChain",
    composition: QualityComposition = QualityComposition.PRODUCT,
) -> float:
    """Quality value of an execution path under the given composition."""
    fn = _DISPATCH.get(composition)
    if fn is None:  # pragma: no cover - enum is closed
        raise ConfigurationError(f"unknown composition {composition!r}")
    return fn(t.quality for t in chain.tasks)
