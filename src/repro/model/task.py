"""Task specifications.

A :class:`TaskSpec` is one node of a job's task chain: a non-preemptible
unit of parallel work requesting ``processors`` CPUs for ``duration`` time,
to be completed (together with all its chain predecessors) by ``deadline``.
Deadlines here are *relative to the job's release time*; they are resolved
to absolute times when the job is released (see :class:`repro.model.job.Job`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.core.resources import ProcessorTimeRequest
from repro.errors import InvalidTaskError

__all__ = ["TaskSpec"]


@dataclass(frozen=True, slots=True)
class TaskSpec:
    """One non-preemptible parallel task in a chain.

    Attributes
    ----------
    name:
        Human-readable identifier (unique within its chain by convention).
    request:
        The rigid processor-time request (Section 5.1's task "shape").
    deadline:
        Relative deadline: the task and all predecessors must finish within
        this many time units of the job's release.  ``math.inf`` means
        unconstrained.
    quality:
        Output-quality value of this task under this configuration
        (Section 4.2's ``quality`` field).  Composed over the chain by
        :func:`repro.model.quality.chain_quality`.
    max_concurrency:
        Degree of concurrency for the malleable model (Section 5.4) — the
        task may run on any integer processor count in ``[1, max_concurrency]``
        with work-conserving duration scaling.  Defaults to the rigid
        request's processor count.
    """

    name: str
    request: ProcessorTimeRequest
    deadline: float = math.inf
    quality: float = 1.0
    max_concurrency: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidTaskError("task name must be non-empty")
        if math.isnan(self.deadline) or self.deadline <= 0:
            raise InvalidTaskError(
                f"task {self.name!r}: deadline must be positive, got {self.deadline!r}"
            )
        if math.isnan(self.quality) or self.quality < 0:
            raise InvalidTaskError(
                f"task {self.name!r}: quality must be >= 0, got {self.quality!r}"
            )
        if self.max_concurrency == 0:
            object.__setattr__(self, "max_concurrency", self.request.processors)
        if self.max_concurrency < self.request.processors:
            raise InvalidTaskError(
                f"task {self.name!r}: max_concurrency {self.max_concurrency} "
                f"below rigid width {self.request.processors}"
            )

    # Convenience accessors -------------------------------------------------

    @property
    def processors(self) -> int:
        """Rigid processor count of the task."""
        return self.request.processors

    @property
    def duration(self) -> float:
        """Rigid duration of the task."""
        return self.request.duration

    @property
    def area(self) -> float:
        """Processor-time area (total work) of the task."""
        return self.request.area

    def with_deadline(self, deadline: float) -> "TaskSpec":
        """Return a copy with a different relative deadline."""
        return replace(self, deadline=deadline)

    def with_quality(self, quality: float) -> "TaskSpec":
        """Return a copy with a different quality value."""
        return replace(self, quality=quality)

    def reshaped(self, processors: int) -> "TaskSpec":
        """Work-conserving reshape to ``processors`` CPUs (malleable model).

        Raises :class:`~repro.errors.InvalidTaskError` if ``processors``
        exceeds :attr:`max_concurrency`.
        """
        if processors > self.max_concurrency:
            raise InvalidTaskError(
                f"task {self.name!r}: {processors} processors exceeds degree "
                f"of concurrency {self.max_concurrency}"
            )
        return replace(
            self,
            request=self.request.scaled_to(processors),
            max_concurrency=self.max_concurrency,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dl = "inf" if math.isinf(self.deadline) else format(self.deadline, "g")
        return f"{self.name}({self.request}, d<={dl})"
