"""Jobs — possibly-tunable units of arrival, admission and scheduling.

A :class:`Job` carries one or more alternative :class:`~repro.model.chain.TaskChain`
configurations ("For uniformity, we assume that all paths through an OR
graph have been enumerated, so a tunable application is represented by
multiple task chains", Section 5.1) plus its release time.  A *non-tunable*
job is simply a job with a single chain.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

from repro.errors import InvalidJobError
from repro.model.chain import TaskChain
from repro.model.quality import QualityComposition, chain_quality

__all__ = ["Job"]

_job_counter = itertools.count()


def _next_job_id() -> int:
    return next(_job_counter)


@dataclass(frozen=True, slots=True)
class Job:
    """A unit of work released into the system at :attr:`release`.

    Attributes
    ----------
    chains:
        The enumerated alternative execution paths.  One chain = rigid
        (non-tunable) job; several = tunable job.
    release:
        Absolute arrival time; tasks may not start before it and all
        (relative) task deadlines are measured from it.
    job_id:
        Unique integer identity, auto-assigned if not given.
    name:
        Optional human-readable tag (e.g. ``"junction-detect"``).
    """

    chains: tuple[TaskChain, ...]
    release: float = 0.0
    job_id: int = field(default_factory=_next_job_id)
    name: str = ""

    def __post_init__(self) -> None:
        chains = tuple(self.chains)
        object.__setattr__(self, "chains", chains)
        if not chains:
            raise InvalidJobError("a job must offer at least one chain")
        for c in chains:
            if not isinstance(c, TaskChain):
                raise InvalidJobError(f"job chain {c!r} is not a TaskChain")
        if math.isnan(self.release) or math.isinf(self.release):
            raise InvalidJobError(f"release must be finite, got {self.release!r}")

    # ------------------------------------------------------------------

    @property
    def tunable(self) -> bool:
        """True when the job offers more than one execution path."""
        return len(self.chains) > 1

    def __iter__(self) -> Iterator[TaskChain]:
        return iter(self.chains)

    def __len__(self) -> int:
        return len(self.chains)

    def absolute_deadline(self, chain: TaskChain) -> float:
        """Absolute completion deadline of ``chain`` for this job."""
        return self.release + chain.final_deadline

    def best_quality(
        self, composition: QualityComposition = QualityComposition.PRODUCT
    ) -> float:
        """Highest path quality offered by any chain."""
        return max(chain_quality(c, composition) for c in self.chains)

    def released_at(self, release: float) -> "Job":
        """Copy of this job released at a different absolute time.

        Keeps the same ``job_id``; workload generators instead combine a
        template job with fresh ids via :meth:`instantiate`.
        """
        return replace(self, release=release)

    def instantiate(self, release: float, job_id: int | None = None) -> "Job":
        """Fresh arrival of this job template at ``release``.

        Returns a new job with a new identity (or the one provided), sharing
        the immutable chain structure.
        """
        return replace(
            self,
            release=release,
            job_id=_next_job_id() if job_id is None else job_id,
        )

    @staticmethod
    def rigid(chain: TaskChain, release: float = 0.0, name: str = "") -> "Job":
        """Build a non-tunable (single-chain) job."""
        return Job(chains=(chain,), release=release, name=name)

    @staticmethod
    def tunable_of(
        chains: Sequence[TaskChain], release: float = 0.0, name: str = ""
    ) -> "Job":
        """Build a tunable job from several alternative chains."""
        return Job(chains=tuple(chains), release=release, name=name)

    def describe(self) -> str:
        """Multi-line rendering of the job and its alternatives."""
        head = f"job#{self.job_id} {self.name or ''} release={self.release:g}".rstrip()
        lines = [head] + ["  " + c.describe() for c in self.chains]
        return "\n".join(lines)
