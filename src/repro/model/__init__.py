"""Task model: tasks, chains, tunable jobs, and OR task graphs.

Section 5.1 of the paper: a job is a *chain* of non-preemptible tasks, each
with a processor-time resource request and a deadline; a *tunable* job is an
OR task graph whose enumerated paths form multiple alternative chains, "each
with its own resource requirement and deadline profiles, representing
alternate ways in which the application can consume resources in order to
produce outputs with the desired quality".
"""

from repro.model.task import TaskSpec
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.orgraph import Alternative, ORGraph, Stage
from repro.model.quality import (
    QualityComposition,
    compose_min,
    compose_product,
    compose_sum,
    chain_quality,
)

__all__ = [
    "TaskSpec",
    "TaskChain",
    "Job",
    "ORGraph",
    "Stage",
    "Alternative",
    "QualityComposition",
    "compose_min",
    "compose_product",
    "compose_sum",
    "chain_quality",
]
