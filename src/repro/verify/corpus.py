"""The persisted failure/regression corpus: entry schema and replay.

``tests/corpus/`` holds small JSON files that encode verification
scenarios which must stay green forever.  Two kinds exist:

``workload``
    A :class:`~repro.verify.fuzz.FuzzCase` (capacity, model, explicit
    jobs).  Replay runs the *entire* check battery — differential matrix,
    metamorphic relations, auditor, oracle bound — and expects it clean.
    Shrunk fuzz reproducers are persisted in this shape, as are
    hand-minted cases that once exposed (or nearly exposed) a bug.

``sweep``
    One committed experiment point: a serialized
    :class:`~repro.workloads.sweep.SweepConfig` + system name + frozen
    expectations.  Replay re-runs the point with placements retained,
    audits the final schedule, and compares the persisted-form metrics
    against the expectations (exact for counts, 1e-9-relative for
    floats).  These pin the PR 4 figure-5/6 oracle axes and the
    P = 24–36 ``shape1`` deviation documented in EXPERIMENTS.md.

Both the CLI (``--replay-corpus``, ``--audit``) and the parametrized
regression suite (``tests/verify/test_corpus.py``) replay through
:func:`corpus_entry_failures`, so the two can never drift apart.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Mapping

__all__ = ["corpus_entry_failures", "replay_corpus_file", "corpus_files"]


def corpus_files(corpus_dir: str | Path) -> list[Path]:
    """Every corpus entry under ``corpus_dir``, in stable (name) order."""
    return sorted(Path(corpus_dir).glob("*.json"))


def replay_corpus_file(path: str | Path) -> list[str]:
    """Load and replay one corpus file; returns failure descriptions."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable corpus entry ({exc})"]
    return corpus_entry_failures(payload)


def corpus_entry_failures(payload: Mapping[str, object]) -> list[str]:
    """Replay one parsed corpus entry; empty list means still green."""
    kind = payload.get("kind")
    if kind == "workload":
        return _replay_workload(payload)
    if kind == "sweep":
        return _replay_sweep(payload)
    return [f"unknown corpus kind {kind!r}"]


def _replay_workload(payload: Mapping[str, object]) -> list[str]:
    from repro.verify.fuzz import CORPUS_VERSION, FuzzCase, check_case

    if payload.get("version") != CORPUS_VERSION:
        return [f"unsupported workload version {payload.get('version')!r}"]
    try:
        case = FuzzCase.from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        return [f"malformed workload entry ({exc})"]
    return check_case(case)


def _replay_sweep(payload: Mapping[str, object]) -> list[str]:
    from repro.errors import ConfigurationError
    from repro.runner.key import sweep_config_from_dict
    from repro.sim.persistence import metrics_to_dict
    from repro.verify.checks import audited_point

    try:
        config = sweep_config_from_dict(payload["config"])  # type: ignore[arg-type]
        system = str(payload["system"])
    except (KeyError, ConfigurationError) as exc:
        return [f"malformed sweep entry ({exc})"]
    metrics, report = audited_point(config, system)
    failures: list[str] = []
    if not report.ok:
        failures.append(f"audit dirty: {report.summary()}")
    got = metrics_to_dict(metrics)
    expect = payload.get("expect") or {}
    for key, want in expect.items():  # type: ignore[union-attr]
        have = got.get(key)
        if isinstance(want, float) and isinstance(have, float):
            if not math.isclose(have, want, rel_tol=1e-9, abs_tol=1e-12):
                failures.append(f"{key}: expected {want!r}, got {have!r}")
        elif have != want:
            failures.append(f"{key}: expected {want!r}, got {have!r}")
    return failures
