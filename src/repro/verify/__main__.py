"""Command-line front end for the verification tooling.

Examples::

    # 200 random cases through the full differential/metamorphic matrix
    python -m repro.verify --fuzz 200 --seed 7

    # nightly depth, persisting shrunk reproducers into the corpus
    python -m repro.verify --fuzz 5000 --seed 1 --max-jobs 8 \\
        --corpus tests/corpus

    # independently re-validate archived results (runner cache entries or
    # corpus files)
    python -m repro.verify --audit .cache/ab/ab12....json

    # greedy-vs-oracle optimality gap on 200 random small instances
    python -m repro.verify --oracle 200 --seed 11

    # the auditor's own mutation self-test
    python -m repro.verify --selftest

    # replay every persisted corpus entry
    python -m repro.verify --replay-corpus tests/corpus

Exit status 0 when every requested check passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _audit_file(path: Path) -> list[str]:
    """Re-verify one archived artifact; returns failure descriptions.

    Understands two shapes: runner result-cache entries (re-run the unit,
    audit it, compare metrics) and corpus ``workload``/``sweep`` entries
    (run the full check battery / the frozen-expectation replay).
    """
    from repro.verify import corpus_entry_failures

    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    if "metrics" in payload and "meta" in payload:
        from repro.errors import VerificationError
        from repro.runner.key import sweep_config_from_dict
        from repro.sim.persistence import metrics_from_dict
        from repro.verify.checks import verify_unit

        meta = payload["meta"]
        if "config" not in meta or "system" not in meta:
            return [f"{path}: cache entry lacks config/system provenance"]
        try:
            verify_unit(
                sweep_config_from_dict(meta["config"]),
                str(meta["system"]),
                metrics_from_dict(payload["metrics"]),
            )
        except VerificationError as exc:
            return [f"{path}: {exc}"]
        return []
    if payload.get("kind") in ("workload", "sweep"):
        return [f"{path}: {why}" for why in corpus_entry_failures(payload)]
    return [f"{path}: unrecognized artifact (not a cache entry or corpus file)"]


def _run_selftest() -> list[str]:
    """Every seeded mutant must be flagged; the clean baseline must pass."""
    from repro.verify.mutants import audit_scenario, build_all_mutants, clean_baseline

    failures: list[str] = []
    control = clean_baseline()
    codes = audit_scenario(control)
    if codes:
        failures.append(f"clean baseline dirty: {sorted(codes)}")
    scenarios = build_all_mutants()
    caught = 0
    for scenario in scenarios:
        codes = audit_scenario(scenario)
        if scenario.expected_code in codes:
            caught += 1
        else:
            failures.append(
                f"mutant {scenario.name}: expected [{scenario.expected_code}]"
                f", got {sorted(codes) or 'a clean audit'}"
            )
    print(f"selftest: auditor caught {caught}/{len(scenarios)} mutants")
    return failures


def _replay_corpus(corpus_dir: Path) -> list[str]:
    from repro.verify import corpus_entry_failures

    entries = sorted(corpus_dir.glob("*.json"))
    if not entries:
        return [f"no corpus entries under {corpus_dir}"]
    failures: list[str] = []
    for path in entries:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            failures.append(f"{path.name}: unreadable ({exc})")
            continue
        failures += [f"{path.name}: {why}" for why in corpus_entry_failures(payload)]
    print(f"corpus: replayed {len(entries)} entr(ies) from {corpus_dir}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Independent verification: fuzz, audit, oracle, selftest.",
    )
    parser.add_argument(
        "--fuzz", type=int, metavar="N", help="run N random differential cases"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0)"
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=6,
        help="jobs per fuzz case (default 6; nightly uses 8)",
    )
    parser.add_argument(
        "--malleable-share",
        type=float,
        default=0.25,
        help="fraction of fuzz cases using the malleable model",
    )
    parser.add_argument(
        "--corpus",
        metavar="DIR",
        help="persist shrunk fuzz reproducers into DIR",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="keep failing fuzz cases unshrunk (faster triage runs)",
    )
    parser.add_argument(
        "--audit",
        metavar="FILE",
        action="append",
        default=[],
        help="re-verify an archived artifact (cache entry or corpus file); "
        "repeatable",
    )
    parser.add_argument(
        "--oracle",
        type=int,
        metavar="N",
        help="compare greedy vs the exhaustive oracle on N random instances",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the auditor's seeded-mutant self-test",
    )
    parser.add_argument(
        "--replay-corpus",
        metavar="DIR",
        nargs="?",
        const="tests/corpus",
        help="replay every corpus entry (default DIR: tests/corpus)",
    )
    args = parser.parse_args(argv)

    if not any(
        (args.fuzz, args.audit, args.oracle, args.selftest, args.replay_corpus)
    ):
        parser.print_help()
        return 2

    failures: list[str] = []

    if args.selftest:
        failures += _run_selftest()

    if args.fuzz:
        from repro.verify.fuzz import fuzz

        report = fuzz(
            args.fuzz,
            args.seed,
            malleable_share=args.malleable_share,
            max_jobs=args.max_jobs,
            corpus_dir=args.corpus,
            shrink_failures=not args.no_shrink,
        )
        print(report.summary())
        if not report.ok:
            failures.append(
                f"fuzz: {len(report.failures)} failing case(s), see above"
            )

    if args.oracle:
        from repro.verify.checks import greedy_vs_oracle

        gap = greedy_vs_oracle(args.oracle, args.seed)
        print(gap.summary())
        if not gap.ok:
            failures.append("oracle: optimality-bound violations, see above")

    for name in args.audit:
        whys = _audit_file(Path(name))
        if whys:
            failures += whys
        else:
            print(f"audit clean: {name}")

    if args.replay_corpus:
        failures += _replay_corpus(Path(args.replay_corpus))

    if failures:
        print(f"\n{len(failures)} verification failure(s):", file=sys.stderr)
        for why in failures:
            print(f"  {why}", file=sys.stderr)
        return 1
    print("all verification checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
