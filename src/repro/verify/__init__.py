"""Independent verification tooling: auditor, oracle, fuzzer, checks.

This package is the repo's second opinion on its own scheduler.  Nothing in
here shares validation logic with :mod:`repro.core` — see
:doc:`docs/verification.md <../../../docs/verification>` for the invariant
catalogue and workflow, and ``python -m repro.verify --help`` for the CLI.

The auditor and oracle load eagerly (they depend only on the model layer);
the fuzzer and end-to-end checks import the full simulation stack, so they
load lazily on first attribute access to keep ``import repro.verify`` cheap
and cycle-free.
"""

from __future__ import annotations

from repro.verify.auditor import (
    AUDIT_EPS,
    AuditFailure,
    AuditReport,
    ScheduleAuditor,
    Violation,
    audit_schedule,
)
from repro.verify.oracle import (
    OracleLimitError,
    OracleLimits,
    OraclePlacement,
    OracleSolution,
    exhaustive_best,
)

__all__ = [
    "AUDIT_EPS",
    "AuditFailure",
    "AuditReport",
    "ScheduleAuditor",
    "Violation",
    "audit_schedule",
    "OracleLimitError",
    "OracleLimits",
    "OraclePlacement",
    "OracleSolution",
    "exhaustive_best",
    # Lazy (simulation-stack) exports:
    "FuzzCase",
    "FuzzReport",
    "run_fuzz",
    "random_case",
    "run_case",
    "check_case",
    "shrink",
    "persist_failure",
    "load_case",
    "audited_point",
    "verify_unit",
    "GapReport",
    "greedy_vs_oracle",
    "corpus_entry_failures",
    "replay_corpus_file",
    "corpus_files",
]

# name -> (module, attribute).  Note ``run_fuzz``: the campaign driver is
# ``repro.verify.fuzz.fuzz``, but a package attribute named ``fuzz`` is
# unreachable — ``from repro.verify import fuzz`` always binds the
# *submodule* (the import system sets it on the package before
# ``__getattr__`` could ever run), so the function gets a distinct name.
_LAZY = {
    "corpus_entry_failures": ("repro.verify.corpus", "corpus_entry_failures"),
    "replay_corpus_file": ("repro.verify.corpus", "replay_corpus_file"),
    "corpus_files": ("repro.verify.corpus", "corpus_files"),
    "FuzzCase": ("repro.verify.fuzz", "FuzzCase"),
    "FuzzReport": ("repro.verify.fuzz", "FuzzReport"),
    "run_fuzz": ("repro.verify.fuzz", "fuzz"),
    "random_case": ("repro.verify.fuzz", "random_case"),
    "run_case": ("repro.verify.fuzz", "run_case"),
    "check_case": ("repro.verify.fuzz", "check_case"),
    "shrink": ("repro.verify.fuzz", "shrink"),
    "persist_failure": ("repro.verify.fuzz", "persist_failure"),
    "load_case": ("repro.verify.fuzz", "load_case"),
    "audited_point": ("repro.verify.checks", "audited_point"),
    "verify_unit": ("repro.verify.checks", "verify_unit"),
    "GapReport": ("repro.verify.checks", "GapReport"),
    "greedy_vs_oracle": ("repro.verify.checks", "greedy_vs_oracle"),
}


def __getattr__(name: str) -> object:
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module_name, attr = target
    return getattr(importlib.import_module(module_name), attr)
