"""Exhaustive branch-and-bound scheduling oracle for small instances.

The greedy arbitrator decides online and irrevocably; the oracle is its
clairvoyant counterpart: given the *whole* workload up front it finds the
true maximum number of admissible jobs (ties broken toward higher total
path quality), enumerating every OR-path choice and every placement that
could matter.  It exists to measure greedy's optimality gap and to give the
fuzzer a ground truth on random instances — so it deliberately shares no
search code with :mod:`repro.core`: placements are enumerated over an
explicit candidate-time grid and feasibility is checked by the oracle's own
usage timeline.

Why a finite grid is exact
--------------------------
Take any feasible schedule for a fixed set of chains and repeatedly
*left-shift* each task to the smallest feasible start (holding the others
fixed).  A task that cannot move left is pinned either at its chain-earliest
time (job release or predecessor finish) or at the end of some other task —
otherwise the capacity function is unchanged in a small left neighbourhood
and the task could shift.  Iterating terminates (starts only decrease and
live on a finite lattice), so some optimal schedule has every start of the
form ``release_j + (sum of a subset of task durations)``: each start chains
through "ends at" relations that bottom out at a release, and no task
repeats in such a chain (starts strictly decrease along it).  The oracle
therefore enumerates starts from the *subset-sum closure*
``{release} ⊕ subset-sums of all candidate task durations`` clipped to each
task's feasible window — a superset of the pinned starts, hence exact.

The closure can explode for adversarial durations; :data:`OracleLimits`
bounds grid size and search nodes, and :class:`OracleLimitError` reports an
instance as *out of scope* rather than silently truncating the search.
Intended scale is ≤ ~8 jobs with a handful of tasks each (the fuzz and
regression suites stay well inside that).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ReproError
from repro.model.job import Job
from repro.model.quality import QualityComposition, chain_quality

__all__ = [
    "OracleLimits",
    "OracleLimitError",
    "OraclePlacement",
    "OracleSolution",
    "exhaustive_best",
]


class OracleLimitError(ReproError):
    """The instance exceeds the oracle's enumeration budget."""


@dataclass(frozen=True, slots=True)
class OracleLimits:
    """Enumeration budget: instance size, grid size, search nodes."""

    max_jobs: int = 8
    max_grid: int = 4096
    max_nodes: int = 2_000_000


@dataclass(frozen=True, slots=True)
class OraclePlacement:
    """One task pinned by the oracle: ``(job_id, task index, start, ...)``."""

    job_id: int
    chain_index: int
    task_index: int
    task_name: str
    start: float
    end: float
    processors: int


@dataclass(frozen=True, slots=True)
class OracleSolution:
    """The oracle's verdict on one instance.

    ``admitted`` maps admitted ``job_id`` to the chosen chain index;
    ``placements`` realize that admission (auditor-checkably).
    """

    admitted: dict[int, int]
    placements: tuple[OraclePlacement, ...]
    total_quality: float
    nodes_explored: int

    @property
    def admitted_count(self) -> int:
        """Size of the optimal admitted set."""
        return len(self.admitted)


# ---------------------------------------------------------------------------
# The oracle's own capacity timeline (independent of core.profile)
# ---------------------------------------------------------------------------


class _Timeline:
    """Piecewise-constant processor usage supporting add/remove/fits.

    A deliberately simple breakpoint list — correctness over speed; the
    oracle's instances are tiny.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._times: list[float] = [0.0]
        self._usage: list[int] = [0]

    def _split(self, t: float) -> int:
        """Ensure a breakpoint at ``t``; return its index."""
        i = bisect_left(self._times, t)
        if i < len(self._times) and self._times[i] == t:
            return i
        insort(self._times, t)
        self._usage.insert(i, self._usage[i - 1] if i > 0 else 0)
        return i

    def fits(self, start: float, end: float, processors: int) -> bool:
        """True when ``processors`` more CPUs are free over ``[start, end)``."""
        if start < 0:
            return False
        # Segment containing ``start`` (usage is constant per segment), then
        # every segment beginning before ``end``.
        i = max(bisect_right(self._times, start) - 1, 0)
        while i < len(self._times) and self._times[i] < end:
            if self._usage[i] + processors > self.capacity:
                return False
            i += 1
        return True

    def add(self, start: float, end: float, processors: int) -> None:
        lo = self._split(start)
        hi = self._split(end)
        for i in range(lo, hi):
            self._usage[i] += processors

    def remove(self, start: float, end: float, processors: int) -> None:
        lo = self._split(start)
        hi = self._split(end)
        for i in range(lo, hi):
            self._usage[i] -= processors


# ---------------------------------------------------------------------------
# Candidate-time grid
# ---------------------------------------------------------------------------


def _candidate_grid(
    jobs: Sequence[Job], horizon: float, max_grid: int
) -> list[float]:
    """Releases ⊕ subset-sum closure of every candidate task duration.

    Clipped to ``[0, horizon]``; raises :class:`OracleLimitError` when the
    closure outgrows ``max_grid`` (the durations don't collapse onto a
    small lattice, so exhaustive search is out of scope).
    """
    durations: set[float] = set()
    releases: set[float] = {job.release for job in jobs}
    for job in jobs:
        for chain in job.chains:
            for task in chain.tasks:
                durations.add(task.duration)
    sums: set[float] = {0.0}
    span = horizon - min(releases, default=0.0)
    for job in jobs:
        for chain in job.chains:
            for task in chain.tasks:
                new = {s + task.duration for s in sums if s + task.duration <= span}
                sums |= new
                if len(sums) * len(releases) > max_grid:
                    raise OracleLimitError(
                        f"candidate grid exceeds {max_grid} points; durations "
                        "do not collapse onto a small lattice"
                    )
    grid = {r + s for r in releases for s in sums}
    return sorted(t for t in grid if t <= horizon)


def _instance_horizon(jobs: Sequence[Job]) -> float:
    """Upper bound on every start that could matter.

    Finite-deadline work is bounded by the latest absolute deadline.  For
    unconstrained chains, any left-shifted start is a release plus a sum of
    distinct task durations, so the latest release plus every job's longest
    chain serialized bounds it (and guarantees deadline-free jobs find the
    always-feasible "run after everything" placement in the grid).
    """
    horizon = 0.0
    serial_tail = 0.0
    last_release = 0.0
    for job in jobs:
        last_release = max(last_release, job.release)
        serial_tail += max(chain.total_duration for chain in job.chains)
        for chain in job.chains:
            due = job.absolute_deadline(chain)
            if math.isfinite(due):
                horizon = max(horizon, due)
    return max(horizon, last_release + serial_tail)


# ---------------------------------------------------------------------------
# Branch and bound
# ---------------------------------------------------------------------------


@dataclass
class _Search:
    jobs: Sequence[Job]
    grid: list[float]
    timeline: _Timeline
    limits: OracleLimits
    composition: QualityComposition
    nodes: int = 0
    best_count: int = -1
    best_quality: float = -math.inf
    best: tuple[dict[int, int], list[OraclePlacement]] = field(
        default_factory=lambda: ({}, [])
    )
    _chosen: list[OraclePlacement] = field(default_factory=list)
    _admitted: dict[int, int] = field(default_factory=dict)
    _quality: float = 0.0

    def run(self) -> OracleSolution:
        self._branch_job(0)
        admitted, placements = self.best
        return OracleSolution(
            admitted=dict(admitted),
            placements=tuple(placements),
            total_quality=self.best_quality if self.best_count >= 0 else 0.0,
            nodes_explored=self.nodes,
        )

    # -- job level ------------------------------------------------------

    def _tick(self) -> None:
        self.nodes += 1
        if self.nodes > self.limits.max_nodes:
            raise OracleLimitError(
                f"search exceeded {self.limits.max_nodes} nodes"
            )

    def _record_if_best(self) -> None:
        count = len(self._admitted)
        if count > self.best_count or (
            count == self.best_count and self._quality > self.best_quality
        ):
            self.best_count = count
            self.best_quality = self._quality
            self.best = (dict(self._admitted), list(self._chosen))

    def _branch_job(self, index: int) -> None:
        self._tick()
        if index == len(self.jobs):
            self._record_if_best()
            return
        # Bound: even admitting every remaining job cannot beat the best.
        optimistic = len(self._admitted) + (len(self.jobs) - index)
        if optimistic < self.best_count:
            return
        job = self.jobs[index]
        for chain_index, chain in enumerate(job.chains):
            q = chain_quality(chain, self.composition)
            self._admitted[job.job_id] = chain_index
            self._quality += q
            self._branch_task(index, chain_index, 0, job.release)
            self._quality -= q
            del self._admitted[job.job_id]
        # Reject branch.  Tried last: admitting is never worse for the
        # bound, so good solutions are found early and prune harder.
        self._branch_job(index + 1)

    # -- task level -----------------------------------------------------

    def _branch_task(
        self, job_index: int, chain_index: int, task_index: int, earliest: float
    ) -> None:
        job = self.jobs[job_index]
        chain = job.chains[chain_index]
        if task_index == len(chain.tasks):
            self._branch_job(job_index + 1)
            return
        task = chain.tasks[task_index]
        due = job.release + task.deadline
        latest_start = due - task.duration
        if latest_start < earliest - 1e-9:
            return
        lo = bisect_left(self.grid, earliest - 1e-12)
        for gi in range(lo, len(self.grid)):
            start = self.grid[gi]
            if start > latest_start + 1e-12:
                break
            end = start + task.duration
            self._tick()
            if not self.timeline.fits(start, end, task.processors):
                continue
            self.timeline.add(start, end, task.processors)
            self._chosen.append(
                OraclePlacement(
                    job_id=job.job_id,
                    chain_index=chain_index,
                    task_index=task_index,
                    task_name=task.name,
                    start=start,
                    end=end,
                    processors=task.processors,
                )
            )
            self._branch_task(job_index, chain_index, task_index + 1, end)
            self._chosen.pop()
            self.timeline.remove(start, end, task.processors)


def exhaustive_best(
    jobs: Sequence[Job],
    capacity: int,
    limits: OracleLimits | None = None,
    composition: QualityComposition = QualityComposition.PRODUCT,
) -> OracleSolution:
    """Optimal admitted set for ``jobs`` on a ``capacity``-processor machine.

    Maximizes the number of admitted jobs; among equal counts, maximizes
    total path quality.  Rigid task model (the malleable model multiplies
    the placement space per task and is out of the oracle's scope).  Raises
    :class:`OracleLimitError` when the instance exceeds ``limits``.
    """
    limits = limits or OracleLimits()
    if len(jobs) > limits.max_jobs:
        raise OracleLimitError(
            f"{len(jobs)} jobs exceeds the oracle's {limits.max_jobs}-job scope"
        )
    horizon = _instance_horizon(jobs)
    grid = _candidate_grid(jobs, horizon, limits.max_grid)
    search = _Search(
        jobs=list(jobs),
        grid=grid,
        timeline=_Timeline(capacity),
        limits=limits,
        composition=composition,
    )
    return search.run()
