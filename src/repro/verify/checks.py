"""End-to-end verification checks over real experiment configurations.

Three consumers share this module:

* the CLI (``python -m repro.verify``) audits committed experiment points
  and measures greedy's optimality gap against the exhaustive oracle;
* :class:`repro.runner.ExperimentRunner`'s opt-in post-check
  (``RunnerConfig(audit=True)``) re-runs each unit through
  :func:`audited_point` and raises
  :class:`~repro.errors.VerificationError` when the audited re-run
  disagrees with the reported metrics or the audit is dirty;
* the test suite replays both paths on the committed figure configs.

:func:`audited_point` mirrors :func:`repro.workloads.sweep.run_point`
exactly except that placements are retained and every offered job is
recorded, so the independent auditor can re-validate the final schedule
against the actual job definitions.  Fault-free runs audit strictly;
perturbed runs audit with the relaxations the resilience model requires
(tail-rollback stubs stay reserved, re-planned chains are rebased).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.arbitrator import QoSArbitrator
from repro.core.placement import ChainPlacement, Placement
from repro.errors import VerificationError
from repro.model.job import Job
from repro.resilience.events import PerturbationTrace, generate_trace
from repro.resilience.simulator import simulate_resilient
from repro.sim.arrivals import PoissonArrivals
from repro.sim.metrics import RunMetrics
from repro.sim.persistence import metrics_to_dict
from repro.sim.rng import RandomStreams
from repro.sim.simulator import simulate_arrivals
from repro.verify.auditor import AuditReport, ScheduleAuditor
from repro.verify.oracle import (
    OracleLimitError,
    OracleLimits,
    OracleSolution,
    exhaustive_best,
)
from repro.workloads.sweep import SweepConfig, _job_factory

__all__ = [
    "audited_point",
    "verify_unit",
    "verify_replay",
    "GapReport",
    "greedy_vs_oracle",
    "oracle_chain_placements",
]


def audited_point(
    config: SweepConfig, system: str
) -> tuple[RunMetrics, AuditReport]:
    """Re-run one sweep unit with placements retained; audit the outcome.

    Returns the run's metrics (computed identically to
    :func:`~repro.workloads.sweep.run_point` — retaining placements does
    not perturb any reported number) together with the independent audit
    of the final schedule.
    """
    streams = RandomStreams(config.seed)
    process = PoissonArrivals(config.interval, streams)
    base_factory = _job_factory(config, system)
    offered: list[Job] = []

    def recording_factory(i: int, release: float) -> Job:
        job = base_factory(i, release)
        offered.append(job)
        return job

    perturbed = config.faults is not None and not config.faults.empty
    arbitrator = QoSArbitrator(
        config.processors,
        malleable=config.malleable,
        strategy=config.strategy,
        policy=config.policy,
        backend=config.backend,
        prune=config.prune,
        keep_placements=True,
    )
    engine = config.reconfig_engine()
    if perturbed or engine is not None:
        arrivals = list(process.times(config.n_jobs))
        if perturbed:
            horizon = (arrivals[-1] if arrivals else 0.0) + config.params.d2
            trace = generate_trace(
                config.faults,
                streams,
                horizon=horizon,
                base_capacity=config.processors,
                n_arrivals=config.n_jobs,
            )
        else:
            trace = PerturbationTrace()
        metrics = simulate_resilient(
            arbitrator,
            recording_factory,
            arrivals,
            trace,
            verify=config.verify,
            reconfig=engine,
        )
        # Renegotiated schedules legitimately diverge from the plain
        # commit/rollback ledger: consumed stubs stay accounted, re-planned
        # chains are rebased remainders of offered ones, and carried
        # placements keep pre-change intervals from the previous machine
        # size (hence ``since``: capacity is judged from the final
        # schedule's origin onward).
        auditor = ScheduleAuditor(
            malleable=config.malleable,
            match_config=False,
            ledger=False,
            profile_mode="bound",
            since=arbitrator.schedule.profile.origin,
        )
    else:
        metrics = simulate_arrivals(
            arbitrator,
            recording_factory,
            process,
            config.n_jobs,
            verify=config.verify,
        )
        auditor = ScheduleAuditor(malleable=config.malleable)
    report = auditor.audit(arbitrator.schedule, offered)
    if engine is not None and engine.records:
        resize_report = auditor.audit_resizes(engine.records)
        report = AuditReport(
            violations=report.violations + resize_report.violations,
            checked_placements=report.checked_placements
            + resize_report.checked_placements,
            checked_slices=report.checked_slices,
        )
    return metrics, report


def _comparable(metrics: RunMetrics) -> dict[str, object]:
    """NaN-safe persisted form: the exact fields two runs must agree on."""
    return metrics_to_dict(metrics)


def verify_unit(
    config: SweepConfig, system: str, reported: RunMetrics
) -> AuditReport:
    """Audit one unit and cross-check ``reported`` against a fresh run.

    Raises :class:`~repro.errors.VerificationError` when the audited
    re-run's metrics differ from what was reported (a lying cache, a
    diverging worker, a placement-retention side channel) or when the
    audit itself finds violations.  Returns the (clean) audit report.
    """
    recomputed, report = audited_point(config, system)
    if not report.ok:
        raise VerificationError(
            f"unit ({system}) failed its audit:\n{report.summary()}"
        )
    got, want = _comparable(recomputed), _comparable(reported)
    if got != want:
        diffs = [
            f"  {key}: reported {want.get(key)!r}, audited re-run {got.get(key)!r}"
            for key in sorted(set(got) | set(want))
            if got.get(key) != want.get(key)
        ]
        raise VerificationError(
            f"unit ({system}) metrics mismatch vs audited re-run:\n"
            + "\n".join(diffs)
        )
    return report


# ---------------------------------------------------------------------------
# Crash-recovery replay verification (used by repro.service.recovery)
# ---------------------------------------------------------------------------


def _decision_fingerprint(decision) -> tuple:
    """Bit-exact ``(admitted, chain_index, ((start, width, duration), ...))``.

    Kept local (rather than importing :mod:`repro.service.wal`'s identical
    helper) so the verify layer stays import-independent of the subsystem
    it judges.
    """
    if decision.admitted and decision.placement is not None:
        cp = decision.placement
        return (
            True,
            cp.chain_index,
            tuple((p.start, p.processors, p.duration) for p in cp.placements),
        )
    return (False, None, ())


def verify_replay(
    arbitrator: QoSArbitrator,
    jobs: "list[Job]",
    expected: "list[tuple | None]",
    *,
    malleable: bool = False,
    strict: bool = True,
):
    """Serially replay ``jobs`` through a *fresh* arbitrator and judge it.

    The crash-recovery contract: re-offering the WAL's effective jobs, in
    ledger order, to an identically configured arbitrator must reproduce
    every logged decision **bit-identically** (``expected[i]`` is the
    logged fingerprint, or ``None`` for an entry the crash left undecided
    — those are decided now and simply reported back).  The recovered
    schedule is then audited by the independent
    :class:`~repro.verify.auditor.ScheduleAuditor`.

    Returns ``(decisions, report)``; with ``strict`` (the default) any
    fingerprint mismatch or audit violation raises
    :class:`~repro.errors.VerificationError` — recovery must never hand
    back a schedule it cannot prove is the pre-crash one.
    """
    if len(jobs) != len(expected):
        raise VerificationError(
            f"replay: {len(jobs)} jobs but {len(expected)} expected decisions"
        )
    decisions = []
    mismatches: list[str] = []
    for index, (job, want) in enumerate(zip(jobs, expected)):
        decision = arbitrator.submit(job)
        decisions.append(decision)
        if want is not None:
            got = _decision_fingerprint(decision)
            if tuple(got) != tuple(want):
                mismatches.append(
                    f"  entry {index} (job {job.job_id!r}): logged {want!r}, "
                    f"replayed {got!r}"
                )
    if mismatches and strict:
        raise VerificationError(
            "WAL replay diverged from the logged ledger — recovered state "
            "is NOT the pre-crash schedule:\n" + "\n".join(mismatches)
        )
    report = ScheduleAuditor(malleable=malleable).audit(
        arbitrator.schedule, list(jobs)
    )
    if not report.ok and strict:
        raise VerificationError(
            "recovered schedule failed its independent audit:\n"
            + report.summary()
        )
    return decisions, report


# ---------------------------------------------------------------------------
# Oracle vs greedy
# ---------------------------------------------------------------------------


def oracle_chain_placements(
    solution: OracleSolution, jobs: list[Job]
) -> list[ChainPlacement]:
    """Rebuild auditor-checkable chain placements from an oracle solution."""
    by_id = {job.job_id: job for job in jobs}
    out: list[ChainPlacement] = []
    for job_id, chain_index in solution.admitted.items():
        job = by_id[job_id]
        chain = job.chains[chain_index]
        mine = sorted(
            (p for p in solution.placements if p.job_id == job_id),
            key=lambda p: p.task_index,
        )
        out.append(
            ChainPlacement(
                job_id=job_id,
                chain_index=chain_index,
                chain=chain,
                placements=tuple(
                    Placement(
                        chain.tasks[p.task_index],
                        p.start,
                        p.processors,
                        p.end - p.start,
                    )
                    for p in mine
                ),
                release=job.release,
            )
        )
    return out


@dataclass(frozen=True, slots=True)
class GapReport:
    """Greedy-vs-oracle outcome over a batch of random instances."""

    instances: int
    compared: int
    skipped: int  # oracle out of budget
    exact: int  # greedy matched the optimum
    max_gap: int
    mean_gap: float
    failures: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when no instance violated the optimality bound."""
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"oracle-vs-greedy: {self.compared}/{self.instances} instances "
            f"compared ({self.skipped} beyond oracle budget)",
            f"  greedy exact on {self.exact}/{self.compared}; "
            f"max gap {self.max_gap} job(s), mean gap {self.mean_gap:.3f}",
        ]
        lines += [f"  FAILURE: {f}" for f in self.failures]
        return "\n".join(lines)


def greedy_vs_oracle(
    instances: int,
    seed: int,
    *,
    max_jobs: int = 5,
    limits: OracleLimits | None = None,
) -> GapReport:
    """Compare greedy admission with the exhaustive optimum.

    For each random rigid instance: greedy must never admit more jobs than
    the oracle (that would prove one of them wrong), and the oracle's own
    placements must pass the independent auditor.  Gap statistics measure
    how far greedy's online decisions fall short of clairvoyance.
    """
    import random

    from repro.verify.fuzz import random_case, run_case

    limits = limits or OracleLimits(max_nodes=400_000)
    rng = random.Random(seed)
    compared = skipped = exact = 0
    max_gap, gap_sum = 0, 0
    failures: list[str] = []
    for index in range(instances):
        case = random_case(rng, max_jobs=max_jobs, malleable=False)
        try:
            solution = exhaustive_best(list(case.jobs), case.capacity, limits)
        except OracleLimitError:
            skipped += 1
            continue
        compared += 1
        (decisions, _), _audit = run_case(case, audit=False)
        greedy_admitted = sum(1 for d in decisions if d[0])
        gap = solution.admitted_count - greedy_admitted
        if gap < 0:
            failures.append(
                f"instance {index} (case {case.case_id}): greedy admitted "
                f"{greedy_admitted} > optimum {solution.admitted_count}"
            )
            continue
        if gap == 0:
            exact += 1
        max_gap = max(max_gap, gap)
        gap_sum += gap
        oracle_report = ScheduleAuditor().audit_placements(
            oracle_chain_placements(solution, list(case.jobs)),
            case.capacity,
            list(case.jobs),
        )
        if not oracle_report.ok:
            failures.append(
                f"instance {index} (case {case.case_id}): oracle schedule "
                f"failed audit: {oracle_report.summary()}"
            )
    return GapReport(
        instances=instances,
        compared=compared,
        skipped=skipped,
        exact=exact,
        max_gap=max_gap,
        mean_gap=(gap_sum / compared) if compared else math.nan,
        failures=tuple(failures),
    )
