"""The independent schedule auditor.

Every throughput/utilization claim in this repo rests on the admitted
schedules being *valid*: non-preemptive tasks inside their reservations,
chain precedence respected, machine capacity never exceeded, every admitted
job finishing by its deadline (paper §5.1–5.2).  The scheduler stack
(:mod:`repro.core.profile`, :mod:`repro.core.schedule`) checks itself, but a
self-check shares failure modes with the code it checks.  This module is the
second opinion: :class:`ScheduleAuditor` re-derives every invariant **from
the committed placement records and the job definitions alone**, using its
own sweep-line arithmetic — it deliberately shares *no validation logic*
with the profile or the schedule (no ``earliest_fit``, no
``AvailabilityProfile`` queries inside the capacity check, no
``ChainPlacement.validate``).  The only thing it reads from the audited
objects is their data: placements, ledger counters, profile segments.

Invariant catalogue (violation ``code`` values)
-----------------------------------------------

================== =========================================================
``shape.count``     placement count differs from chain length
``shape.task``      placement's task is not the chain's task at that index
``shape.width``     rigid placement width differs from the task request
``shape.duration``  rigid placement duration differs from the task request
``shape.malleable`` malleable placement violates work conservation or
                    exceeds the task's degree of concurrency
``config``          the placed chain is not one of the job's offered chains
``release``         a task starts before its job's release
``precedence``      a task starts before its predecessor finishes
``deadline``        a task finishes after ``release + task.deadline``
``capacity``        summed widths exceed machine capacity in some time slice
``profile``         the availability profile disagrees with the busy-time
                    implied by the committed placements
``ledger.jobs``     ``committed_jobs`` differs from the placement count
``ledger.area``     ``committed_area`` differs from the summed placement area
``ledger.window``   ``first_release``/``last_finish`` are stale
``ledger.util``     ``utilization()`` differs from the recomputed quotient
``resize.area``     a resized task's restarted placement is not
                    work-conserving for the task's full declared area
``resize.overlap``  a resized task restarts before the resize instant plus
                    the charged reconfiguration delay (it would overlap the
                    completed/consumed prefix it is replacing)
``resize.width``    a resize leaves the declared width band, or its
                    direction contradicts its kind (a "grow" that narrows,
                    a "shrink" that widens, or a no-op width)
================== =========================================================

Tolerances: the auditor uses its own epsilon (:data:`AUDIT_EPS`, equal in
value to the scheduler's ``TIME_EPS`` but defined here so a change in one
cannot silently mask bugs in the other).  Capacity violations are reported
only for slices wider than the epsilon, so exact-boundary handoffs
(``end == next start``) never false-positive while any real overlap —
including the classic off-by-one-epsilon reservation — is flagged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime dependency
    from repro.core.placement import ChainPlacement
    from repro.core.schedule import Schedule
    from repro.model.job import Job

__all__ = [
    "AUDIT_EPS",
    "Violation",
    "AuditReport",
    "ScheduleAuditor",
    "audit_schedule",
]

#: The auditor's own time tolerance.  Numerically equal to the scheduler's
#: ``TIME_EPS`` on purpose (both describe the same virtual-time arithmetic),
#: but defined independently: importing the scheduler's constant would let a
#: loosened scheduler tolerance loosen the audit with it.
AUDIT_EPS: float = 1e-9

#: Relative tolerance for area/utilization ledger arithmetic (sums of many
#: float products accumulate more error than single comparisons).
_AREA_RTOL: float = 1e-9


class AuditFailure(AssertionError):
    """Raised by :meth:`AuditReport.raise_if_violations` on a dirty audit."""


@dataclass(frozen=True, slots=True)
class Violation:
    """One broken invariant, locatable and machine-checkable.

    Attributes
    ----------
    code:
        Invariant identifier from the module-level catalogue.
    job_id:
        Offending job, or ``-1`` for schedule-level violations.
    task:
        Offending task name, or ``""``.
    time:
        The relevant virtual-time instant (``nan`` for non-temporal checks).
    detail:
        Human-readable explanation with the observed and expected values.
    """

    code: str
    job_id: int = -1
    task: str = ""
    time: float = math.nan
    detail: str = ""

    def __str__(self) -> str:
        where = f"job {self.job_id}" if self.job_id >= 0 else "schedule"
        if self.task:
            where += f"/{self.task}"
        at = "" if math.isnan(self.time) else f" @t={self.time:g}"
        return f"[{self.code}] {where}{at}: {self.detail}"


@dataclass(frozen=True, slots=True)
class AuditReport:
    """Outcome of one audit: the violations found (empty = clean)."""

    violations: tuple[Violation, ...] = ()
    checked_placements: int = 0
    checked_slices: int = 0

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    @property
    def codes(self) -> set[str]:
        """The distinct violation codes present."""
        return {v.code for v in self.violations}

    def summary(self) -> str:
        """Multi-line rendering for CLI / error messages."""
        if self.ok:
            return (
                f"audit clean: {self.checked_placements} placements, "
                f"{self.checked_slices} capacity slices"
            )
        lines = [f"audit found {len(self.violations)} violation(s):"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)

    def raise_if_violations(self) -> None:
        """Raise :class:`AuditFailure` when the audit is dirty."""
        if not self.ok:
            raise AuditFailure(self.summary())


@dataclass
class _Interval:
    """One audited allocation: job, task index, extent.  Internal."""

    job_id: int
    task_name: str
    start: float
    end: float
    processors: int


@dataclass
class ScheduleAuditor:
    """Re-validates committed schedules from first principles.

    Parameters
    ----------
    eps:
        Time tolerance (default :data:`AUDIT_EPS`).
    malleable:
        Placement/shape rule: ``False`` demands the rigid request exactly;
        ``True`` demands work conservation within the task's degree of
        concurrency (§5.4).
    match_config:
        Check that each placed chain is one of its job's offered chains
        (needs ``jobs``).  Turn off when auditing renegotiated schedules,
        whose chains are legitimately rebased remainders.
    ledger:
        Check the schedule's aggregate accounting (area, job count,
        utilization window).  Only exact for schedules built by plain
        commit/rollback; tail-rollbacks and carried placements intentionally
        diverge (consumed stubs stay accounted), so the resilience hooks
        disable this.
    profile_mode:
        ``"strict"``: profile availability must *equal* capacity minus the
        placement-implied busy time at every breakpoint at/after the profile
        origin.  ``"bound"``: availability must not *exceed* it (valid even
        after tail-rollbacks, which leave consumed stubs reserved with no
        retained placement).  ``"off"``: skip the cross-check.
    since:
        When set, the capacity sweep ignores allocation before this time.
        Needed for schedules rebuilt at a capacity change: placements
        carried across it retain their full interval list, but the
        pre-change portion ran on the *previous* machine size and must not
        be judged against the current one.  Per-chain checks (release,
        precedence, deadline, shape) still cover the whole placement.
    """

    eps: float = AUDIT_EPS
    malleable: bool = False
    match_config: bool = True
    ledger: bool = True
    profile_mode: str = "strict"
    since: float | None = None
    _violations: list[Violation] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def audit(
        self,
        schedule: "Schedule",
        jobs: "Sequence[Job] | Mapping[int, Job] | None" = None,
    ) -> AuditReport:
        """Audit a live :class:`~repro.core.schedule.Schedule`.

        ``jobs`` (optional) enables the configuration-match check: a
        sequence or ``job_id``-keyed mapping of the jobs that were offered.
        When the schedule does not retain placements
        (``keep_placements=False``) only the profile's internal range check
        is possible and the report says so via ``checked_placements == 0``.
        """
        self._violations = []
        placements = schedule.placements
        by_id = self._job_index(jobs)
        for cp in placements:
            self._audit_chain(cp, by_id)
        slices = self._audit_capacity(
            self._intervals(placements), schedule.capacity
        )
        self._audit_profile(schedule, placements)
        if self.ledger and schedule.keeps_placements:
            self._audit_ledger(schedule, placements)
        return AuditReport(
            violations=tuple(self._violations),
            checked_placements=len(placements),
            checked_slices=slices,
        )

    def audit_placements(
        self,
        placements: "Iterable[ChainPlacement]",
        capacity: int,
        jobs: "Sequence[Job] | Mapping[int, Job] | None" = None,
    ) -> AuditReport:
        """Audit bare chain placements against ``capacity`` (no ledger/profile).

        The entry point for oracle output and for fabricated mutant
        scenarios that never touch a real :class:`Schedule`.
        """
        self._violations = []
        placements = list(placements)
        by_id = self._job_index(jobs)
        for cp in placements:
            self._audit_chain(cp, by_id)
        slices = self._audit_capacity(self._intervals(placements), capacity)
        return AuditReport(
            violations=tuple(self._violations),
            checked_placements=len(placements),
            checked_slices=slices,
        )

    def audit_resizes(self, records: "Iterable[object]") -> AuditReport:
        """Audit a mid-execution resize stream (``ResizeRecord`` objects).

        Re-derives the grow/shrink invariants from each record's data alone
        (see :class:`repro.resilience.reconfig.ResizeRecord`; any object
        with the same attributes audits identically):

        * **area conservation under the cost charge** (``resize.area``):
          the restarted placement must carry the task's *full* declared
          work — restart-from-scratch means no credit for the consumed
          partial run, and the reconfiguration delay must never be paid
          for by shrinking the restarted area;
        * **no overlap with the consumed prefix** (``resize.overlap``):
          the restart may begin no earlier than the resize instant plus
          the charged delay (and the delay itself must be non-negative);
        * **width discipline** (``resize.width``): the new width stays in
          the declared ``[min_width, max_width]`` band and moves in the
          direction the record claims (a grow widens, a shrink narrows).
        """
        self._violations = []
        checked = 0
        for rec in records:
            checked += 1
            job_id = rec.job_id
            task = rec.task
            new_area = rec.new_width * rec.new_duration
            if abs(new_area - rec.task_area) > _AREA_RTOL * max(
                1.0, rec.task_area
            ):
                self._flag(
                    "resize.area",
                    f"restarted placement carries {new_area:g} "
                    f"processor-time, task declares {rec.task_area:g}",
                    job_id,
                    task,
                    rec.time,
                )
            if rec.delay < 0:
                self._flag(
                    "resize.overlap",
                    f"negative reconfiguration delay {rec.delay:g}",
                    job_id,
                    task,
                    rec.time,
                )
            if rec.new_start < rec.time + rec.delay - self.eps:
                self._flag(
                    "resize.overlap",
                    f"restart at {rec.new_start:g} precedes resize time "
                    f"{rec.time:g} + delay {rec.delay:g}",
                    job_id,
                    task,
                    rec.new_start,
                )
            if not rec.min_width <= rec.new_width <= rec.max_width:
                self._flag(
                    "resize.width",
                    f"new width {rec.new_width}p outside "
                    f"[{rec.min_width}, {rec.max_width}]",
                    job_id,
                    task,
                    rec.time,
                )
            if rec.kind == "grow" and rec.new_width <= rec.old_width:
                self._flag(
                    "resize.width",
                    f"grow from {rec.old_width}p to {rec.new_width}p "
                    "does not widen",
                    job_id,
                    task,
                    rec.time,
                )
            elif rec.kind == "shrink" and rec.new_width >= rec.old_width:
                self._flag(
                    "resize.width",
                    f"shrink from {rec.old_width}p to {rec.new_width}p "
                    "does not narrow",
                    job_id,
                    task,
                    rec.time,
                )
        return AuditReport(
            violations=tuple(self._violations),
            checked_placements=checked,
        )

    # ------------------------------------------------------------------
    # Per-chain checks: shape, config, release, precedence, deadline
    # ------------------------------------------------------------------

    @staticmethod
    def _job_index(
        jobs: "Sequence[Job] | Mapping[int, Job] | None",
    ) -> "Mapping[int, Job] | None":
        if jobs is None:
            return None
        if isinstance(jobs, Mapping):
            return jobs
        return {j.job_id: j for j in jobs}

    def _flag(
        self,
        code: str,
        detail: str,
        job_id: int = -1,
        task: str = "",
        time: float = math.nan,
    ) -> None:
        self._violations.append(Violation(code, job_id, task, time, detail))

    def _audit_chain(
        self, cp: "ChainPlacement", jobs: "Mapping[int, Job] | None"
    ) -> None:
        chain = cp.chain
        if len(cp.placements) != len(chain.tasks):
            self._flag(
                "shape.count",
                f"{len(cp.placements)} placements for a "
                f"{len(chain.tasks)}-task chain",
                cp.job_id,
            )
            return
        if self.match_config and jobs is not None:
            job = jobs.get(cp.job_id)
            if job is not None and not any(chain == c for c in job.chains):
                self._flag(
                    "config",
                    f"placed chain {chain.label or cp.chain_index!r} is not "
                    f"among the job's {len(job.chains)} offered chain(s)",
                    cp.job_id,
                )
        prev_end = cp.release
        for index, (pl, task) in enumerate(zip(cp.placements, chain.tasks)):
            if pl.task != task:
                self._flag(
                    "shape.task",
                    f"placement {index} carries task {pl.task.name!r}, "
                    f"chain has {task.name!r}",
                    cp.job_id,
                    task.name,
                )
            self._audit_shape(cp.job_id, pl, task)
            if pl.start < cp.release - self.eps:
                self._flag(
                    "release",
                    f"starts at {pl.start} before release {cp.release}",
                    cp.job_id,
                    task.name,
                    pl.start,
                )
            if index > 0 and pl.start < prev_end - self.eps:
                self._flag(
                    "precedence",
                    f"starts at {pl.start} before predecessor finish "
                    f"{prev_end} (overlap {prev_end - pl.start:g})",
                    cp.job_id,
                    task.name,
                    pl.start,
                )
            if math.isfinite(task.deadline):
                due = cp.release + task.deadline
                if pl.end > due + self.eps:
                    self._flag(
                        "deadline",
                        f"finishes at {pl.end} past deadline {due} "
                        f"(late by {pl.end - due:g})",
                        cp.job_id,
                        task.name,
                        pl.end,
                    )
            prev_end = pl.end

    def _audit_shape(self, job_id: int, pl, task) -> None:
        if not self.malleable:
            if pl.processors != task.processors:
                self._flag(
                    "shape.width",
                    f"placed on {pl.processors}p, rigid request is "
                    f"{task.processors}p",
                    job_id,
                    task.name,
                )
            if abs(pl.duration - task.duration) > self.eps:
                self._flag(
                    "shape.duration",
                    f"placed for {pl.duration}t, rigid request is "
                    f"{task.duration}t",
                    job_id,
                    task.name,
                )
            return
        if pl.processors < 1 or pl.processors > task.max_concurrency:
            self._flag(
                "shape.malleable",
                f"placed on {pl.processors}p outside [1, "
                f"{task.max_concurrency}] degree of concurrency",
                job_id,
                task.name,
            )
        placed_area = pl.processors * pl.duration
        if abs(placed_area - task.area) > _AREA_RTOL * max(1.0, task.area):
            self._flag(
                "shape.malleable",
                f"placed area {placed_area:g} is not work-conserving "
                f"(task area {task.area:g})",
                job_id,
                task.name,
            )

    # ------------------------------------------------------------------
    # Capacity: an independent sweep-line over placement intervals
    # ------------------------------------------------------------------

    def _intervals(self, placements: "Iterable[ChainPlacement]") -> list[_Interval]:
        out: list[_Interval] = []
        for cp in placements:
            for pl in cp.placements:
                start, end = pl.start, pl.end
                if self.since is not None:
                    if end <= self.since + self.eps:
                        continue  # entirely pre-clip history
                    start = max(start, self.since)
                out.append(
                    _Interval(cp.job_id, pl.task.name, start, end, pl.processors)
                )
        return out

    def _audit_capacity(self, intervals: list[_Interval], capacity: int) -> int:
        """Sweep the interval endpoints; flag every over-capacity slice.

        Events release before they acquire at equal times (allocations are
        half-open ``[start, end)``), so exact handoffs are free.  A slice no
        wider than ``eps`` is ignored: it cannot hold real work and only
        arises from float noise in otherwise-exact arithmetic.
        """
        events: list[tuple[float, int]] = []
        for iv in intervals:
            events.append((iv.start, iv.processors))
            events.append((iv.end, -iv.processors))
        # Sort by time; at equal times apply releases (negative) first.
        events.sort(key=lambda e: (e[0], e[1]))
        in_use = 0
        slices = 0
        i = 0
        n = len(events)
        while i < n:
            t = events[i][0]
            while i < n and events[i][0] == t:
                in_use += events[i][1]
                i += 1
            slice_end = events[i][0] if i < n else t
            slices += 1
            if in_use > capacity and slice_end - t > self.eps:
                over = [
                    iv
                    for iv in intervals
                    if iv.start <= t + self.eps and iv.end > t + self.eps
                ]
                self._flag(
                    "capacity",
                    f"{in_use}p in use on a {capacity}p machine over "
                    f"[{t:g}, {slice_end:g}) — "
                    + ", ".join(
                        f"job {iv.job_id}/{iv.task_name} x{iv.processors}p"
                        for iv in over[:6]
                    )
                    + ("…" if len(over) > 6 else ""),
                    time=t,
                )
        return slices

    # ------------------------------------------------------------------
    # Profile cross-check
    # ------------------------------------------------------------------

    def _audit_profile(self, schedule: "Schedule", placements) -> None:
        """Compare profile availability against placement-implied busy time.

        Works purely on the profile's *data* (its segment list), never its
        query code.  Segments before the profile origin are compacted
        history and are skipped; a placement interval overlapping the
        origin contributes only its surviving ``[origin, end)`` part,
        matching commit/adopt-carried semantics.
        """
        profile = schedule.profile
        capacity = schedule.capacity
        origin = profile.origin
        segments = list(profile.segments())
        # Internal sanity on the profile data itself.
        for seg_start, seg_end, avail in segments:
            if not 0 <= avail <= capacity:
                self._flag(
                    "profile",
                    f"profile availability {avail} outside [0, {capacity}] "
                    f"over [{seg_start:g}, {seg_end:g})",
                    time=seg_start,
                )
        if self.profile_mode == "off" or not schedule.keeps_placements:
            return
        intervals = self._intervals(placements)
        strict = self.profile_mode == "strict"
        # Probe between every boundary of either description: profile
        # segment edges alone are not enough, because a corrupted profile
        # can be constant across a slice where the placement-implied busy
        # time changes (e.g. a dropped reservation) — the discrepancy then
        # lives strictly inside one segment.
        boundaries = {origin}
        for seg_start, _seg_end, _avail in segments:
            if seg_start >= origin:
                boundaries.add(seg_start)
        for iv in intervals:
            for t in (iv.start, iv.end):
                if t >= origin:
                    boundaries.add(t)
        cuts = sorted(boundaries)
        for i, t0 in enumerate(cuts):
            t1 = cuts[i + 1] if i + 1 < len(cuts) else math.inf
            if t1 - t0 <= self.eps:
                continue
            probe = t0 + min((t1 - t0) / 2, 0.5)
            avail = next(
                (
                    a
                    for seg_start, seg_end, a in segments
                    if seg_start <= probe < seg_end
                ),
                None,
            )
            if avail is None:
                continue  # probe precedes the first retained segment
            busy = sum(
                iv.processors
                for iv in intervals
                if iv.start <= probe and iv.end > probe
            )
            expected = capacity - busy
            if strict and avail != expected:
                self._flag(
                    "profile",
                    f"profile says {avail}p free at t={probe:g}, placements "
                    f"imply {expected}p",
                    time=probe,
                )
            elif not strict and avail > expected:
                self._flag(
                    "profile",
                    f"profile says {avail}p free at t={probe:g} but "
                    f"placements still hold {busy}p (at most {expected}p "
                    "can be free)",
                    time=probe,
                )

    # ------------------------------------------------------------------
    # Ledger arithmetic
    # ------------------------------------------------------------------

    def _audit_ledger(self, schedule: "Schedule", placements) -> None:
        n = len(placements)
        if schedule.committed_jobs != n:
            self._flag(
                "ledger.jobs",
                f"committed_jobs={schedule.committed_jobs}, "
                f"{n} placements retained",
            )
        area = 0.0
        for cp in placements:
            for pl in cp.placements:
                area += pl.processors * pl.duration
        tol = _AREA_RTOL * max(1.0, area)
        if abs(schedule.committed_area - area) > tol:
            self._flag(
                "ledger.area",
                f"committed_area={schedule.committed_area!r}, placements "
                f"sum to {area!r}",
            )
        first = min((cp.release for cp in placements), default=math.inf)
        last = max((cp.finish for cp in placements), default=-math.inf)
        if schedule.first_release != first:
            self._flag(
                "ledger.window",
                f"first_release={schedule.first_release!r}, placements "
                f"start from {first!r}",
            )
        if schedule.last_finish != last:
            self._flag(
                "ledger.window",
                f"last_finish={schedule.last_finish!r}, placements run "
                f"to {last!r}",
            )
        span = last - first
        if n and span > 0:
            expected_util = area / (schedule.capacity * span)
            got = schedule.utilization()
            if abs(got - expected_util) > _AREA_RTOL * max(1.0, expected_util):
                self._flag(
                    "ledger.util",
                    f"utilization()={got!r}, recomputed "
                    f"{expected_util!r} from area/window",
                )


def audit_schedule(
    schedule: "Schedule",
    jobs: "Sequence[Job] | Mapping[int, Job] | None" = None,
    *,
    malleable: bool = False,
    match_config: bool = True,
    ledger: bool = True,
    profile_mode: str = "strict",
    since: float | None = None,
) -> AuditReport:
    """One-shot convenience wrapper around :class:`ScheduleAuditor`."""
    auditor = ScheduleAuditor(
        malleable=malleable,
        match_config=match_config,
        ledger=ledger,
        profile_mode=profile_mode,
        since=since,
    )
    return auditor.audit(schedule, jobs)
