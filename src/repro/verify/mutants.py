"""Hand-seeded buggy schedules: the auditor's own test vector.

A verifier that has never seen a broken schedule proves nothing.  Each
builder here fabricates a small schedule with exactly one planted bug —
white-box corruptions modelled on real failure modes of the scheduler stack
(the off-by-epsilon reservation, the stale rollback window that PR 3 fixed,
ledger drift, phantom/missing profile reservations) — and declares the
violation code the :class:`~repro.verify.auditor.ScheduleAuditor` must
raise.  ``tests/verify/test_auditor.py`` asserts every mutant is flagged
with its expected code (and that the uncorrupted baseline audits clean), so
any future loosening of the auditor fails loudly.

Builders write to the schedule's private ledger fields on purpose: the bugs
being modelled live *inside* ``Schedule``'s accounting, and there is no
public API for corrupting it (nor should there be).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.core.placement import ChainPlacement, Placement
from repro.core.resources import ProcessorTimeRequest
from repro.core.schedule import Schedule
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec
from repro.resilience.reconfig import ResizeRecord

__all__ = [
    "MutantScenario",
    "MUTANT_BUILDERS",
    "audit_scenario",
    "build_all_mutants",
]


@dataclass(frozen=True, slots=True)
class MutantScenario:
    """One corrupted schedule plus the violation the auditor must raise.

    ``resizes`` optionally carries a mid-execution resize stream to run
    through :meth:`~repro.verify.auditor.ScheduleAuditor.audit_resizes`
    alongside the schedule audit; the expected code may come from either.
    """

    name: str
    expected_code: str
    schedule: Schedule
    jobs: tuple[Job, ...]
    malleable: bool = False
    description: str = ""
    resizes: tuple[ResizeRecord, ...] = ()


def _task(
    name: str,
    procs: int,
    duration: float,
    deadline: float = 100.0,
    max_concurrency: int | None = None,
) -> TaskSpec:
    return TaskSpec(
        name,
        ProcessorTimeRequest(procs, duration),
        deadline=deadline,
        max_concurrency=max_concurrency
        if max_concurrency is not None
        else procs,
    )


def _job(release: float, *tasks: TaskSpec) -> Job:
    return Job(chains=(TaskChain(tuple(tasks)),), release=release)


def _rigid_cp(job: Job, *starts: float) -> ChainPlacement:
    """Chain placement honouring each task's rigid request at ``starts``."""
    chain = job.chains[0]
    return ChainPlacement(
        job_id=job.job_id,
        chain_index=0,
        chain=chain,
        placements=tuple(
            Placement.rigid(task, start)
            for task, start in zip(chain.tasks, starts)
        ),
        release=job.release,
    )


def _raw_commit(schedule: Schedule, cp: ChainPlacement, reserve: bool = True) -> None:
    """Commit without validation — mutants must bypass the guard rails.

    Mirrors :meth:`Schedule.commit`'s ledger arithmetic exactly so the only
    inconsistency in a scenario is the one its builder plants.  ``reserve=
    False`` skips the profile reservation for placements the profile would
    (correctly) reject, e.g. over-capacity ones.
    """
    if reserve:
        for pl in cp.placements:
            schedule.profile.reserve(pl.start, pl.end, pl.processors)
    schedule._placements.append(cp)
    schedule._committed_area += cp.total_area
    schedule._committed_jobs += 1
    schedule._releases[cp.release] += 1
    schedule._finishes[cp.finish] += 1
    schedule._first_release = min(schedule._first_release, cp.release)
    schedule._last_finish = max(schedule._last_finish, cp.finish)


def _pair() -> tuple[Schedule, Job, Job]:
    """The shared clean baseline: two jobs filling a 4p machine exactly.

    job A: a0 = 2p x 4t @ [0, 4), then a1 = 2p x 3t @ [4, 7)
    job B: b0 = 2p x 5t @ [1, 6)          (release 1)

    Peak usage is exactly 4p over [1, 6); all deadlines are loose.
    """
    a = _job(0.0, _task("a0", 2, 4.0, deadline=20.0), _task("a1", 2, 3.0, deadline=20.0))
    b = _job(1.0, _task("b0", 2, 5.0, deadline=30.0))
    return Schedule(4), a, b


def _resize(**overrides) -> ResizeRecord:
    """A valid grow record; builders override exactly one field to plant a bug.

    Baseline: a 2p x 6t task (area 12) interrupted at t=10 restarts on 3p
    for 4t after a 1t reconfiguration charge — work-conserving, inside its
    [1, 4] width band, starting exactly at ``time + delay``.
    """
    base = dict(
        kind="grow",
        job_id=0,
        task="m0",
        time=10.0,
        delay=1.0,
        old_width=2,
        new_width=3,
        min_width=1,
        max_width=4,
        task_area=12.0,
        new_start=11.0,
        new_duration=4.0,
    )
    base.update(overrides)
    return ResizeRecord(**base)


def clean_baseline() -> MutantScenario:
    """Not a mutant: the uncorrupted scenario, which must audit clean."""
    schedule, a, b = _pair()
    _raw_commit(schedule, _rigid_cp(a, 0.0, 4.0))
    _raw_commit(schedule, _rigid_cp(b, 1.0))
    return MutantScenario(
        "clean_baseline",
        "",
        schedule,
        (a, b),
        description="control; no bug",
        resizes=(
            _resize(),
            _resize(
                kind="shrink",
                old_width=3,
                new_width=2,
                new_start=11.5,
                new_duration=6.0,
                delay=1.0,
            ),
        ),
    )


# ---------------------------------------------------------------------------
# The mutants
# ---------------------------------------------------------------------------


def capacity_overshoot() -> MutantScenario:
    schedule, a, _ = _pair()
    wide = _job(1.0, _task("b0", 3, 5.0, deadline=30.0))
    _raw_commit(schedule, _rigid_cp(a, 0.0, 4.0))
    _raw_commit(schedule, _rigid_cp(wide, 1.0), reserve=False)
    return MutantScenario(
        "capacity_overshoot",
        "capacity",
        schedule,
        (a, wide),
        description="2p+3p co-scheduled over [1, 4) on a 4p machine",
    )


def off_by_eps_reservation() -> MutantScenario:
    schedule, a, _ = _pair()
    cp = _rigid_cp(a, 0.0, 4.0 - 1e-8)  # a1 starts 1e-8 inside a0
    _raw_commit(schedule, cp)
    return MutantScenario(
        "off_by_eps_reservation",
        "precedence",
        schedule,
        (a,),
        description="successor starts 1e-8 before predecessor finishes "
        "(beyond the 1e-9 tolerance)",
    )


def dropped_precedence_edge() -> MutantScenario:
    schedule, a, _ = _pair()
    cp = _rigid_cp(a, 0.0, 2.0)  # a1 fully overlaps a0's second half
    _raw_commit(schedule, cp)
    return MutantScenario(
        "dropped_precedence_edge",
        "precedence",
        schedule,
        (a,),
        description="chain tasks scheduled as if independent",
    )


def deadline_miss() -> MutantScenario:
    schedule = Schedule(4)
    job = _job(0.0, _task("t0", 2, 4.0, deadline=20.0), _task("t1", 2, 3.0, deadline=6.0))
    cp = _rigid_cp(job, 0.0, 4.0)  # t1 ends at 7 > deadline 6
    _raw_commit(schedule, cp)
    return MutantScenario(
        "deadline_miss",
        "deadline",
        schedule,
        (job,),
        description="admitted chain finishes one time-unit past its deadline",
    )


def early_start() -> MutantScenario:
    schedule, a, b = _pair()
    _raw_commit(schedule, _rigid_cp(a, 0.0, 4.0))
    _raw_commit(schedule, _rigid_cp(b, 0.5))  # release is 1.0
    return MutantScenario(
        "early_start",
        "release",
        schedule,
        (a, b),
        description="task starts before its job arrives",
    )


def wrong_shape_width() -> MutantScenario:
    schedule, a, b = _pair()
    _raw_commit(schedule, _rigid_cp(a, 0.0, 4.0))
    cp = _rigid_cp(b, 7.0)
    fat = replace(cp.placements[0], processors=3)  # request is 2p
    _raw_commit(schedule, replace(cp, placements=(fat,)))
    return MutantScenario(
        "wrong_shape_width",
        "shape.width",
        schedule,
        (a, b),
        description="rigid task granted 3p instead of the requested 2p",
    )


def wrong_shape_duration() -> MutantScenario:
    schedule, a, b = _pair()
    _raw_commit(schedule, _rigid_cp(a, 0.0, 4.0))
    cp = _rigid_cp(b, 7.0)
    short = replace(cp.placements[0], duration=4.5)  # request is 5t
    _raw_commit(schedule, replace(cp, placements=(short,)))
    return MutantScenario(
        "wrong_shape_duration",
        "shape.duration",
        schedule,
        (a, b),
        description="rigid task reserved for 4.5t instead of 5t",
    )


def wrong_config() -> MutantScenario:
    schedule, a, b = _pair()
    _raw_commit(schedule, _rigid_cp(a, 0.0, 4.0))
    rogue = TaskChain((_task("b0-rogue", 2, 5.0, deadline=30.0),))
    cp = ChainPlacement(
        job_id=b.job_id,
        chain_index=0,
        chain=rogue,
        placements=(Placement.rigid(rogue.tasks[0], 1.0),),
        release=b.release,
    )
    _raw_commit(schedule, cp)
    return MutantScenario(
        "wrong_config",
        "config",
        schedule,
        (a, b),
        description="placed chain is not one the job offered",
    )


def stale_rollback_window() -> MutantScenario:
    schedule, a, b = _pair()
    _raw_commit(schedule, _rigid_cp(a, 0.0, 4.0))
    _raw_commit(schedule, _rigid_cp(b, 1.0))
    schedule._last_finish = 12.0  # as if a rolled-back job's finish survived
    return MutantScenario(
        "stale_rollback_window",
        "ledger.window",
        schedule,
        (a, b),
        description="utilization window still spans a rolled-back placement "
        "(the pre-PR-3 accounting bug)",
    )


def area_ledger_drift() -> MutantScenario:
    schedule, a, b = _pair()
    _raw_commit(schedule, _rigid_cp(a, 0.0, 4.0))
    _raw_commit(schedule, _rigid_cp(b, 1.0))
    schedule._committed_area += 1.0
    return MutantScenario(
        "area_ledger_drift",
        "ledger.area",
        schedule,
        (a, b),
        description="committed_area drifted from the placement sum",
    )


def job_count_drift() -> MutantScenario:
    schedule, a, b = _pair()
    _raw_commit(schedule, _rigid_cp(a, 0.0, 4.0))
    _raw_commit(schedule, _rigid_cp(b, 1.0))
    schedule._committed_jobs += 1
    return MutantScenario(
        "job_count_drift",
        "ledger.jobs",
        schedule,
        (a, b),
        description="committed_jobs counts a job with no placement",
    )


def phantom_reservation() -> MutantScenario:
    schedule, a, b = _pair()
    _raw_commit(schedule, _rigid_cp(a, 0.0, 4.0))
    _raw_commit(schedule, _rigid_cp(b, 1.0))
    schedule.profile.reserve(10.0, 12.0, 1)  # no placement backs this
    return MutantScenario(
        "phantom_reservation",
        "profile",
        schedule,
        (a, b),
        description="profile holds processors no committed job owns",
    )


def missing_reservation() -> MutantScenario:
    schedule, a, b = _pair()
    _raw_commit(schedule, _rigid_cp(a, 0.0, 4.0))
    cp = _rigid_cp(b, 1.0)
    _raw_commit(schedule, cp)
    pl = cp.placements[0]
    schedule.profile.release(pl.start, pl.end, pl.processors)
    return MutantScenario(
        "missing_reservation",
        "profile",
        schedule,
        (a, b),
        description="a committed placement's processors were given away",
    )


def malleable_overwide() -> MutantScenario:
    schedule = Schedule(8)
    job = _job(0.0, _task("m0", 2, 4.0, deadline=50.0, max_concurrency=2))
    cp = ChainPlacement(
        job_id=job.job_id,
        chain_index=0,
        chain=job.chains[0],
        # Work-conserving (8 area) but 4p > max_concurrency 2.
        placements=(Placement(job.chains[0].tasks[0], 0.0, 4, 2.0),),
        release=0.0,
    )
    _raw_commit(schedule, cp)
    return MutantScenario(
        "malleable_overwide",
        "shape.malleable",
        schedule,
        (job,),
        malleable=True,
        description="reshape exceeds the task's degree of concurrency",
    )


def nonconserving_reshape() -> MutantScenario:
    schedule = Schedule(8)
    job = _job(0.0, _task("m0", 2, 4.0, deadline=50.0, max_concurrency=4))
    cp = ChainPlacement(
        job_id=job.job_id,
        chain_index=0,
        chain=job.chains[0],
        # Within concurrency but 2p x 3t = 6 area, task needs 8.
        placements=(Placement(job.chains[0].tasks[0], 0.0, 2, 3.0),),
        release=0.0,
    )
    _raw_commit(schedule, cp)
    return MutantScenario(
        "nonconserving_reshape",
        "shape.malleable",
        schedule,
        (job,),
        malleable=True,
        description="reshape silently sheds work (area not conserved)",
    )


def resize_sheds_work() -> MutantScenario:
    """A resize that pays its reconfiguration cost by shrinking the work.

    The restarted placement carries 3p x 3t = 9 processor-time for a task
    declaring 12 — the classic unsound shortcut where the restart keeps
    credit for the consumed partial run instead of re-executing from
    scratch (the Calypso model the accounting assumes).
    """
    return MutantScenario(
        "resize_sheds_work",
        "resize.area",
        Schedule(4),
        (),
        malleable=True,
        description="restarted task area 9 for a 12-area task",
        resizes=(_resize(new_duration=3.0),),
    )


def resize_overlaps_prefix() -> MutantScenario:
    """A resize whose restart begins inside the charged reconfiguration window.

    The restart at t=10.5 precedes ``time + delay = 11``: the new placement
    overlaps the checkpoint/redistribute interval — and, transitively, the
    consumed prefix the cut at ``time`` was protecting.
    """
    return MutantScenario(
        "resize_overlaps_prefix",
        "resize.overlap",
        Schedule(4),
        (),
        malleable=True,
        description="restart at 10.5 before resize time 10 + delay 1",
        resizes=(_resize(new_start=10.5),),
    )


def resize_width_runaway() -> MutantScenario:
    """A 'grow' that lands outside the task's declared width band.

    6p exceeds ``max_width`` 4 (= min(max_concurrency, capacity)): the
    resize stole processors the task's degree of concurrency cannot use.
    """
    return MutantScenario(
        "resize_width_runaway",
        "resize.width",
        Schedule(4),
        (),
        malleable=True,
        description="grow to 6p past the [1, 4] width band",
        resizes=(_resize(new_width=6, new_duration=2.0),),
    )


#: Every mutant builder, in catalogue order.  ``clean_baseline`` is not in
#: here — it is the control the test suite audits separately.
MUTANT_BUILDERS: tuple[Callable[[], MutantScenario], ...] = (
    capacity_overshoot,
    off_by_eps_reservation,
    dropped_precedence_edge,
    deadline_miss,
    early_start,
    wrong_shape_width,
    wrong_shape_duration,
    wrong_config,
    stale_rollback_window,
    area_ledger_drift,
    job_count_drift,
    phantom_reservation,
    missing_reservation,
    malleable_overwide,
    nonconserving_reshape,
    resize_sheds_work,
    resize_overlaps_prefix,
    resize_width_runaway,
)


def build_all_mutants() -> list[MutantScenario]:
    """Fresh instances of every mutant scenario."""
    return [build() for build in MUTANT_BUILDERS]


def audit_scenario(scenario: MutantScenario) -> set[str]:
    """All violation codes the auditor raises against one scenario.

    Runs the schedule audit and, when the scenario carries a resize
    stream, the resize audit; the selftest (``python -m repro.verify
    --selftest``) and the test suite share this so both always exercise
    both checkers.
    """
    from repro.verify.auditor import ScheduleAuditor

    auditor = ScheduleAuditor(malleable=scenario.malleable)
    codes = set(auditor.audit(scenario.schedule, scenario.jobs).codes)
    if scenario.resizes:
        codes |= auditor.audit_resizes(scenario.resizes).codes
    return codes
