"""Seeded differential / metamorphic fuzzing of the admission stack.

One fuzz *case* is a random workload (capacity + release-ordered jobs,
rigid or malleable).  For each case the harness:

1. **Differential identity** — runs the full decision matrix
   (scan back-ends × prune modes, per tie-break policy) and asserts every
   combination produces the *bit-identical* decision sequence: admissions,
   chain choices, every task's (start, width, duration).  This is the
   repo's standing claim (PR 4's prune-exactness proofs, the back-end
   equivalence contract) tested on random instances instead of fixed axes.
2. **Auditor cleanliness** — every run's committed schedule passes the
   independent :class:`~repro.verify.auditor.ScheduleAuditor`.
3. **Metamorphic checks** —
   * inserting a trivially inadmissible job changes no other decision;
   * scaling every time by ``k`` (releases, durations, deadlines) scales
     the schedule by ``k`` and leaves decisions and utilization unchanged;
   * swapping two *identical* jobs arriving at the same instant leaves the
     decision sequence unchanged (only a RANDOM tie-break may legitimately
     see submission order beyond identity, which is why the differential
     matrix pins its seed).
4. **Oracle bound** — on small rigid cases, the exhaustive oracle must
   admit at least as many jobs as greedy (greedy beating the "optimum"
   would prove one of them invalid).
5. **Batch identity** — :meth:`QoSArbitrator.admit_batch` over the whole
   case replays bit-identical to the serial submit loop, per policy.
   The ``"kernel"`` scan back-end in the differential matrix and the
   batched runs both route through :mod:`repro.core.kernels`, so running
   the fuzzer under ``REPRO_KERNEL=compiled`` (CI does) pits the
   compiled C kernels against the pure-Python stack case by case.
6. **Adversarial switches** — the ``"adaptive"`` back-end re-runs the
   case with its controller pinned to forced switch schedules (a new
   back-end every probe in the worst case) and must match the scalar
   reference bit for bit (see :func:`switch_failures`).

On failure the case is **shrunk** — jobs removed, chains dropped, chain
tails truncated, greedily to a local minimum that still fails — and the
minimal reproducer is persisted as JSON (see :func:`persist_failure`) into
``tests/corpus/``, where ``tests/verify/test_corpus.py`` replays every
entry forever after.

Everything is deterministic given ``seed``: generation draws from one
``random.Random`` and the checks themselves are derandomized (fixed
insertion point, fixed scale factor, fixed arbitrator seed for the RANDOM
policy), so CI failures reproduce locally by seed alone.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.core.arbitrator import QoSArbitrator
from repro.core.policies import TieBreakPolicy
from repro.core.resources import ProcessorTimeRequest
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec
from repro.sim.persistence import job_from_dict, job_to_dict
from repro.verify.auditor import ScheduleAuditor
from repro.verify.oracle import OracleLimitError, OracleLimits, exhaustive_best

__all__ = [
    "CORPUS_VERSION",
    "FuzzCase",
    "FuzzReport",
    "random_case",
    "run_case",
    "run_case_batch",
    "check_case",
    "switch_failures",
    "shrink",
    "persist_failure",
    "load_case",
    "fuzz",
]

CORPUS_VERSION = 1

#: Fixed arbitrator seed for the RANDOM tie-break inside the matrix: all
#: combinations must draw the same stream for identity to be meaningful.
_RANDOM_POLICY_SEED = 1234

#: Scan back-ends under differential test.  ``"adaptive"`` rides the
#: matrix too: its controller may switch the live back-end at any probe
#: based on wall-clock signals, so its membership asserts the decision
#: sequence is invariant under *online* switching, not just static choice.
_BACKENDS: tuple[str, ...] = ("scalar", "vector", "tree", "kernel", "adaptive")

#: Forced switch schedules for the adversarial-switch check: the adaptive
#: controller is pinned to replay these back-end sequences round-robin,
#: one entry consumed per probe — including the every-probe-a-different-
#: backend worst case no real signal trace would produce.
_SWITCH_SCHEDULES: tuple[tuple[str, ...], ...] = (
    ("scalar", "vector", "tree", "kernel"),
    ("tree", "scalar"),
    ("kernel", "vector", "scalar", "tree", "tree", "kernel"),
)

#: Deterministic policies checked by the order-metamorphic test.
_POLICIES: tuple[TieBreakPolicy, ...] = (
    TieBreakPolicy.PAPER,
    TieBreakPolicy.FIRST,
    TieBreakPolicy.PREFIX,
    TieBreakPolicy.RANDOM,
)

#: Oracle is consulted only below this many jobs (rigid cases only).
_ORACLE_MAX_JOBS = 6


# ---------------------------------------------------------------------------
# Cases
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FuzzCase:
    """One reproducible workload: capacity, model, release-ordered jobs."""

    capacity: int
    jobs: tuple[Job, ...]
    malleable: bool = False
    note: str = ""

    def to_dict(self) -> dict[str, object]:
        """Serializable form (jobs via :func:`repro.sim.persistence`)."""
        return {
            "version": CORPUS_VERSION,
            "kind": "workload",
            "note": self.note,
            "capacity": self.capacity,
            "malleable": self.malleable,
            "jobs": [job_to_dict(j) for j in self.jobs],
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "FuzzCase":
        return FuzzCase(
            capacity=int(data["capacity"]),  # type: ignore[arg-type]
            jobs=tuple(job_from_dict(j) for j in data["jobs"]),  # type: ignore[union-attr]
            malleable=bool(data.get("malleable", False)),
            note=str(data.get("note", "")),
        )

    @property
    def case_id(self) -> str:
        """Content hash identifying the workload (ignores the note)."""
        payload = self.to_dict()
        payload.pop("note", None)
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:12]


def _nice(rng: random.Random, lo_halves: int, hi_halves: int) -> float:
    """A random multiple of 0.5 — exact in floats, so checks test logic."""
    return rng.randint(lo_halves, hi_halves) / 2


def _random_chain(
    rng: random.Random, capacity: int, malleable: bool, tag: str
) -> TaskChain:
    n_tasks = rng.randint(1, 3)
    tasks: list[TaskSpec] = []
    elapsed = 0.0
    for t in range(n_tasks):
        # Mostly feasible widths; occasionally over-wide to exercise
        # rejection paths (and malleable shrinking).
        procs = rng.randint(1, capacity + (1 if rng.random() < 0.15 else 0))
        duration = _nice(rng, 1, 16)
        elapsed += duration
        # Deadline at least the zero-gap finish sometimes (tight), usually
        # looser; occasionally impossible (tight beyond the chain prefix).
        slack = _nice(rng, 0, 24) if rng.random() < 0.8 else -_nice(rng, 1, 4)
        deadline = max(elapsed + slack, 0.5)
        quality = rng.randint(1, 4) / 4
        max_conc = procs + (rng.randint(0, capacity) if malleable else 0)
        tasks.append(
            TaskSpec(
                f"{tag}t{t}",
                ProcessorTimeRequest(procs, duration),
                deadline=deadline,
                quality=quality,
                max_concurrency=max_conc,
            )
        )
    return TaskChain(tuple(tasks), label=tag)


def random_case(
    rng: random.Random,
    *,
    max_jobs: int = 6,
    malleable: bool = False,
) -> FuzzCase:
    """Draw one random workload (release-ordered, nice times)."""
    capacity = rng.randint(2, 8)
    n_jobs = rng.randint(1, max_jobs)
    jobs: list[Job] = []
    release = 0.0
    for j in range(n_jobs):
        if jobs and rng.random() < 0.25:
            # Identical twin at the same instant: exercises duplicate
            # collapse and the order-permutation metamorphic relation.
            prev = jobs[-1]
            jobs.append(Job(chains=prev.chains, release=prev.release))
            continue
        release += _nice(rng, 0, 12)
        n_chains = rng.randint(1, 3)
        chains = [
            _random_chain(rng, capacity, malleable, f"j{j}c{c}")
            for c in range(n_chains)
        ]
        if n_chains > 1 and rng.random() < 0.2:
            # Duplicate configuration inside one job: the duplicate-collapse
            # prune must stay decision-invisible.
            chains[-1] = TaskChain(
                chains[0].tasks, label=chains[0].label + "-dup"
            )
        jobs.append(Job(chains=tuple(chains), release=release))
    return FuzzCase(capacity=capacity, jobs=tuple(jobs), malleable=malleable)


# ---------------------------------------------------------------------------
# Running one configuration and digesting its decisions
# ---------------------------------------------------------------------------


def run_case(
    case: FuzzCase,
    *,
    backend: str = "auto",
    prune: bool = True,
    policy: TieBreakPolicy = TieBreakPolicy.PAPER,
    audit: bool = True,
    forced_switches: Sequence[str] | None = None,
) -> tuple[tuple, list[str]]:
    """Submit the case's jobs through one arbitrator configuration.

    Returns ``(digest, failures)``: the digest is a hashable decision
    fingerprint (per-job admission, chain index and exact placements, plus
    utilization), and ``failures`` holds auditor violations, if any.

    ``forced_switches`` (requires ``backend="adaptive"``) pins the
    adaptive controller to replay that back-end sequence round-robin,
    one entry per profile probe, instead of following its signals — the
    adversarial-switch fuzz mode.
    """
    arbitrator = QoSArbitrator(
        case.capacity,
        malleable=case.malleable,
        backend=backend,
        prune=prune,
        policy=policy,
        seed=_RANDOM_POLICY_SEED,
        keep_placements=True,
    )
    if forced_switches is not None:
        arbitrator.schedule.profile.autotune.force_backends(forced_switches)
    decisions = []
    for job in case.jobs:
        decision = arbitrator.submit(job)
        if decision.admitted and decision.placement is not None:
            cp = decision.placement
            decisions.append(
                (
                    True,
                    cp.chain_index,
                    tuple(
                        (pl.start, pl.processors, pl.duration)
                        for pl in cp.placements
                    ),
                )
            )
        else:
            decisions.append((False, None, ()))
    digest = (tuple(decisions), arbitrator.utilization())
    failures: list[str] = []
    if audit:
        report = ScheduleAuditor(malleable=case.malleable).audit(
            arbitrator.schedule, case.jobs
        )
        if not report.ok:
            failures.append(
                f"audit[{backend},prune={prune},{policy.value}]: "
                + "; ".join(str(v) for v in report.violations[:4])
            )
    return digest, failures


def run_case_batch(
    case: FuzzCase,
    *,
    backend: str = "auto",
    prune: bool = True,
    policy: TieBreakPolicy = TieBreakPolicy.PAPER,
    audit: bool = True,
) -> tuple[tuple, list[str]]:
    """Like :func:`run_case`, but through one ``admit_batch`` call.

    Exercises the batched admission API — the compiled one-call fast
    path when the kernel layer resolves to ``compiled`` and the
    configuration supports it, the pre-screened serial path otherwise —
    whose contract is bit-identical decisions to the serial loop
    :func:`run_case` drives.
    """
    arbitrator = QoSArbitrator(
        case.capacity,
        malleable=case.malleable,
        backend=backend,
        prune=prune,
        policy=policy,
        seed=_RANDOM_POLICY_SEED,
        keep_placements=True,
    )
    decisions = []
    for decision in arbitrator.admit_batch(list(case.jobs)):
        if decision.admitted and decision.placement is not None:
            cp = decision.placement
            decisions.append(
                (
                    True,
                    cp.chain_index,
                    tuple(
                        (pl.start, pl.processors, pl.duration)
                        for pl in cp.placements
                    ),
                )
            )
        else:
            decisions.append((False, None, ()))
    digest = (tuple(decisions), arbitrator.utilization())
    failures: list[str] = []
    if audit:
        report = ScheduleAuditor(malleable=case.malleable).audit(
            arbitrator.schedule, case.jobs
        )
        if not report.ok:
            failures.append(
                f"audit[batch,{backend},prune={prune},{policy.value}]: "
                + "; ".join(str(v) for v in report.violations[:4])
            )
    return digest, failures


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------


def differential_failures(case: FuzzCase) -> list[str]:
    """Back-end × prune decision identity (per policy) + audit cleanliness."""
    failures: list[str] = []
    policies = _POLICIES if not case.malleable else (TieBreakPolicy.PAPER,)
    for policy in policies:
        reference = None
        reference_combo = ""
        for backend in _BACKENDS:
            for prune in (True, False):
                digest, audit_fails = run_case(
                    case, backend=backend, prune=prune, policy=policy
                )
                failures.extend(audit_fails)
                combo = f"{backend},prune={prune},{policy.value}"
                if reference is None:
                    reference, reference_combo = digest, combo
                elif digest != reference:
                    failures.append(
                        f"decision divergence under {policy.value}: "
                        f"{combo} != {reference_combo}"
                    )
    return failures


def _impossible_job(release: float) -> Job:
    """A job no scheduler model can admit (1p x 50t due in 0.5t)."""
    chain = TaskChain(
        (
            TaskSpec(
                "impossible",
                ProcessorTimeRequest(1, 50.0),
                deadline=0.5,
                max_concurrency=1,
            ),
        ),
        label="impossible",
    )
    return Job(chains=(chain,), release=release)


def _scaled_job(job: Job, k: float) -> Job:
    chains = tuple(
        TaskChain(
            tuple(
                TaskSpec(
                    t.name,
                    ProcessorTimeRequest(t.processors, t.duration * k),
                    deadline=t.deadline * k,
                    quality=t.quality,
                    max_concurrency=t.max_concurrency,
                )
                for t in chain.tasks
            ),
            label=chain.label,
            params=chain.params,
        )
        for chain in job.chains
    )
    return Job(chains=chains, release=job.release * k, job_id=job.job_id)


def metamorphic_failures(case: FuzzCase) -> list[str]:
    """The three metamorphic relations, checked deterministically."""
    failures: list[str] = []
    base, _ = run_case(case, audit=False)
    base_decisions, base_util = base

    # 1. Inserting an inadmissible job (mid-sequence, at an existing
    #    release so ordering is preserved) changes no other decision.
    if case.jobs:
        mid = len(case.jobs) // 2
        extra = _impossible_job(case.jobs[mid].release)
        augmented = replace(
            case,
            jobs=case.jobs[:mid] + (extra,) + case.jobs[mid:],
        )
        aug, _ = run_case(augmented, audit=False)
        aug_decisions, aug_util = aug
        if aug_decisions[mid][0]:
            failures.append("metamorphic/inadmissible: impossible job admitted")
        stripped = aug_decisions[:mid] + aug_decisions[mid + 1 :]
        if stripped != base_decisions or aug_util != base_util:
            failures.append(
                "metamorphic/inadmissible: rejected job perturbed other decisions"
            )

    # 2. Scaling all times by k scales the schedule by k (k=2 is exact in
    #    binary floating point for the generator's nice times).
    k = 2.0
    scaled_case = replace(
        case, jobs=tuple(_scaled_job(j, k) for j in case.jobs)
    )
    scaled, _ = run_case(scaled_case, audit=False)
    scaled_decisions, scaled_util = scaled
    expected = tuple(
        (
            admitted,
            chain_index,
            tuple((s * k, p, d * k) for s, p, d in placements),
        )
        for admitted, chain_index, placements in base_decisions
    )
    if scaled_decisions != expected:
        failures.append("metamorphic/scale: decisions do not scale with time")
    if not math.isclose(scaled_util, base_util, rel_tol=1e-9, abs_tol=1e-12):
        failures.append(
            f"metamorphic/scale: utilization changed {base_util!r} -> "
            f"{scaled_util!r}"
        )

    # 3. Swapping two identical same-instant jobs is invisible (beyond job
    #    identity, which the digest excludes).
    for i in range(len(case.jobs) - 1):
        a, b = case.jobs[i], case.jobs[i + 1]
        if a.release == b.release and a.chains == b.chains:
            swapped = replace(
                case,
                jobs=case.jobs[:i] + (b, a) + case.jobs[i + 2 :],
            )
            got, _ = run_case(swapped, audit=False)
            if got != base:
                failures.append(
                    f"metamorphic/swap: swapping identical jobs at index {i} "
                    "changed decisions"
                )
            break
    return failures


def oracle_failures(case: FuzzCase) -> list[str]:
    """Greedy must never beat the exhaustive optimum (rigid, small cases)."""
    if case.malleable or len(case.jobs) > _ORACLE_MAX_JOBS:
        return []
    try:
        solution = exhaustive_best(
            list(case.jobs), case.capacity, OracleLimits(max_nodes=400_000)
        )
    except OracleLimitError:
        return []  # out of oracle scope; other checks still ran
    (decisions, _), _failures = run_case(case, audit=False)
    greedy_admitted = sum(1 for d in decisions if d[0])
    if greedy_admitted > solution.admitted_count:
        return [
            f"oracle: greedy admitted {greedy_admitted} > exhaustive optimum "
            f"{solution.admitted_count}"
        ]
    return []


def batch_failures(case: FuzzCase) -> list[str]:
    """``admit_batch`` replays bit-identical to the serial submit loop.

    Checked per tie-break policy against the serial digest of the same
    configuration; the batched run is also audited.  Which batched
    machinery runs (one-call compiled loop vs pre-screened Python loop)
    depends on the kernel layer and the policy — both must be invisible
    in the decisions.
    """
    failures: list[str] = []
    policies = _POLICIES if not case.malleable else (TieBreakPolicy.PAPER,)
    for policy in policies:
        serial, _ = run_case(case, policy=policy, audit=False)
        batched, audit_fails = run_case_batch(case, policy=policy)
        failures.extend(audit_fails)
        if batched != serial:
            failures.append(
                f"batch divergence under {policy.value}: admit_batch != "
                "serial submit loop"
            )
    return failures


def switch_failures(case: FuzzCase) -> list[str]:
    """Adversarial back-end switch schedules are decision-invisible.

    Runs the case under ``backend="adaptive"`` with the controller pinned
    to each forced schedule in :data:`_SWITCH_SCHEDULES` — switching the
    scan back-end between arbitrary probes, mid-job, mid-chain — and
    asserts the digest matches the scalar reference.  This is the fuzz
    mode the tentpole's safety argument rests on: since every reachable
    switch sequence is decision-identical, the adaptive controller may
    consume nondeterministic wall-clock signals freely.
    """
    failures: list[str] = []
    reference, _ = run_case(case, backend="scalar", audit=False)
    for schedule in _SWITCH_SCHEDULES:
        digest, audit_fails = run_case(
            case, backend="adaptive", forced_switches=schedule
        )
        failures.extend(audit_fails)
        if digest != reference:
            failures.append(
                "switch divergence: forced schedule "
                f"{'/'.join(schedule)} != scalar reference"
            )
    return failures


def check_case(case: FuzzCase) -> list[str]:
    """All checks for one case; empty list means the case is clean."""
    failures = differential_failures(case)
    failures += metamorphic_failures(case)
    failures += oracle_failures(case)
    failures += batch_failures(case)
    failures += switch_failures(case)
    return failures


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _drop_job(case: FuzzCase, i: int) -> FuzzCase:
    return replace(case, jobs=case.jobs[:i] + case.jobs[i + 1 :])


def _drop_chain(case: FuzzCase, i: int, c: int) -> FuzzCase:
    job = case.jobs[i]
    chains = job.chains[:c] + job.chains[c + 1 :]
    slimmed = Job(
        chains=chains, release=job.release, job_id=job.job_id, name=job.name
    )
    return replace(case, jobs=case.jobs[:i] + (slimmed,) + case.jobs[i + 1 :])


def _truncate_chain(case: FuzzCase, i: int, c: int) -> FuzzCase:
    job = case.jobs[i]
    chain = job.chains[c]
    shorter = TaskChain(chain.tasks[:-1], label=chain.label, params=chain.params)
    chains = job.chains[:c] + (shorter,) + job.chains[c + 1 :]
    slimmed = Job(
        chains=chains, release=job.release, job_id=job.job_id, name=job.name
    )
    return replace(case, jobs=case.jobs[:i] + (slimmed,) + case.jobs[i + 1 :])


def shrink(
    case: FuzzCase,
    failing: Callable[[FuzzCase], bool],
    max_rounds: int = 50,
) -> FuzzCase:
    """Greedy delta-debugging to a locally minimal still-failing case.

    Tries, in order of aggressiveness: removing whole jobs, dropping
    alternative chains, truncating chain tails.  Each accepted reduction
    restarts the scan; terminates at a fixpoint (or ``max_rounds``).
    """
    for _ in range(max_rounds):
        reduced = None
        for i in range(len(case.jobs)):
            candidate = _drop_job(case, i)
            if candidate.jobs and failing(candidate):
                reduced = candidate
                break
        if reduced is None:
            for i, job in enumerate(case.jobs):
                if len(job.chains) <= 1:
                    continue
                for c in range(len(job.chains)):
                    candidate = _drop_chain(case, i, c)
                    if failing(candidate):
                        reduced = candidate
                        break
                if reduced is not None:
                    break
        if reduced is None:
            for i, job in enumerate(case.jobs):
                for c, chain in enumerate(job.chains):
                    if len(chain.tasks) <= 1:
                        continue
                    candidate = _truncate_chain(case, i, c)
                    if failing(candidate):
                        reduced = candidate
                        break
                if reduced is not None:
                    break
        if reduced is None:
            return case
        case = reduced
    return case


# ---------------------------------------------------------------------------
# Corpus persistence
# ---------------------------------------------------------------------------


def persist_failure(
    case: FuzzCase, failures: Sequence[str], corpus_dir: str | Path
) -> Path:
    """Write a failing (ideally shrunk) case into the corpus; return its path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    payload = case.to_dict()
    payload["failure"] = list(failures)
    path = corpus_dir / f"fuzz-{case.case_id}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_case(path: str | Path) -> FuzzCase:
    """Load a corpus ``workload`` entry back into a :class:`FuzzCase`."""
    data = json.loads(Path(path).read_text())
    if data.get("version") != CORPUS_VERSION:
        raise ValueError(
            f"unsupported corpus version {data.get('version')!r} in {path}"
        )
    if data.get("kind") != "workload":
        raise ValueError(f"{path} is not a workload corpus entry")
    return FuzzCase.from_dict(data)


# ---------------------------------------------------------------------------
# The campaign driver
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FuzzReport:
    """Outcome of one fuzz campaign."""

    cases: int
    seed: int
    failures: tuple[tuple[str, tuple[str, ...]], ...] = ()  # (case_id, whys)
    corpus_written: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every case passed every check."""
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return f"fuzz clean: {self.cases} cases (seed {self.seed})"
        lines = [
            f"fuzz: {len(self.failures)} failing case(s) out of "
            f"{self.cases} (seed {self.seed})"
        ]
        for case_id, whys in self.failures:
            lines.append(f"  case {case_id}:")
            lines += [f"    {w}" for w in whys]
        for path in self.corpus_written:
            lines.append(f"  reproducer: {path}")
        return "\n".join(lines)


def fuzz(
    n: int,
    seed: int,
    *,
    malleable_share: float = 0.25,
    max_jobs: int = 6,
    corpus_dir: str | Path | None = None,
    shrink_failures: bool = True,
) -> FuzzReport:
    """Run ``n`` random cases; shrink and persist any failure.

    Fully deterministic in ``(n, seed)``.  ``corpus_dir=None`` skips
    persistence (the report still carries the failures).
    """
    rng = random.Random(seed)
    failures: list[tuple[str, tuple[str, ...]]] = []
    written: list[str] = []
    for _ in range(n):
        malleable = rng.random() < malleable_share
        case = random_case(rng, max_jobs=max_jobs, malleable=malleable)
        whys = check_case(case)
        if not whys:
            continue
        if shrink_failures:
            case = shrink(case, lambda c: bool(check_case(c)))
            whys = check_case(case) or whys
        case = dataclasses.replace(
            case, note=f"fuzz seed={seed} shrunk reproducer"
        )
        failures.append((case.case_id, tuple(whys)))
        if corpus_dir is not None:
            written.append(str(persist_failure(case, whys, corpus_dir)))
    return FuzzReport(
        cases=n,
        seed=seed,
        failures=tuple(failures),
        corpus_written=tuple(written),
    )
