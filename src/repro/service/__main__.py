"""Demo CLI: drive the admission service, crash it, recover, and prove it.

::

    PYTHONPATH=src python -m repro.service --jobs 32 --kill-after 10

runs a seeded workload through a live service, optionally kills it
mid-flight, recovers from the WAL, finishes every interrupted request,
and prints the honest counters plus the recovery verdict.
"""

from __future__ import annotations

import argparse
import asyncio
import tempfile
from dataclasses import replace
from pathlib import Path
from typing import Sequence

from repro.service.chaos import ChaosScenario, _drive, _finish, chaos_workload
from repro.service.recovery import recover

import random


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Admission-service crash/recovery demo.",
    )
    parser.add_argument("--jobs", type=int, default=32)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--malleable", action="store_true")
    parser.add_argument(
        "--kill-after",
        type=int,
        default=None,
        metavar="N",
        help="kill the service after N acked decisions (default: run clean)",
    )
    parser.add_argument(
        "--wal",
        type=Path,
        default=None,
        help="WAL directory (default: a temporary one)",
    )
    args = parser.parse_args(argv)

    scenario = ChaosScenario(
        name="demo",
        seed=args.seed,
        n_jobs=args.jobs,
        malleable=args.malleable,
        crash_after_acks=args.kill_after,
        graceful=args.kill_after is None,
    )
    rng = random.Random(scenario.seed)
    capacity, jobs = chaos_workload(rng, scenario.n_jobs, scenario.malleable)
    config = scenario.config(capacity)
    calm = replace(
        config,
        queue_limit=4 * scenario.n_jobs + 16,
        shed_thresholds=(9.0,),
        degrade_occupancy=9.0,
        checkpoint_every=0,
    )

    with tempfile.TemporaryDirectory() as tmp:
        wal_dir = args.wal if args.wal is not None else Path(tmp)
        acked, stats, crash, _dups = asyncio.run(
            _drive(scenario, config, wal_dir, jobs, rng)
        )
        print(
            f"[service] capacity={capacity} jobs={len(jobs)} crash={crash} "
            f"acked={int(stats['acked'])} batches={int(stats['batches'])} "
            f"retries={int(stats['retries'])}"
        )
        state = recover(wal_dir, calm)
        print(
            f"[recover] ledger={len(state.entries)} redecided={state.redecided} "
            f"torn_bytes={state.truncated_bytes} "
            f"audit={'clean' if state.report.ok else 'VIOLATIONS'} "
            "(replay bit-identical: verified)"
        )
        outcomes = asyncio.run(_finish(calm, wal_dir, state, jobs))
        admitted = sum(1 for o in outcomes if o.admitted)
        final = recover(wal_dir, calm)
        print(
            f"[finish]  {admitted}/{len(jobs)} admitted; final ledger "
            f"{len(final.entries)} entries, audit "
            f"{'clean' if final.report.ok else 'VIOLATIONS'}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
