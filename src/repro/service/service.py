"""The fault-tolerant admission front-end (arbitrator-as-a-service).

:class:`AdmissionService` turns the library :class:`~repro.core.arbitrator.
QoSArbitrator` into a long-running asyncio service with the robustness
properties a "predictable" resource manager owes its clients:

* **Bounded ingress + backpressure** — requests enter a bounded queue;
  when it is full, :meth:`submit` *waits* (releasing the event loop)
  rather than buffering unboundedly, up to the request's deadline.
* **Batching** — the drain loop coalesces whatever is queued (up to
  ``max_batch``) into one :meth:`~repro.core.arbitrator.QoSArbitrator.
  admit_batch` call, riding the compiled one-call admission kernel when
  it is available.  Batch boundaries never change decisions (the batch
  API's equivalence contract), so coalescing is pure amortization.
* **Graceful degradation** — under overload the service degrades in
  order of honesty: QoS-class-aware **load shedding** (lower classes
  are turned away first, counted per class, never silently dropped) and
  **degraded-quality admission** (tunable jobs keep only their
  ``degrade_keep`` cheapest OR-paths — less work per job, so more jobs
  clear admission) before any outright failure.
* **Deadlines, retries, backoff** — every request carries a deadline;
  transient decision-worker failures are retried with exponential
  backoff plus seeded jitter; a permanently failing decision path
  *fail-stops* the service (unacked work is recovered from the WAL)
  instead of guessing.
* **Durability** — the write-ahead log (:mod:`repro.service.wal`)
  makes every ack crash-safe: effective jobs and decisions are fsync'd
  before clients see them, checkpoints bound replay time, and
  :func:`repro.service.recovery.recover` rebuilds the exact pre-crash
  schedule (bit-identical, auditor-verified) from the log.

Idempotency: requests carry client ``request_id``\\ s; a duplicate of a
pending request awaits the same future, and a duplicate of a decided one
is answered from the ledger without touching the arbitrator — which is
also how clients safely retry after a crash.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import time
from dataclasses import dataclass, field, replace
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING, Awaitable, Callable, Sequence

from repro.core.admission import AdmissionDecision
from repro.core.arbitrator import ArbitrationObjective, QoSArbitrator
from repro.core.policies import TieBreakPolicy
from repro.errors import (
    ConfigurationError,
    ServiceUnavailableError,
    TransientWorkerError,
)
from repro.model.job import Job
from repro.service.wal import LedgerEntry, WriteAheadLog, decision_to_tuple, write_checkpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.recovery import RecoveredState

__all__ = [
    "ServiceConfig",
    "ServiceOutcome",
    "ServiceDecision",
    "AdmissionService",
    "degrade_job",
    "make_arbitrator",
]

_SENTINEL = object()

_request_ids = itertools.count()


class ServiceOutcome(Enum):
    """What the service tells a client about its request."""

    #: Decided and committed: the job holds a reservation.
    ADMITTED = "admitted"
    #: Decided: no configuration was schedulable.
    REJECTED = "rejected"
    #: Turned away unprocessed under overload (QoS-class shedding).
    #: Not logged — the client may retry with the same request id.
    SHED = "shed"
    #: The request's deadline passed.  If ``decision`` is attached the
    #: outcome *was* decided (durably) after the client's patience ran
    #: out; a retry with the same request id returns it.
    TIMED_OUT = "timed-out"


@dataclass(frozen=True, slots=True)
class ServiceDecision:
    """The service's answer for one request."""

    request_id: str
    outcome: ServiceOutcome
    qos: int
    degraded: bool = False
    decision: AdmissionDecision | None = None
    seq: int | None = None
    late: bool = False

    @property
    def admitted(self) -> bool:
        return self.outcome is ServiceOutcome.ADMITTED


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Policy knobs for one :class:`AdmissionService`.

    ``shed_thresholds[c]`` is the ingress-queue occupancy fraction at or
    above which QoS class ``c`` (0 = highest) is shed; a value above 1.0
    means the class is never shed (it backpressures instead).  Classes
    beyond the tuple use its last entry.  ``degrade_occupancy`` is the
    occupancy at which tunable jobs are narrowed to their
    ``degrade_keep`` cheapest OR-paths before admission.

    The tie-break policy must be deterministic (``RANDOM`` is rejected):
    crash recovery replays the WAL through a *fresh* arbitrator and the
    replayed schedule must be bit-identical to the pre-crash one.
    """

    capacity: int
    malleable: bool = False
    objective: ArbitrationObjective = ArbitrationObjective.EARLIEST_FINISH
    policy: TieBreakPolicy = TieBreakPolicy.PAPER
    backend: str = "auto"
    prune: bool = True
    # Shed or timed-out requests may be retried after later-release jobs
    # were decided, so the service cannot promise the non-decreasing
    # release order that profile compaction requires.
    compact: bool = False
    queue_limit: int = 1024
    max_batch: int = 128
    shed_thresholds: tuple[float, ...] = (1.01, 0.85, 0.6)
    degrade_occupancy: float = 0.5
    degrade_keep: int = 1
    max_attempts: int = 4
    backoff_base: float = 0.002
    backoff_cap: float = 0.25
    backoff_jitter: float = 0.5
    default_timeout: float | None = None
    checkpoint_every: int = 0
    fsync: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.policy is TieBreakPolicy.RANDOM:
            raise ConfigurationError(
                "the admission service requires a deterministic tie-break "
                "policy (WAL replay must be bit-identical); RANDOM is not"
            )
        if self.queue_limit < 1 or self.max_batch < 1:
            raise ConfigurationError("queue_limit and max_batch must be >= 1")
        if self.degrade_keep < 1:
            raise ConfigurationError("degrade_keep must be >= 1")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")


def make_arbitrator(config: ServiceConfig) -> QoSArbitrator:
    """A fresh arbitrator configured exactly as the service (and replay) uses."""
    return QoSArbitrator(
        config.capacity,
        malleable=config.malleable,
        objective=config.objective,
        policy=config.policy,
        backend=config.backend,
        prune=config.prune,
        compact=config.compact,
        keep_placements=True,
    )


def _chain_cost(chain) -> float:
    return sum(t.processors * t.duration for t in chain.tasks)


def degrade_job(job: Job, keep: int) -> tuple[Job, bool]:
    """Narrow a tunable job to its ``keep`` cheapest OR-paths.

    Chains are ranked by total processor-time work (ties: fewer tasks,
    then original position) and the survivors keep their original
    relative order.  The returned job *is* what gets logged and offered —
    replay needs no knowledge that degradation happened, only the
    effective job.  Returns ``(job, False)`` unchanged when nothing can
    be dropped.
    """
    if len(job.chains) <= keep:
        return job, False
    order = sorted(
        range(len(job.chains)),
        key=lambda i: (_chain_cost(job.chains[i]), len(job.chains[i].tasks), i),
    )
    kept = sorted(order[:keep])
    return (
        Job(
            chains=tuple(job.chains[i] for i in kept),
            release=job.release,
            job_id=job.job_id,
            name=job.name,
        ),
        True,
    )


@dataclass(slots=True)
class _Pending:
    request_id: str
    qos: int
    job: Job
    future: asyncio.Future
    deadline: float | None  # absolute, on the service clock


#: Decision executor signature: must be atomic — either return the full
#: batch's decisions with the arbitrator updated, or raise
#: :class:`~repro.errors.TransientWorkerError` having changed nothing.
DecideFn = Callable[[QoSArbitrator, Sequence[Job]], "Sequence[AdmissionDecision]"]


def _default_decide(
    arbitrator: QoSArbitrator, jobs: Sequence[Job]
) -> Sequence[AdmissionDecision]:
    return arbitrator.admit_batch(list(jobs))


class AdmissionService:
    """Asyncio admission front-end over a durable decision ledger.

    Lifecycle: construct (optionally from a
    :class:`~repro.service.recovery.RecoveredState`), :meth:`start`,
    serve :meth:`submit` calls, then :meth:`stop` (graceful drain) or
    :meth:`kill` (simulated crash — the chaos harness's weapon).
    """

    def __init__(
        self,
        config: ServiceConfig,
        wal_dir: str | Path,
        *,
        recovered: "RecoveredState | None" = None,
        decide: DecideFn = _default_decide,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.clock = clock
        self._decide_fn = decide
        self._rng = random.Random(config.seed)
        self.wal = WriteAheadLog(wal_dir, fsync=config.fsync)
        self.entries: list[LedgerEntry] = []
        self._seen: dict[str, asyncio.Future | ServiceDecision] = {}
        self._seq = 0
        if recovered is not None:
            self.arbitrator = recovered.arbitrator
            self.entries = list(recovered.entries)
            self._seq = recovered.last_seq
            for entry, decision in zip(recovered.entries, recovered.decisions):
                self._seen[entry.request_id] = ServiceDecision(
                    request_id=entry.request_id,
                    outcome=ServiceOutcome.ADMITTED
                    if decision.admitted
                    else ServiceOutcome.REJECTED,
                    qos=entry.qos,
                    degraded=entry.degraded,
                    decision=decision,
                    seq=entry.seq,
                )
        else:
            self.arbitrator = make_arbitrator(config)
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=config.queue_limit)
        self._task: asyncio.Task | None = None
        self._stopping = False
        self._failed: str | None = None
        self._undecided_since_checkpoint = 0
        self.counters: dict[str, float] = {
            "submitted": 0,
            "acked": 0,
            "admitted": 0,
            "rejected": 0,
            "degraded": 0,
            "duplicates": 0,
            "shed": 0,
            "timed_out_queue": 0,
            "timed_out_backpressure": 0,
            "late_decisions": 0,
            "batches": 0,
            "batch_jobs": 0,
            "retries": 0,
            "retry_backoff_total": 0.0,
            "checkpoints": 0,
        }
        for cls in range(len(config.shed_thresholds)):
            self.counters[f"shed_class_{cls}"] = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the drain loop (requires a running event loop)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Graceful shutdown: drain the queue, decide everything, close."""
        self._stopping = True
        await self._queue.put(_SENTINEL)
        if self._task is not None:
            await self._task
            self._task = None
        self.wal.close()

    def kill(self) -> None:
        """Simulated crash: stop abruptly, resolve nothing, abandon the WAL.

        In-flight and queued requests are left unacked (their futures get
        :class:`~repro.errors.ServiceUnavailableError`) — exactly the
        client experience of a dying process; clients re-submit after
        recovery and idempotency answers what was already decided.
        """
        self._failed = "killed"
        if self._task is not None:
            self._task.cancel()
            self._task = None
        self._reject_all_pending("service crashed")
        self.wal.abandon()

    @property
    def running(self) -> bool:
        return self._task is not None and self._failed is None

    def _fail(self, reason: str) -> None:
        self._failed = reason
        self._reject_all_pending(reason)
        self.wal.abandon()

    def _reject_all_pending(self, reason: str) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is _SENTINEL:
                continue
            self._resolve_exception(item, reason)

    def _resolve_exception(self, pending: _Pending, reason: str) -> None:
        self._seen.pop(pending.request_id, None)
        if not pending.future.done():
            pending.future.set_exception(ServiceUnavailableError(reason))

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    async def submit(
        self,
        job: Job,
        *,
        qos: int = 0,
        timeout: float | None = None,
        request_id: str | None = None,
    ) -> ServiceDecision:
        """Request admission of ``job``; await the durable outcome."""
        future = await self.enqueue(
            job, qos=qos, timeout=timeout, request_id=request_id
        )
        return await asyncio.shield(future)

    async def enqueue(
        self,
        job: Job,
        *,
        qos: int = 0,
        timeout: float | None = None,
        request_id: str | None = None,
    ) -> "asyncio.Future[ServiceDecision]":
        """Admit-or-shed a request into the ingress queue; returns its future.

        This is the streaming half of :meth:`submit`: it applies dedup,
        shedding and backpressure, then hands back the future so callers
        can pipeline many requests before awaiting any decision.
        """
        if self._failed is not None or self._stopping:
            raise ServiceUnavailableError(
                self._failed or "service is shutting down"
            )
        loop = asyncio.get_running_loop()
        rid = request_id if request_id is not None else f"auto-{next(_request_ids)}"
        self.counters["submitted"] += 1
        prior = self._seen.get(rid)
        if prior is not None:
            self.counters["duplicates"] += 1
            if isinstance(prior, ServiceDecision):
                done: asyncio.Future = loop.create_future()
                done.set_result(prior)
                return done
            return prior

        timeout = timeout if timeout is not None else self.config.default_timeout
        deadline = None if timeout is None else self.clock() + timeout

        # QoS-class-aware shedding: cheap, pre-queue, never logged.
        occupancy = self._queue.qsize() / self.config.queue_limit
        thresholds = self.config.shed_thresholds
        threshold = thresholds[min(qos, len(thresholds) - 1)]
        if occupancy >= threshold:
            self.counters["shed"] += 1
            key = f"shed_class_{min(qos, len(thresholds) - 1)}"
            self.counters[key] = self.counters.get(key, 0) + 1
            done = loop.create_future()
            done.set_result(
                ServiceDecision(rid, ServiceOutcome.SHED, qos)
            )
            return done

        future: asyncio.Future = loop.create_future()
        pending = _Pending(rid, qos, job, future, deadline)
        self._seen[rid] = future
        try:
            if deadline is None:
                # Fast path: room in the queue, no deadline to arm —
                # skip the put() coroutine machinery entirely.
                if not self._queue.full():
                    self._queue.put_nowait(pending)
                else:
                    await self._queue.put(pending)
            else:
                await asyncio.wait_for(
                    self._queue.put(pending), max(0.0, deadline - self.clock())
                )
        except asyncio.TimeoutError:
            self._seen.pop(rid, None)
            self.counters["timed_out_backpressure"] += 1
            future.set_result(
                ServiceDecision(rid, ServiceOutcome.TIMED_OUT, qos)
            )
        return future

    def stats(self) -> dict[str, float]:
        """Honest service counters plus WAL and queue instrumentation."""
        out = dict(self.counters)
        out["wal_appends"] = self.wal.appends
        out["wal_syncs"] = self.wal.syncs
        out["queue_depth"] = self._queue.qsize()
        out["ledger_entries"] = len(self.entries)
        out["failed"] = int(self._failed is not None)
        return out

    # ------------------------------------------------------------------
    # Drain loop
    # ------------------------------------------------------------------

    async def _run(self) -> None:
        while True:
            if self._stopping and self._queue.empty():
                return
            item = await self._queue.get()
            if item is _SENTINEL:
                continue
            batch = [item]
            while len(batch) < self.config.max_batch:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is _SENTINEL:
                    continue
                batch.append(extra)
            try:
                await self._process(batch)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # Fail-stop: a decision path or WAL failure the retry
                # loop could not absorb.  Unacked work is in the WAL (or
                # never was, in which case clients retry); recovery owns
                # the rest.
                self._fail(f"service failed: {exc}")
                for pending in batch:
                    self._resolve_exception(pending, str(exc))
                return

    async def _process(self, batch: list[_Pending]) -> None:
        now = self.clock()
        live: list[_Pending] = []
        for pending in batch:
            if pending.deadline is not None and now > pending.deadline:
                self.counters["timed_out_queue"] += 1
                self._seen.pop(pending.request_id, None)
                if not pending.future.done():
                    pending.future.set_result(
                        ServiceDecision(
                            pending.request_id,
                            ServiceOutcome.TIMED_OUT,
                            pending.qos,
                        )
                    )
            else:
                live.append(pending)
        if not live:
            return

        # Degraded-quality admission under backlog: narrow OR-paths
        # *before* logging, so the WAL holds the effective jobs.
        occupancy = (
            len(live) + self._queue.qsize()
        ) / self.config.queue_limit
        degrade = occupancy >= self.config.degrade_occupancy
        new_entries: list[LedgerEntry] = []
        for pending in live:
            job, was_degraded = (
                degrade_job(pending.job, self.config.degrade_keep)
                if degrade
                else (pending.job, False)
            )
            if was_degraded:
                self.counters["degraded"] += 1
            self._seq += 1
            new_entries.append(
                LedgerEntry(
                    seq=self._seq,
                    request_id=pending.request_id,
                    qos=pending.qos,
                    degraded=was_degraded,
                    job=job,
                )
            )

        # Append-before-ack, step 1: the effective jobs.  Durability is
        # deferred to the decision append's fsync — no ack happens before
        # that, and a crash in between loses only unacked work.
        self.wal.append_jobs(new_entries, sync=False)
        self._undecided_since_checkpoint += len(new_entries)

        decisions = await self._decide_with_retry(
            [entry.job for entry in new_entries]
        )

        # Append-before-ack, step 2: the decisions; the one fsync hardens
        # both records of the batch.
        tuples = [decision_to_tuple(d) for d in decisions]
        self.wal.append_decisions([e.seq for e in new_entries], tuples)
        for entry, tup in zip(new_entries, tuples):
            entry.decision = tup
        self.entries.extend(new_entries)
        self.counters["batches"] += 1
        self.counters["batch_jobs"] += len(new_entries)

        # Ack.  Counters are tallied locally and folded in once after the
        # loop — this runs for every decision the service ever makes.
        now = self.clock()
        seen = self._seen
        admitted = late = 0
        for pending, entry, decision in zip(live, new_entries, decisions):
            if decision.admitted:
                outcome = ServiceOutcome.ADMITTED
                admitted += 1
            else:
                outcome = ServiceOutcome.REJECTED
            answer = ServiceDecision(
                request_id=entry.request_id,
                outcome=outcome,
                qos=entry.qos,
                degraded=entry.degraded,
                decision=decision,
                seq=entry.seq,
            )
            seen[entry.request_id] = answer
            if pending.deadline is not None and now > pending.deadline:
                # Decided — durably — after the client's patience ran out.
                late += 1
                answer = replace(
                    answer, outcome=ServiceOutcome.TIMED_OUT, late=True
                )
            if not pending.future.done():
                pending.future.set_result(answer)
        self.counters["acked"] += len(new_entries)
        self.counters["admitted"] += admitted
        self.counters["rejected"] += len(new_entries) - admitted
        self.counters["late_decisions"] += late

        if (
            self.config.checkpoint_every
            and self._undecided_since_checkpoint >= self.config.checkpoint_every
        ):
            self.checkpoint()

    async def _decide_with_retry(
        self, jobs: Sequence[Job]
    ) -> Sequence[AdmissionDecision]:
        attempt = 0
        while True:
            try:
                return self._decide_fn(self.arbitrator, jobs)
            except TransientWorkerError as exc:
                attempt += 1
                self.counters["retries"] += 1
                if attempt >= self.config.max_attempts:
                    raise ServiceUnavailableError(
                        f"decision path failed {attempt} consecutive "
                        f"attempts; failing stop (last: {exc})"
                    ) from exc
                delay = min(
                    self.config.backoff_cap,
                    self.config.backoff_base * (2 ** (attempt - 1)),
                )
                delay *= 1.0 + self.config.backoff_jitter * self._rng.random()
                self.counters["retry_backoff_total"] += delay
                await asyncio.sleep(delay)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> Path:
        """Snapshot the decided ledger and truncate the WAL."""
        assert all(e.decision is not None for e in self.entries)
        path = write_checkpoint(self.wal.directory, self.entries)
        self.wal.truncate()
        self.counters["checkpoints"] += 1
        self._undecided_since_checkpoint = 0
        return path
