"""The write-ahead decision log (WAL) behind the admission service.

Durability contract (**append-before-ack**): a client is only ever acked
an admission decision after (1) the *effective job* it was decided on and
(2) the decision itself are on stable storage.  Both are appended to
``wal.log`` and fsync'd *before* the service resolves the client future —
so any acked decision survives a crash, and recovery can rebuild the
arbitrator's exact in-memory schedule by replaying the log
(:mod:`repro.service.recovery`).

File format
-----------

``wal.log`` is a line-oriented log.  Each record is one line::

    <crc32 as 8 hex chars> <compact JSON body>\n

The CRC covers the JSON body bytes, so a torn append (crash mid-write)
is detected as either a line without a trailing newline or a checksum
mismatch **on the final line** — both are legitimate crash artifacts and
recovery truncates them.  A bad record *followed by valid records* can
only mean real corruption and raises
:class:`~repro.errors.WalCorruptionError` instead of being papered over.

Record kinds:

``jobs``
    ``{"k":"jobs","jobs":[{"seq":N,"rid":...,"cls":C,"deg":0|1,
    "job":[...]},...]}`` — one ingress batch of *effective* jobs
    (post-degrade, i.e. exactly what the arbitrator will be offered),
    each with its monotonically increasing ledger sequence number,
    client request id, QoS class and the compact positional job encoding
    (see ``_job_to_wire``).  The whole batch is a single framed record —
    one ``json.dumps``, one CRC, one ``os.write`` — appended before the
    decision is made.  (A legacy per-job ``"k":"job"`` record is still
    understood on read.)
``dec``
    ``{"k":"dec","seqs":[...],"dec":[...]}`` — the decision batch for
    previously logged jobs.  Each decision is the canonical tuple
    ``[admitted, chain_index, [[start, width, duration], ...]]`` (floats
    round-trip exactly through JSON: Python prints shortest round-trip
    reprs).  Appended and fsync'd before any future in the batch is
    resolved; that one fsync also hardens the batch's ``jobs`` record,
    which is written earlier but only needs to be durable before the
    first ack.

Checkpoints
-----------

``checkpoint.json`` snapshots the complete decided ledger (all entries
since the origin) plus the highest sequence number it covers.  It is
written atomically (temp file + ``os.replace``) with a whole-payload
SHA-256, after which ``wal.log`` is truncated to empty.  Recovery loads
the checkpoint first and ignores WAL records with ``seq <=
through_seq`` — so a crash *between* checkpoint write and log truncation
replays idempotently.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import zlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Mapping, Sequence

from repro.core.admission import AdmissionDecision
from repro.core.resources import ProcessorTimeRequest
from repro.errors import WalCorruptionError
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec

__all__ = [
    "WAL_VERSION",
    "DecisionTuple",
    "decision_to_tuple",
    "LedgerEntry",
    "WriteAheadLog",
    "read_wal",
    "read_checkpoint",
    "write_checkpoint",
]

WAL_VERSION = 1

#: ``(admitted, chain_index | None, ((start, width, duration), ...))`` —
#: the canonical bit-exact decision fingerprint, the same shape the
#: differential fuzzer digests (:mod:`repro.verify.fuzz`).
DecisionTuple = tuple[bool, int | None, tuple[tuple[float, int, float], ...]]


def decision_to_tuple(decision: AdmissionDecision) -> DecisionTuple:
    """Canonical ledger form of one admission decision."""
    if decision.admitted and decision.placement is not None:
        cp = decision.placement
        return (
            True,
            cp.chain_index,
            tuple((pl.start, pl.processors, pl.duration) for pl in cp.placements),
        )
    return (False, None, ())


def _job_to_wire(job: Job) -> list[object]:
    """Compact positional encoding of one job.

    The WAL logs every request's effective job, so its encoding is on the
    ack critical path; positional lists (no repeated keys) keep the
    per-job byte and ``json.dumps`` cost a fraction of the archival
    :func:`repro.sim.persistence.job_to_dict` form.  Shape::

        [job_id, release, name, [[label, params|null, [[task_name,
            processors, duration, deadline|null, quality,
            max_concurrency], ...]], ...]]
    """
    return [
        job.job_id,
        job.release,
        job.name,
        [
            [
                chain.label,
                dict(chain.params) if chain.params else None,
                [
                    [
                        t.name,
                        t.request.processors,
                        t.request.duration,
                        None if math.isinf(t.deadline) else t.deadline,
                        t.quality,
                        t.max_concurrency,
                    ]
                    for t in chain.tasks
                ],
            ]
            for chain in job.chains
        ],
    ]


def _job_from_wire(data: Sequence[object]) -> Job:
    job_id, release, name, chains = data
    return Job(
        chains=tuple(
            TaskChain(
                tuple(
                    TaskSpec(
                        str(tname),
                        ProcessorTimeRequest(int(procs), float(dur)),
                        deadline=math.inf if dl is None else float(dl),
                        quality=float(q),
                        max_concurrency=int(mc),
                    )
                    for tname, procs, dur, dl, q, mc in tasks
                ),
                label=str(label),
                params=params,  # type: ignore[arg-type]
            )
            for label, params, tasks in chains  # type: ignore[union-attr]
        ),
        release=float(release),  # type: ignore[arg-type]
        job_id=int(job_id),  # type: ignore[arg-type]
        name=str(name),
    )


def _tuple_to_wire(tup: DecisionTuple) -> list[object]:
    return [tup[0], tup[1], [list(p) for p in tup[2]]]


def _tuple_from_wire(data: Sequence[object]) -> DecisionTuple:
    admitted, chain, placements = data
    return (
        bool(admitted),
        None if chain is None else int(chain),
        tuple(
            (float(s), int(p), float(d))
            for s, p, d in placements  # type: ignore[union-attr]
        ),
    )


@dataclass(slots=True)
class LedgerEntry:
    """One durable admission: the effective job and (once made) its decision.

    ``degraded`` marks jobs whose OR-path set was narrowed under overload
    *before* logging — the logged job is the degraded one, so replay needs
    no knowledge of the load situation that caused it.  ``decision`` is
    ``None`` for a job logged but not yet decided (the crash-mid-decision
    window); recovery re-decides those.
    """

    seq: int
    request_id: str
    qos: int
    degraded: bool
    job: Job
    decision: DecisionTuple | None = None

    def job_record(self) -> dict[str, object]:
        return {
            "k": "job",
            "seq": self.seq,
            "rid": self.request_id,
            "cls": self.qos,
            "deg": int(self.degraded),
            "job": _job_to_wire(self.job),
        }

    @staticmethod
    def from_job_record(body: Mapping[str, object]) -> "LedgerEntry":
        return LedgerEntry(
            seq=int(body["seq"]),  # type: ignore[arg-type]
            request_id=str(body["rid"]),
            qos=int(body["cls"]),  # type: ignore[arg-type]
            degraded=bool(body["deg"]),
            job=_job_from_wire(body["job"]),  # type: ignore[arg-type]
        )


def _frame(body: bytes) -> bytes:
    return b"%08x " % (zlib.crc32(body) & 0xFFFFFFFF) + body + b"\n"


#: Hot-path encoder: no circular-reference bookkeeping (wire structures
#: are trees by construction), no ASCII escaping (UTF-8 on disk).
_dumps = json.JSONEncoder(
    separators=(",", ":"), check_circular=False, ensure_ascii=False
).encode


def _encode(record: Mapping[str, object]) -> bytes:
    return _frame(_dumps(record).encode("utf-8"))


def _quote(s: str) -> str:
    """JSON string literal; inline for the common escape-free case."""
    if '"' in s or "\\" in s or not s.isprintable():
        return _dumps(s)
    return f'"{s}"'


_CHAIN_CACHE_LIMIT = 4096

#: Chain -> JSON-fragment cache, keyed by ``id`` with the chain itself
#: held as a strong reference — so a cached id can never be recycled by a
#: different object while its entry exists, making the identity check
#: sound.  Generators that stamp out many jobs from one template share
#: chain objects (e.g. :meth:`repro.workloads.synthetic.SyntheticParams.
#: _chains`), which turns the per-job chain encoding — the dominant WAL
#: append cost — into a dict hit.  Chains are immutable by convention;
#: mutating one after it was logged is undefined behaviour everywhere in
#: this codebase, the cache merely shares that assumption.
_chain_json_cache: dict[int, tuple[TaskChain, str]] = {}


def _chain_json(chain: TaskChain) -> str:
    hit = _chain_json_cache.get(id(chain))
    if hit is not None and hit[0] is chain:
        return hit[1]
    fragment = _dumps(
        [
            chain.label,
            dict(chain.params) if chain.params else None,
            [
                [
                    t.name,
                    t.request.processors,
                    t.request.duration,
                    None if math.isinf(t.deadline) else t.deadline,
                    t.quality,
                    t.max_concurrency,
                ]
                for t in chain.tasks
            ],
        ]
    )
    if len(_chain_json_cache) >= _CHAIN_CACHE_LIMIT:
        _chain_json_cache.clear()
    _chain_json_cache[id(chain)] = (chain, fragment)
    return fragment


def _entry_json(e: "LedgerEntry") -> str:
    """One job body, byte-identical to ``_dumps(e.job_record())``.

    Assembled from cached chain fragments instead of re-serializing the
    whole job: floats use ``repr`` (exactly what the JSON encoder emits)
    and strings go through :func:`_quote`, so the output stays
    bit-compatible with the reference dict encoding — which the WAL test
    suite asserts.
    """
    job = e.job
    return (
        f'{{"k":"job","seq":{e.seq},"rid":{_quote(e.request_id)},'
        f'"cls":{e.qos},"deg":{1 if e.degraded else 0},'
        f'"job":[{job.job_id},{job.release!r},{_quote(job.name)},'
        f'[{",".join([_chain_json(c) for c in job.chains])}]]}}'
    )


class WriteAheadLog:
    """Append-only fsync'd record log over a raw file descriptor.

    Raw ``os.write`` (no Python-level buffering) keeps crash semantics
    honest: once an append call returns, the bytes are in the OS; after
    :meth:`sync` they are on stable storage.  The chaos harness arms
    :attr:`partial_write_after` to make the *n*-th append from now write
    only a prefix of its record and then raise ``OSError`` — the
    kill-mid-append fault recovery must tolerate.
    """

    def __init__(self, directory: str | Path, *, fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / "wal.log"
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self.fsync = fsync
        self.appends = 0
        self.syncs = 0
        #: Chaos fail-point: when set to ``n``, the ``n``-th append from
        #: now writes ``partial_write_fraction`` of its bytes, then raises.
        self.partial_write_after: int | None = None
        self.partial_write_fraction: float = 0.5

    # ------------------------------------------------------------------

    def _append(self, data: bytes) -> None:
        self.appends += 1
        if self.partial_write_after is not None:
            self.partial_write_after -= 1
            if self.partial_write_after <= 0:
                self.partial_write_after = None
                keep = max(1, int(len(data) * self.partial_write_fraction))
                os.write(self._fd, data[:keep])
                raise OSError(
                    "injected crash: WAL append torn after "
                    f"{keep}/{len(data)} bytes"
                )
        os.write(self._fd, data)

    def sync(self) -> None:
        if self.fsync:
            os.fsync(self._fd)
            self.syncs += 1

    def append_jobs(
        self, entries: Sequence[LedgerEntry], *, sync: bool = True
    ) -> None:
        """Log a batch of effective jobs (one write; fsync unless deferred).

        The whole batch is one framed record — one ``json.dumps``, one
        CRC, one ``os.write`` — which keeps the per-job WAL cost small
        relative to the decision it protects.  A torn append therefore
        loses the entire batch, which is exactly the right unit: none of
        its requests were acked yet.  ``sync=False`` defers durability to
        the batch's :meth:`append_decisions` fsync (nothing is acked in
        between, so append-before-ack still holds).

        The body is assembled from per-chain cached JSON fragments
        (:func:`_entry_json`) — byte-identical to encoding
        ``{"k": "jobs", "jobs": [e.job_record() for e in entries]}``,
        but an order of magnitude cheaper when jobs share chain objects.
        """
        body = (
            '{"k":"jobs","jobs":['
            + ",".join([_entry_json(e) for e in entries])
            + "]}"
        )
        self._append(_frame(body.encode("utf-8")))
        if sync:
            self.sync()

    def append_decisions(
        self, seqs: Sequence[int], decisions: Sequence[DecisionTuple]
    ) -> None:
        """Durably log one decision batch for previously logged jobs."""
        record = {
            "k": "dec",
            "seqs": list(seqs),
            "dec": [_tuple_to_wire(t) for t in decisions],
        }
        self._append(_encode(record))
        self.sync()

    def truncate(self) -> None:
        """Empty the log (post-checkpoint); durable immediately."""
        os.ftruncate(self._fd, 0)
        self.sync()

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def abandon(self) -> None:
        """Simulated crash: drop the descriptor without flushing/closing
        niceties (``os.close`` only — what a dying process gets)."""
        self.close()


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


def _parse_line(line: bytes) -> dict[str, object] | None:
    """Decode one framed record; ``None`` when the frame is damaged."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    body = line[9:]
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(body)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def read_wal(
    path: str | Path, *, repair: bool = False
) -> tuple[list[dict[str, object]], int]:
    """Parse ``wal.log`` into records, tolerating a torn tail.

    Returns ``(records, truncated_bytes)``.  A damaged record is accepted
    only as the *final* frame (the partial-append crash artifact); with
    ``repair=True`` the file is physically truncated back to the good
    prefix.  Damage followed by valid records raises
    :class:`~repro.errors.WalCorruptionError`.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    data = path.read_bytes()
    records: list[dict[str, object]] = []
    offset = 0
    good_end = 0
    truncated = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            truncated = len(data) - offset  # torn tail: no newline
            break
        line = data[offset:newline]
        record = _parse_line(line)
        if record is None:
            # Only acceptable as the final frame of the file.
            if newline != len(data) - 1:
                raise WalCorruptionError(
                    f"{path}: damaged record at byte {offset} is followed "
                    "by later records — log is corrupt beyond a torn tail"
                )
            truncated = len(data) - offset
            break
        records.append(record)
        offset = newline + 1
        good_end = offset
    if truncated and repair:
        with open(path, "r+b") as fh:
            fh.truncate(good_end)
            fh.flush()
            os.fsync(fh.fileno())
    return records, truncated


def records_to_entries(
    records: Sequence[Mapping[str, object]],
    *,
    min_seq: int = 0,
) -> list[LedgerEntry]:
    """Fold raw WAL records into ordered, deduplicated ledger entries.

    ``min_seq`` drops job records already covered by a checkpoint.
    Replay is idempotent: a duplicate ``seq`` (the service re-appending
    after a recovery) keeps the first occurrence; a ``dec`` record for an
    entry that already has a decision must agree with it.
    """
    by_seq: dict[int, LedgerEntry] = {}
    for record in records:
        kind = record.get("k")
        if kind == "job" or kind == "jobs":
            bodies = record["jobs"] if kind == "jobs" else (record,)
            for body in bodies:  # type: ignore[union-attr]
                entry = LedgerEntry.from_job_record(body)
                if entry.seq > min_seq and entry.seq not in by_seq:
                    by_seq[entry.seq] = entry
        elif kind == "dec":
            seqs = record["seqs"]
            decisions = record["dec"]
            for seq, wire in zip(seqs, decisions):  # type: ignore[arg-type]
                seq = int(seq)  # type: ignore[arg-type]
                if seq <= min_seq:
                    continue
                entry = by_seq.get(seq)
                if entry is None:
                    raise WalCorruptionError(
                        f"decision record references unknown seq {seq}"
                    )
                tup = _tuple_from_wire(wire)  # type: ignore[arg-type]
                if entry.decision is None:
                    entry.decision = tup
                elif entry.decision != tup:
                    raise WalCorruptionError(
                        f"conflicting decisions logged for seq {seq}"
                    )
        else:
            raise WalCorruptionError(f"unknown WAL record kind {kind!r}")
    return [by_seq[seq] for seq in sorted(by_seq)]


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------


def _checkpoint_payload(entries: Sequence[LedgerEntry]) -> dict[str, object]:
    return {
        "version": WAL_VERSION,
        "through_seq": max((e.seq for e in entries), default=0),
        "entries": [
            {
                **e.job_record(),
                "dec": None if e.decision is None else _tuple_to_wire(e.decision),
            }
            for e in entries
        ],
    }


def write_checkpoint(
    directory: str | Path, entries: Sequence[LedgerEntry]
) -> Path:
    """Atomically snapshot the decided ledger; returns the checkpoint path.

    Entries without decisions are *excluded* (they are still only in the
    WAL, which is truncated up to ``through_seq`` — an undecided entry
    must never be checkpoint-hidden below that watermark, so callers
    checkpoint only decided prefixes; :meth:`AdmissionService.checkpoint`
    enforces this).
    """
    directory = Path(directory)
    payload = _checkpoint_payload(entries)
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    wrapper = {"sha256": hashlib.sha256(blob.encode()).hexdigest(), "data": payload}
    tmp = directory / "checkpoint.json.tmp"
    path = directory / "checkpoint.json"
    tmp.write_text(json.dumps(wrapper, separators=(",", ":")) + "\n")
    with open(tmp, "rb") as fh:
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def read_checkpoint(
    directory: str | Path,
) -> tuple[list[LedgerEntry], int]:
    """Load ``checkpoint.json``; returns ``(entries, through_seq)``.

    A missing checkpoint is the empty ledger.  A checksum or version
    mismatch raises :class:`~repro.errors.WalCorruptionError` — a damaged
    checkpoint silently ignored would silently drop acked decisions.
    """
    path = Path(directory) / "checkpoint.json"
    if not path.exists():
        return [], 0
    try:
        wrapper = json.loads(path.read_text())
        payload = wrapper["data"]
        blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        if hashlib.sha256(blob.encode()).hexdigest() != wrapper["sha256"]:
            raise WalCorruptionError(f"{path}: checkpoint checksum mismatch")
    except WalCorruptionError:
        raise
    except (ValueError, KeyError, TypeError) as exc:
        raise WalCorruptionError(f"{path}: unreadable checkpoint: {exc}") from exc
    if payload.get("version") != WAL_VERSION:
        raise WalCorruptionError(
            f"{path}: unsupported checkpoint version {payload.get('version')!r}"
        )
    entries = []
    for item in payload["entries"]:
        entry = LedgerEntry.from_job_record(item)
        if item.get("dec") is not None:
            entry = replace(entry, decision=_tuple_from_wire(item["dec"]))
        entries.append(entry)
    return entries, int(payload["through_seq"])
