"""Chaos harness for the admission service.

Every scenario runs the full fault → crash → recover → verify loop:

1. **Drive** a seeded random workload through a live
   :class:`~repro.service.service.AdmissionService` while injecting
   faults — transient/permanent decision-worker failures, decision-path
   delays, duplicate and dropped (fire-and-forget) requests, tight
   deadlines, kill-mid-WAL-append partial writes, and outright process
   kills.
2. **Recover** from the WAL directory the crash left behind.
3. **Verify** the robustness contract:

   * *acked durability* — every decision a client was acked survives in
     the recovered ledger with a bit-identical fingerprint, and no
     negatively-acked (shed / timed-out-unqueued) request was logged;
   * *replay identity* — the recovered ledger is bit-identical to a
     fault-free serial :class:`~repro.core.arbitrator.QoSArbitrator` run
     over the same effective jobs, and the recovered schedule passes the
     independent :class:`~repro.verify.auditor.ScheduleAuditor` with
     zero violations (both enforced inside
     :func:`repro.service.recovery.recover`);
   * *idempotence* — recovering twice yields the identical ledger;
   * *completability* — a service restarted from the recovered state
     answers client retries idempotently and decides everything the
     faults interrupted, and the *final* ledger recovers clean too.

Run the committed scenario set (CI's chaos-smoke gate)::

    PYTHONPATH=src python -m repro.service.chaos

or a rotating-seed campaign (nightly)::

    PYTHONPATH=src python -m repro.service.chaos --rotate $RUN_NUMBER \
        --reproducers chaos-failures/
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Sequence

from repro.core.arbitrator import QoSArbitrator
from repro.errors import (
    ReproError,
    ServiceUnavailableError,
    TransientWorkerError,
)
from repro.model.job import Job
from repro.service.recovery import RecoveredState, recover
from repro.service.service import AdmissionService, ServiceConfig
from repro.service.wal import decision_to_tuple
from repro.verify.fuzz import _random_chain

__all__ = [
    "ChaosScenario",
    "ChaosResult",
    "SCENARIOS",
    "chaos_workload",
    "run_scenario",
    "run_campaign",
    "main",
]


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ChaosScenario:
    """One seeded, fully reproducible fault script.

    ``partial_write_after`` arms the WAL fail-point on the *n*-th append:
    odd values land mid-job-append, even values mid-decision-append (the
    service alternates job and decision appends), covering both halves of
    the crash-mid-decision window.  ``crash_after_acks`` kills the whole
    service once that many decisions were acked.  ``permanent_fail_after``
    turns the decision path permanently faulty after N successful batches,
    exercising retry-exhaustion fail-stop.
    """

    name: str
    seed: int
    n_jobs: int = 24
    malleable: bool = False
    qos_classes: int = 3
    dup_prob: float = 0.0
    drop_prob: float = 0.0
    worker_fail_prob: float = 0.0
    worker_delay_prob: float = 0.0
    tight_deadline_share: float = 0.0
    tight_timeout: float = 0.002
    partial_write_after: int | None = None
    partial_write_fraction: float = 0.5
    crash_after_acks: int | None = None
    permanent_fail_after: int | None = None
    queue_limit: int = 64
    max_batch: int = 4
    checkpoint_every: int = 0
    degrade_occupancy: float = 9.0
    shed_thresholds: tuple[float, ...] = (9.0,)
    yield_spins: int = 3
    graceful: bool = True

    def config(self, capacity: int) -> ServiceConfig:
        return ServiceConfig(
            capacity=capacity,
            malleable=self.malleable,
            queue_limit=self.queue_limit,
            max_batch=self.max_batch,
            shed_thresholds=self.shed_thresholds,
            degrade_occupancy=self.degrade_occupancy,
            checkpoint_every=self.checkpoint_every,
            # Keep injected-retry storms fast but still exercise real sleeps.
            backoff_base=0.0002,
            backoff_cap=0.002,
            seed=self.seed,
        )


def _s(name: str, seed: int, **kw) -> ChaosScenario:
    return ChaosScenario(name=name, seed=seed, **kw)


#: The committed scenario set — CI's chaos-smoke gate runs all of them.
SCENARIOS: tuple[ChaosScenario, ...] = (
    _s("baseline-small", 101, n_jobs=8),
    _s("baseline-large-batches", 102, n_jobs=40, max_batch=16),
    _s("dup-storm", 103, dup_prob=0.5),
    _s("dropped-clients", 104, drop_prob=0.4),
    _s("transient-workers", 105, worker_fail_prob=0.3),
    _s("slow-workers", 106, n_jobs=16, worker_delay_prob=0.5),
    _s("tight-deadlines", 107, tight_deadline_share=0.4, tight_timeout=0.001),
    _s(
        "overload-shed",
        108,
        n_jobs=48,
        queue_limit=6,
        max_batch=2,
        yield_spins=0,
        shed_thresholds=(1.01, 0.7, 0.4),
    ),
    _s(
        "degrade-under-load",
        109,
        n_jobs=32,
        queue_limit=12,
        yield_spins=0,
        degrade_occupancy=0.25,
    ),
    _s("torn-job-append", 110, partial_write_after=3),
    _s("torn-decision-append", 111, partial_write_after=4),
    _s("torn-first-append", 112, n_jobs=12, partial_write_after=1,
       partial_write_fraction=0.1),
    _s("torn-late-append", 113, n_jobs=40, partial_write_after=9,
       partial_write_fraction=0.9),
    _s("kill-early", 114, crash_after_acks=3, graceful=False),
    _s("kill-mid", 115, n_jobs=32, crash_after_acks=12, graceful=False),
    _s("worker-outage-failstop", 116, permanent_fail_after=3),
    _s("checkpoint-then-kill", 117, n_jobs=32, checkpoint_every=8,
       crash_after_acks=20, graceful=False),
    _s("checkpoint-then-torn", 118, n_jobs=32, checkpoint_every=6,
       partial_write_after=11),
    _s("malleable-baseline", 119, n_jobs=20, malleable=True),
    _s("malleable-kill", 120, malleable=True, crash_after_acks=8,
       graceful=False),
    _s("malleable-torn-decision", 121, malleable=True, partial_write_after=6),
    _s(
        "kitchen-sink-kill",
        122,
        n_jobs=48,
        dup_prob=0.3,
        drop_prob=0.2,
        worker_fail_prob=0.2,
        tight_deadline_share=0.2,
        checkpoint_every=10,
        crash_after_acks=18,
        graceful=False,
    ),
    _s(
        "kitchen-sink-torn",
        123,
        n_jobs=40,
        dup_prob=0.25,
        drop_prob=0.15,
        worker_fail_prob=0.15,
        checkpoint_every=8,
        partial_write_after=7,
    ),
)


# ---------------------------------------------------------------------------
# Workload + fault injection
# ---------------------------------------------------------------------------


def chaos_workload(
    rng: random.Random, n_jobs: int, malleable: bool
) -> tuple[int, list[Job]]:
    """Seeded release-ordered workload sized for one scenario."""
    capacity = rng.randint(3, 8)
    jobs: list[Job] = []
    release = 0.0
    for j in range(n_jobs):
        release += round(rng.uniform(0.0, 6.0), 3)
        chains = tuple(
            _random_chain(rng, capacity, malleable, f"j{j}c{c}")
            for c in range(rng.randint(1, 3))
        )
        jobs.append(Job(chains=chains, release=release))
    return capacity, jobs


class ChaoticDecider:
    """Fault-injecting decision path, fail-before-side-effect by design."""

    def __init__(self, scenario: ChaosScenario, rng: random.Random) -> None:
        self.scenario = scenario
        self.rng = rng
        self.batches = 0
        self.injected_failures = 0

    def __call__(
        self, arbitrator: QoSArbitrator, jobs: Sequence[Job]
    ) -> Sequence[object]:
        s = self.scenario
        if (
            s.permanent_fail_after is not None
            and self.batches >= s.permanent_fail_after
        ):
            self.injected_failures += 1
            raise TransientWorkerError("injected permanent worker outage")
        if s.worker_fail_prob and self.rng.random() < s.worker_fail_prob:
            self.injected_failures += 1
            raise TransientWorkerError("injected transient worker crash")
        if s.worker_delay_prob and self.rng.random() < s.worker_delay_prob:
            time.sleep(self.rng.uniform(0.0, 0.002))
        decisions = arbitrator.admit_batch(list(jobs))
        self.batches += 1
        return decisions


# ---------------------------------------------------------------------------
# Running one scenario
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class ChaosResult:
    """Outcome + honest accounting for one scenario run."""

    scenario: str
    seed: int
    ok: bool
    failures: tuple[str, ...]
    crash: str  # "none" | "killed" | "failstop"
    entries: int
    redecided: int
    truncated_bytes: int
    stats: dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        flag = "ok  " if self.ok else "FAIL"
        line = (
            f"{flag} {self.scenario:<24} crash={self.crash:<8} "
            f"ledger={self.entries:<3} redecided={self.redecided} "
            f"torn={self.truncated_bytes}B "
            f"acked={int(self.stats.get('acked', 0))} "
            f"shed={int(self.stats.get('shed', 0))} "
            f"degraded={int(self.stats.get('degraded', 0))} "
            f"retries={int(self.stats.get('retries', 0))}"
        )
        return "\n".join([line] + [f"     !! {f}" for f in self.failures])


def _swallow(future: asyncio.Future) -> None:
    if not future.cancelled():
        future.exception()


async def _drive(
    scenario: ChaosScenario,
    config: ServiceConfig,
    wal_dir: Path,
    jobs: Sequence[Job],
    rng: random.Random,
) -> tuple[dict[str, object], dict[str, float], str, set[str]]:
    """Phase A: live service under fault injection.  Returns
    ``(acked_by_rid, stats, crash_kind, dup_rids)``."""
    decider = ChaoticDecider(scenario, rng)
    service = AdmissionService(config, wal_dir, decide=decider)
    if scenario.partial_write_after is not None:
        service.wal.partial_write_after = scenario.partial_write_after
        service.wal.partial_write_fraction = scenario.partial_write_fraction
    service.start()
    futures: dict[str, asyncio.Future] = {}
    dup_rids: set[str] = set()
    crash = "none"
    for i, job in enumerate(jobs):
        rid = f"req-{i}"
        qos = rng.randrange(scenario.qos_classes)
        timeout = (
            scenario.tight_timeout
            if rng.random() < scenario.tight_deadline_share
            else None
        )
        try:
            fut = await service.enqueue(
                job, qos=qos, timeout=timeout, request_id=rid
            )
            if rng.random() < scenario.dup_prob:
                dup_rids.add(rid)
                dup = await service.enqueue(job, qos=qos, request_id=rid)
                dup.add_done_callback(_swallow)
        except ServiceUnavailableError:
            crash = "failstop"
            break
        if rng.random() < scenario.drop_prob:
            # Fire-and-forget client: never awaits its answer.  The
            # decision still lands in the ledger.
            fut.add_done_callback(_swallow)
        else:
            futures[rid] = fut
        for _ in range(scenario.yield_spins):
            await asyncio.sleep(0)
        if (
            scenario.crash_after_acks is not None
            and service.counters["acked"] >= scenario.crash_after_acks
        ):
            service.kill()
            crash = "killed"
            break
    if crash == "none":
        if service.running:
            await service.stop()
        # The decision path may have fail-stopped after the last enqueue
        # (e.g. retry exhaustion racing the graceful drain).
        if service.stats()["failed"]:
            crash = "failstop"
    acked: dict[str, object] = {}
    for rid, fut in futures.items():
        if not fut.done():
            fut.add_done_callback(_swallow)
            continue
        if fut.cancelled() or fut.exception() is not None:
            continue
        acked[rid] = fut.result()
    return acked, service.stats(), crash, dup_rids


async def _finish(
    config: ServiceConfig,
    wal_dir: Path,
    state: RecoveredState,
    jobs: Sequence[Job],
) -> list[object]:
    """Phase D: restart from recovered state; every client retries."""
    service = AdmissionService(config, wal_dir, recovered=state)
    service.start()
    outcomes = []
    for i, job in enumerate(jobs):
        outcomes.append(
            await service.submit(job, request_id=f"req-{i}")
        )
    await service.stop()
    return outcomes


def _ledger_fingerprint(state: RecoveredState) -> list[tuple]:
    return [(e.seq, e.request_id, e.decision) for e in state.entries]


def run_scenario(
    scenario: ChaosScenario, wal_dir: str | Path | None = None
) -> ChaosResult:
    """Run one scenario end to end; never raises, reports failures."""
    rng = random.Random(scenario.seed)
    capacity, jobs = chaos_workload(rng, scenario.n_jobs, scenario.malleable)
    config = scenario.config(capacity)
    # Fault-free settings for recovery-side replays and the retry run:
    # same arbitrator-relevant fields, no shedding/degrading/checkpoints.
    calm = replace(
        config,
        queue_limit=4 * scenario.n_jobs + 16,
        max_batch=8,
        shed_thresholds=(9.0,),
        degrade_occupancy=9.0,
        checkpoint_every=0,
    )
    failures: list[str] = []
    crash = "none"
    entries = redecided = truncated = 0
    stats: dict[str, float] = {}
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(wal_dir) if wal_dir is not None else Path(tmp)
        try:
            acked, stats, crash, dup_rids = asyncio.run(
                _drive(scenario, config, directory, jobs, rng)
            )

            # Phase B: recover (replay-identity + auditor enforced inside).
            state = recover(directory, calm)
            entries, redecided, truncated = (
                len(state.entries),
                state.redecided,
                state.truncated_bytes,
            )

            # Acked durability.
            by_rid = {e.request_id: e for e in state.entries}
            for rid, sd in acked.items():
                if sd.decision is not None:
                    entry = by_rid.get(rid)
                    if entry is None:
                        failures.append(f"acked decision for {rid} lost")
                    elif entry.decision != decision_to_tuple(sd.decision):
                        failures.append(
                            f"acked decision for {rid} mutated: ledger "
                            f"{entry.decision!r} != acked "
                            f"{decision_to_tuple(sd.decision)!r}"
                        )
                elif rid in by_rid and rid not in dup_rids:
                    # A duplicate submission may legitimately decide a
                    # request whose first attempt was negatively acked
                    # (that *is* the supported retry path) — but absent
                    # one, a shed/timed-out request must never be logged.
                    failures.append(
                        f"{rid} was negatively acked ({sd.outcome.value}) "
                        "yet logged"
                    )

            # Phase C: idempotent double recovery.
            state2 = recover(directory, calm)
            if _ledger_fingerprint(state) != _ledger_fingerprint(state2):
                failures.append("double recovery diverged")

            # Phase D: restart, retry every request, finish fault-free.
            asyncio.run(_finish(calm, directory, state2, jobs))
            final = recover(directory, calm)
            entries = len(final.entries)
            rids = {e.request_id for e in final.entries}
            if len(rids) != len(final.entries):
                failures.append("final ledger logged a request id twice")
            if len(final.entries) != len(jobs):
                failures.append(
                    f"final ledger has {len(final.entries)} entries for "
                    f"{len(jobs)} requests"
                )
            if any(e.decision is None for e in final.entries):
                failures.append("final ledger holds undecided entries")
        except (ReproError, OSError) as exc:
            failures.append(f"{type(exc).__name__}: {exc}")
    return ChaosResult(
        scenario=scenario.name,
        seed=scenario.seed,
        ok=not failures,
        failures=tuple(failures),
        crash=crash,
        entries=entries,
        redecided=redecided,
        truncated_bytes=truncated,
        stats=stats,
    )


# ---------------------------------------------------------------------------
# Campaigns / CLI
# ---------------------------------------------------------------------------


def rotate(scenarios: Sequence[ChaosScenario], salt: int) -> list[ChaosScenario]:
    """The committed fault scripts under fresh seeds (nightly campaign)."""
    if not salt:
        return list(scenarios)
    return [
        replace(s, seed=s.seed + 1009 * salt, name=f"{s.name}@{salt}")
        for s in scenarios
    ]


def run_campaign(
    scenarios: Sequence[ChaosScenario],
    *,
    reproducers: Path | None = None,
    verbose: bool = True,
    salt: int = 0,
) -> list[ChaosResult]:
    results = []
    for scenario in scenarios:
        result = run_scenario(scenario)
        results.append(result)
        if verbose:
            print(result.summary())
        if not result.ok and reproducers is not None:
            reproducers.mkdir(parents=True, exist_ok=True)
            path = reproducers / f"{scenario.name}.json"
            path.write_text(
                json.dumps(
                    {
                        "scenario": asdict(scenario),
                        "failures": list(result.failures),
                        "repro": (
                            "PYTHONPATH=src python -m repro.service.chaos "
                            f"--only {scenario.name.split('@')[0]} "
                            f"--rotate {salt}"
                        ),
                    },
                    indent=2,
                    default=str,
                )
                + "\n"
            )
    return results


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.chaos",
        description="Chaos-test the admission service's crash recovery.",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        help="run only scenarios with this name (repeatable)",
    )
    parser.add_argument(
        "--rotate",
        type=int,
        default=0,
        metavar="SALT",
        help="re-seed the committed scenario set with this salt "
        "(0 = committed seeds)",
    )
    parser.add_argument(
        "--reproducers",
        type=Path,
        default=None,
        metavar="DIR",
        help="write a reproducer JSON per failing scenario into DIR",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)

    scenarios = rotate(SCENARIOS, args.rotate)
    if args.only:
        wanted = set(args.only)
        scenarios = [
            s for s in scenarios if s.name.split("@")[0] in wanted
        ]
        if not scenarios:
            print(f"no scenario matches {sorted(wanted)}", file=sys.stderr)
            return 2
    if args.list:
        for s in scenarios:
            print(f"{s.name:<28} seed={s.seed}")
        return 0

    results = run_campaign(
        scenarios, reproducers=args.reproducers, salt=args.rotate
    )
    bad = [r for r in results if not r.ok]
    print(
        f"[chaos] {len(results) - len(bad)}/{len(results)} scenarios clean"
        + (f"; {len(bad)} FAILED" if bad else "")
    )
    return 1 if bad else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
