"""Fault-tolerant arbitrator-as-a-service (ROADMAP: "long-running service").

The package turns the library :class:`~repro.core.arbitrator.QoSArbitrator`
into a durable admission pipeline:

* :mod:`repro.service.service` — the asyncio front-end: bounded ingress
  with backpressure, decision batching over ``admit_batch``, per-request
  deadlines, retry + backoff + jitter, QoS-class shedding and
  degraded-quality admission, append-before-ack durability;
* :mod:`repro.service.wal` — the CRC-framed, fsync'd write-ahead
  decision log with atomic checkpoints and torn-tail repair;
* :mod:`repro.service.recovery` — crash recovery that replays the log
  into a fresh arbitrator and *proves* (bit-identical replay + an
  independent audit) the result is the pre-crash schedule;
* :mod:`repro.service.chaos` — the seeded fault-injection harness that
  keeps all of the above honest.

Submodules are loaded lazily so ``python -m repro.service.chaos`` does
not double-import the module it is executing.
"""

from importlib import import_module
from typing import Any

_EXPORTS = {
    "AdmissionService": "repro.service.service",
    "ServiceConfig": "repro.service.service",
    "ServiceDecision": "repro.service.service",
    "ServiceOutcome": "repro.service.service",
    "degrade_job": "repro.service.service",
    "make_arbitrator": "repro.service.service",
    "LedgerEntry": "repro.service.wal",
    "WriteAheadLog": "repro.service.wal",
    "decision_to_tuple": "repro.service.wal",
    "read_wal": "repro.service.wal",
    "read_checkpoint": "repro.service.wal",
    "write_checkpoint": "repro.service.wal",
    "RecoveredState": "repro.service.recovery",
    "recover": "repro.service.recovery",
    "ChaosScenario": "repro.service.chaos",
    "ChaosResult": "repro.service.chaos",
    "SCENARIOS": "repro.service.chaos",
    "run_scenario": "repro.service.chaos",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
