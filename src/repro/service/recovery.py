"""Crash recovery: rebuild the exact pre-crash arbitrator from the WAL.

Recovery is a pure function of the WAL directory and the service
configuration:

1. load ``checkpoint.json`` (verified whole-payload SHA-256) — the
   decided ledger through ``through_seq``;
2. parse ``wal.log``, repairing (physically truncating) a torn tail the
   crash legitimately left, and fold its records into ledger entries,
   skipping anything the checkpoint already covers;
3. replay every effective job, in ledger order, through a **fresh**
   arbitrator built with :func:`~repro.service.service.make_arbitrator`
   and demand — via :func:`repro.verify.checks.verify_replay` — that
   every logged decision is reproduced *bit-identically* and that the
   independent :class:`~repro.verify.auditor.ScheduleAuditor` finds zero
   violations in the recovered schedule;
4. re-decide the undecided tail (jobs logged before the crash whose
   decision append never landed) and durably log those decisions, so a
   second crash straight after recovery replays idempotently.

Because the tie-break policy is forbidden from being ``RANDOM`` and the
batch API is decision-equivalent to the serial loop, the replayed
schedule *is* the pre-crash schedule — not an approximation of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.admission import AdmissionDecision
from repro.core.arbitrator import QoSArbitrator
from repro.errors import WalCorruptionError
from repro.service.service import ServiceConfig, make_arbitrator
from repro.service.wal import (
    LedgerEntry,
    WriteAheadLog,
    decision_to_tuple,
    read_checkpoint,
    read_wal,
    records_to_entries,
)
from repro.verify.auditor import AuditReport
from repro.verify.checks import verify_replay

__all__ = ["RecoveredState", "recover"]


@dataclass(slots=True)
class RecoveredState:
    """Everything a restarted :class:`AdmissionService` needs to resume.

    ``entries``/``decisions`` are aligned; every entry is decided (the
    crash's undecided tail — ``redecided`` of them — was decided during
    recovery and durably re-logged).  ``report`` is the independent audit
    of the recovered schedule and is clean by construction (recovery
    raises otherwise).
    """

    arbitrator: QoSArbitrator
    entries: list[LedgerEntry]
    decisions: list[AdmissionDecision]
    last_seq: int
    redecided: int
    truncated_bytes: int
    report: AuditReport


def recover(
    wal_dir: str | Path, config: ServiceConfig, *, strict: bool = True
) -> RecoveredState:
    """Replay checkpoint + WAL into a fresh, audited arbitrator.

    Raises :class:`~repro.errors.WalCorruptionError` for damage beyond a
    torn tail and :class:`~repro.errors.VerificationError` when the
    replayed schedule is not bit-identical to the logged ledger (with
    ``strict``, the default).  Safe to call repeatedly: recovery is
    idempotent and leaves the log strictly cleaner than it found it.
    """
    directory = Path(wal_dir)
    checkpointed, through_seq = read_checkpoint(directory)
    for entry in checkpointed:
        if entry.decision is None:
            raise WalCorruptionError(
                f"checkpoint hides undecided entry seq {entry.seq}"
            )
    records, truncated = read_wal(directory / "wal.log", repair=True)
    entries = checkpointed + records_to_entries(records, min_seq=through_seq)

    arbitrator = make_arbitrator(config)
    expected = [entry.decision for entry in entries]
    decisions, report = verify_replay(
        arbitrator,
        [entry.job for entry in entries],
        expected,
        malleable=config.malleable,
        strict=strict,
    )

    # Decide-and-persist the crash window: entries whose job record
    # landed but whose decision append did not.
    undecided = [i for i, want in enumerate(expected) if want is None]
    for i in undecided:
        entries[i].decision = decision_to_tuple(decisions[i])
    if undecided:
        wal = WriteAheadLog(directory, fsync=True)
        try:
            wal.append_decisions(
                [entries[i].seq for i in undecided],
                [entries[i].decision for i in undecided],
            )
        finally:
            wal.close()

    return RecoveredState(
        arbitrator=arbitrator,
        entries=entries,
        decisions=decisions,
        last_seq=entries[-1].seq if entries else through_seq,
        redecided=len(undecided),
        truncated_bytes=truncated,
        report=report,
    )
