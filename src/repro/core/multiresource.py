"""Multi-resource (vector) requests — the general model of Section 3.1.

"Resource requirements can be thought of as a vector of values, one for
each resource in the system."  The paper then specializes to processors
("for the purposes of this paper, resource-request is a processor-time
tuple"); this module implements the general vector model so QoS agents can
express, e.g., processors *and* memory *and* I/O bandwidth, with the same
first-fit/maximal-hole machinery applied conjunctively across resources.

Design: a :class:`MultiResourceProfile` keeps one
:class:`~repro.core.profile.AvailabilityProfile` per named resource; a
vector request fits at time ``s`` iff it fits *every* resource profile at
``s``.  The earliest conjunctive fit is found by fixpoint iteration over
the per-resource earliest fits: start from the release time, ask each
resource for its earliest fit at or after the current candidate, and take
the max; repeat until stable.  Each round either terminates or advances the
candidate past at least one profile breakpoint, so the search is bounded by
the total number of segments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterator, Mapping

from repro.core.first_fit import earliest_fit
from repro.core.profile import AvailabilityProfile
from repro.core.resources import TIME_EPS
from repro.errors import ConfigurationError, InvalidTaskError, SchedulingError

__all__ = ["VectorRequest", "MultiResourceProfile", "earliest_vector_fit"]


@dataclass(frozen=True, slots=True)
class VectorRequest:
    """A non-preemptive request for several resources over one duration.

    Attributes
    ----------
    amounts:
        Resource name → positive integer units required simultaneously.
    duration:
        How long all of them are held (one duration; the task is a single
        rectangle in every resource's dimension-time plane).
    """

    amounts: Mapping[str, int]
    duration: float

    def __post_init__(self) -> None:
        amounts = dict(self.amounts)
        if not amounts:
            raise InvalidTaskError("a vector request needs at least one resource")
        for name, units in amounts.items():
            if not isinstance(units, int) or isinstance(units, bool) or units <= 0:
                raise InvalidTaskError(
                    f"resource {name!r}: units must be a positive int, got {units!r}"
                )
        if not (self.duration > 0) or math.isinf(self.duration):
            raise InvalidTaskError(
                f"duration must be positive and finite, got {self.duration!r}"
            )
        object.__setattr__(self, "amounts", MappingProxyType(amounts))

    @property
    def resources(self) -> frozenset[str]:
        """The resource names this request touches."""
        return frozenset(self.amounts)

    def area(self, resource: str) -> float:
        """Units x duration consumed on one resource."""
        return self.amounts[resource] * self.duration


class MultiResourceProfile:
    """Availability step functions for a set of named resources.

    Parameters
    ----------
    capacities:
        Resource name → total units (e.g. ``{"cpu": 16, "mem_gb": 64}``).
    """

    def __init__(self, capacities: Mapping[str, int], origin: float = 0.0) -> None:
        if not capacities:
            raise ConfigurationError("at least one resource is required")
        self._profiles: dict[str, AvailabilityProfile] = {
            name: AvailabilityProfile(units, origin=origin)
            for name, units in capacities.items()
        }

    # ------------------------------------------------------------------

    @property
    def resources(self) -> tuple[str, ...]:
        """Managed resource names, in declaration order."""
        return tuple(self._profiles)

    def capacity(self, resource: str) -> int:
        """Total units of one resource."""
        return self._profile(resource).capacity

    def profile(self, resource: str) -> AvailabilityProfile:
        """Read-only view intent: the underlying per-resource profile."""
        return self._profile(resource)

    def _profile(self, resource: str) -> AvailabilityProfile:
        try:
            return self._profiles[resource]
        except KeyError:
            raise SchedulingError(f"unknown resource {resource!r}") from None

    def _check_known(self, request: VectorRequest) -> None:
        for name in request.amounts:
            self._profile(name)

    # ------------------------------------------------------------------

    def fits_at(self, request: VectorRequest, start: float) -> bool:
        """True if ``request`` fits every resource throughout its duration."""
        self._check_known(request)
        end = start + request.duration
        return all(
            self._profiles[name].min_available(start, end) >= units
            for name, units in request.amounts.items()
        )

    def reserve(self, request: VectorRequest, start: float) -> None:
        """Atomically commit the request at ``start`` across all resources.

        On failure (insufficient units on any resource) already-applied
        per-resource reservations are rolled back and the error propagates.
        """
        self._check_known(request)
        end = start + request.duration
        applied: list[tuple[str, int]] = []
        try:
            for name, units in request.amounts.items():
                self._profiles[name].reserve(start, end, units)
                applied.append((name, units))
        except Exception:
            for name, units in reversed(applied):
                self._profiles[name].release(start, end, units)
            raise

    def release(self, request: VectorRequest, start: float) -> None:
        """Undo a previous :meth:`reserve`."""
        self._check_known(request)
        end = start + request.duration
        for name, units in request.amounts.items():
            self._profiles[name].release(start, end, units)

    def check_invariants(self) -> None:
        """Validate every per-resource profile."""
        for profile in self._profiles.values():
            profile.check_invariants()

    def segments(self) -> Iterator[tuple[str, float, float, int]]:
        """Yield ``(resource, start, end, available)`` across all profiles."""
        for name, profile in self._profiles.items():
            for start, end, avail in profile.segments():
                yield (name, start, end, avail)


def earliest_vector_fit(
    profile: MultiResourceProfile,
    request: VectorRequest,
    release: float,
    deadline: float = math.inf,
) -> float | None:
    """Earliest start where ``request`` fits *every* resource (or ``None``).

    Fixpoint iteration over per-resource earliest fits; see the module
    docstring for the termination argument.
    """
    profile._check_known(request)  # noqa: SLF001 - same module family
    candidate = release
    for _ in range(1_000_000):  # safety bound; loop exits far earlier
        moved = False
        for name, units in request.amounts.items():
            fit = earliest_fit(
                profile.profile(name), units, request.duration, candidate, deadline
            )
            if fit is None:
                return None
            if fit > candidate + TIME_EPS:
                candidate = fit
                moved = True
        if not moved:
            return candidate
    raise SchedulingError(
        "earliest_vector_fit failed to converge; profile breakpoints may be "
        "pathological"
    )  # pragma: no cover - defensive
