"""Baseline and ablation schedulers.

These are *not* in the paper's evaluation but contextualize the greedy
heuristic, as called for by the related-work discussion (Section 6):

* :class:`BestFitScheduler` — replaces the first-fit (earliest start) rule
  with best-fit over maximal holes (tightest height surplus, then earliest
  start).  The ablation bench measures what first-fit costs/buys.
* :class:`ConservativeArbitrator` — a real-time-style admission control
  that does not trust the negotiation step: it admits a tunable job only if
  *every* configuration is schedulable (so any path the application might
  take is safe).  This models the "overly conservative" behaviour the
  introduction attributes to classical real-time resource management and
  quantifies what negotiated tunability saves.
"""

from __future__ import annotations

from repro.core.admission import AdmissionDecision
from repro.core.arbitrator import QoSArbitrator
from repro.core.first_fit import earliest_fit
from repro.core.greedy import GreedyScheduler
from repro.core.holes import maximal_holes
from repro.core.placement import ChainPlacement, Placement
from repro.core.resources import TIME_EPS
from repro.model.chain import TaskChain
from repro.model.job import Job

__all__ = ["BestFitScheduler", "ConservativeArbitrator"]


class BestFitScheduler(GreedyScheduler):
    """Greedy scheduler using best-fit hole selection per task.

    For each task, enumerate the maximal holes that admit it by its
    deadline and choose the hole with the smallest height surplus
    ``m - processors`` (ties: earliest feasible start).  The task starts as
    early as possible inside the chosen hole.

    This runs the hole enumeration per task and is therefore noticeably
    slower than first fit; it exists for the ablation benchmarks and as a
    second implementation against which the property tests cross-check
    feasibility.
    """

    # Best fit picks the *tightest* hole, so a harder task failing says
    # nothing monotone about an easier one, and the chosen hole depends on
    # the deadline — the greedy prunes that rely on first-fit properties
    # are not exact here and stay off.
    SUPPORTS_DOMINANCE = False
    SUPPORTS_FINISH_CAP = False

    def place_chain(
        self,
        chain: TaskChain,
        release: float,
        job_id: int = -1,
        chain_index: int = 0,
    ) -> ChainPlacement | None:
        profile = self.schedule.profile
        earliest = max(release, profile.origin)
        placements: list[Placement] = []
        for task in chain.tasks:
            deadline = release + task.deadline
            best_start: float | None = None
            best_surplus: int | None = None
            for hole in maximal_holes(profile):
                if hole.m < task.processors:
                    continue
                start = max(hole.t_b, earliest)
                finish = start + task.duration
                if finish > hole.t_e + TIME_EPS or finish > deadline + TIME_EPS:
                    continue
                surplus = hole.m - task.processors
                if (
                    best_surplus is None
                    or surplus < best_surplus
                    or (surplus == best_surplus and start < best_start - TIME_EPS)
                ):
                    best_surplus = surplus
                    best_start = start
            if best_start is None:
                return None
            placements.append(Placement.rigid(task, best_start))
            earliest = best_start + task.duration
        return ChainPlacement(
            job_id=job_id,
            chain_index=chain_index,
            chain=chain,
            placements=tuple(placements),
            release=release,
        )


class ConservativeArbitrator(QoSArbitrator):
    """Admission requires *all* configurations schedulable (see module docs).

    Once admitted, the job still gets the paper's best configuration — the
    penalty is purely on admission, isolating the value of the negotiation
    step that lets the arbitrator pin the application to one path.
    """

    def submit(self, job: Job) -> AdmissionDecision:
        self._quality_possible += job.best_quality(self.quality_composition)
        if self.admission.compact:
            self.schedule.compact(job.release)
        cands = self.scheduler.candidates(job)
        if len(cands) < len(job.chains):
            self.admission.rejected += 1
            return AdmissionDecision(
                job.job_id,
                False,
                None,
                reason="conservative: not every configuration schedulable",
            )
        decision = self.admission.offer(job)
        if decision.admitted and decision.placement is not None:
            from repro.model.quality import chain_quality

            self._quality_sum += chain_quality(
                decision.placement.chain, self.quality_composition
            )
        return decision
