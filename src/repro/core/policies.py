"""Configuration-choice policies (the tie-break rules of Section 5.2).

Among the schedulable configurations of a tunable job, the paper's greedy
heuristic picks the one with the **earliest finish time**; "ties between
schedulable configurations are broken in favor of chains which maximize
system utilization (over a time window defined by the job's release time and
scheduled finish time) and require fewer total resources for some prefix of
their tasks."

:class:`TieBreakPolicy` selects the tie-break chain; the primary
earliest-finish criterion always applies.  ``PAPER`` is the rule quoted
above; the other values exist for the ablation benchmarks.
"""

from __future__ import annotations

import random
from enum import Enum
from typing import Sequence, TYPE_CHECKING

from repro.core.resources import TIME_EPS

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.placement import ChainPlacement
    from repro.core.schedule import Schedule

__all__ = ["TieBreakPolicy", "window_utilization", "select_candidate"]


class TieBreakPolicy(Enum):
    """How to break ties among equally-early-finishing configurations."""

    #: Utilization over [release, finish], then lexicographically smaller
    #: prefix resource consumption (the paper's rule).
    PAPER = "paper"
    #: Keep the first minimum-finish candidate in chain order.
    FIRST = "first"
    #: Only the prefix-resource rule.
    PREFIX = "prefix"
    #: Uniform random choice among tied candidates (seeded; ablation only).
    RANDOM = "random"


def window_utilization(schedule: "Schedule", cp: "ChainPlacement") -> float:
    """System utilization over ``[release, finish]`` if ``cp`` were committed.

    Counts processor-time already committed in the window plus the
    candidate's own placements, over machine capacity times window length.
    """
    start = max(cp.release, schedule.profile.origin)
    span = cp.finish - start
    if span <= 0:
        return 1.0
    busy = schedule.profile.busy_area(start, cp.finish) + cp.total_area
    return busy / (schedule.capacity * span)


def _prefix_key(cp: "ChainPlacement") -> tuple[float, ...]:
    return cp.chain.prefix_areas()


def select_candidate(
    schedule: "Schedule",
    candidates: Sequence["ChainPlacement"],
    policy: TieBreakPolicy = TieBreakPolicy.PAPER,
    rng: random.Random | None = None,
) -> "ChainPlacement":
    """Pick the winning configuration among schedulable candidates.

    ``candidates`` must be non-empty.  The earliest finish time wins
    outright; candidates finishing within :data:`~repro.core.resources.TIME_EPS`
    of the minimum are tied and resolved by ``policy``.
    """
    if not candidates:
        raise ValueError("select_candidate requires at least one candidate")
    best_finish = min(c.finish for c in candidates)
    tied = [c for c in candidates if c.finish <= best_finish + TIME_EPS]
    if len(tied) == 1 or policy is TieBreakPolicy.FIRST:
        return tied[0]
    if policy is TieBreakPolicy.RANDOM:
        return (rng or random).choice(tied)
    if policy is TieBreakPolicy.PREFIX:
        return min(tied, key=_prefix_key)
    # PAPER: maximize window utilization, then minimize prefix consumption.
    best_util = max(window_utilization(schedule, c) for c in tied)
    tied = [
        c for c in tied if window_utilization(schedule, c) >= best_util - 1e-12
    ]
    return min(tied, key=_prefix_key)
