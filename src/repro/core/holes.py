"""Maximal holes in the processor-time plane.

Section 5.2: "the heuristic keeps track of available maximal holes in the
processor-time 2D space: each hole is represented by a triple
``(t_b, t_e, m)`` (denoting that ``m`` processors are available from
beginning time ``t_b`` until the end time ``t_e``), and is maximal if it is
not contained within any other hole."

A hole is exactly an axis-aligned rectangle lying under the availability
step function; it is *maximal* when it can neither be widened in time at
height ``m`` nor raised in height over ``[t_b, t_e)``.  This module derives
the full maximal-hole set from an :class:`~repro.core.profile.AvailabilityProfile`
(the equivalence is exercised heavily by the property-based tests), and
provides containment/fitting predicates used by the expository API and by
the test oracle for the first-fit search.

Epsilon convention
------------------
Instants within :data:`~repro.core.resources.TIME_EPS` of a boundary are
treated as *at* that boundary, consistently with the profile's reservation
snapping and :func:`~repro.core.first_fit.earliest_fit`:

* a task may overrun a hole's end (or its deadline) by at most ``TIME_EPS``
  — :meth:`MaximalHole.fits` and :func:`first_fit_via_holes` test
  ``finish <= t_e + TIME_EPS``, the hole-level mirror of ``earliest_fit``'s
  ``seg_end - start >= duration - TIME_EPS`` run-coverage test;
* :func:`holes_containing` treats a query instant within ``TIME_EPS`` of
  ``t_e`` as sitting on the (exclusive) right edge, and one within
  ``TIME_EPS`` below ``t_b`` as sitting on the (inclusive) left edge.

``tests/core/test_holes.py::TestEpsilonBoundaries`` pins this behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.core.profile import AvailabilityProfile
from repro.core.resources import TIME_EPS

__all__ = ["MaximalHole", "maximal_holes", "holes_containing", "first_fit_via_holes"]


@dataclass(frozen=True, slots=True, order=True)
class MaximalHole:
    """A maximal free rectangle ``(t_b, t_e, m)`` in processor-time space.

    ``t_e`` may be ``math.inf`` — the machine's trailing idle capacity forms
    holes open toward the future.
    """

    t_b: float
    t_e: float
    m: int

    @property
    def duration(self) -> float:
        """Length of the hole in time (possibly ``inf``)."""
        return self.t_e - self.t_b

    @property
    def area(self) -> float:
        """Processor-time area of the hole (possibly ``inf``)."""
        return self.m * self.duration

    def contains(self, other: "MaximalHole") -> bool:
        """True if ``other`` lies entirely within this hole."""
        return (
            self.t_b <= other.t_b + TIME_EPS
            and other.t_e <= self.t_e + TIME_EPS
            and other.m <= self.m
        )

    def fits(self, processors: int, duration: float, release: float = -math.inf,
             deadline: float = math.inf) -> bool:
        """True if a ``processors x duration`` task fits inside this hole,
        starting no earlier than ``release`` and finishing by ``deadline``."""
        if processors > self.m:
            return False
        start = max(self.t_b, release)
        finish = start + duration
        return finish <= min(self.t_e, deadline) + TIME_EPS


def maximal_holes(
    profile: AvailabilityProfile, horizon: float = math.inf
) -> list[MaximalHole]:
    """Enumerate every maximal hole of ``profile`` up to ``horizon``.

    The result is sorted by ``(t_b, t_e, m)`` and contains no duplicate and
    no hole nested inside another (the defining property).  Holes of height
    zero are not holes.

    Complexity is ``O(S^2)`` over ``S`` profile segments in the worst case;
    the scheduler itself never calls this on its hot path (it uses the step
    function directly), so clarity wins over cleverness here.
    """
    segs = [(s, min(e, horizon), a) for s, e, a in profile.segments() if s < horizon]
    holes: set[MaximalHole] = set()
    n = len(segs)
    for i, (_, _, height) in enumerate(segs):
        if height <= 0:
            continue
        # Extend maximally left and right at this height.
        lo = i
        while lo > 0 and segs[lo - 1][2] >= height:
            lo -= 1
        hi = i
        while hi + 1 < n and segs[hi + 1][2] >= height:
            hi += 1
        t_b = segs[lo][0]
        t_e = segs[hi][1]
        # The hole's true height is the min availability over [lo, hi]; by
        # construction that minimum equals `height` only when segment i is a
        # minimum of the extent, which it is: every included segment has
        # availability >= height.
        holes.add(MaximalHole(t_b, t_e, height))
    # Remove non-maximal heights: two seeds can give nested rectangles when
    # the horizon clipped the wider one.
    result = [
        h
        for h in holes
        if not any(o != h and o.contains(h) for o in holes)
    ]
    result.sort()
    return result


def holes_containing(
    holes: Iterable[MaximalHole], t: float, processors: int = 1
) -> list[MaximalHole]:
    """Return the holes covering instant ``t`` with height >= ``processors``."""
    return [h for h in holes if h.t_b <= t + TIME_EPS < h.t_e and h.m >= processors]


def first_fit_via_holes(
    holes: Iterable[MaximalHole],
    processors: int,
    duration: float,
    release: float,
    deadline: float = math.inf,
) -> float | None:
    """Earliest start time for a task using the maximal-hole representation.

    This is the specification-level (test oracle) counterpart of
    :func:`repro.core.first_fit.earliest_fit`: scan holes in order of their
    earliest feasible start and return the minimum.  ``None`` if no hole
    admits the task by its deadline.
    """
    best: float | None = None
    for hole in holes:
        if hole.m < processors:
            continue
        start = max(hole.t_b, release)
        finish = start + duration
        if finish > hole.t_e + TIME_EPS or finish > deadline + TIME_EPS:
            continue
        if best is None or start < best:
            best = start
    return best
