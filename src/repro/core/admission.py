"""Admission control (Section 3.1).

"Upon job arrival, the QoS arbitrator first performs admission control to
check whether or not application resource requirements can be satisfied.
Application tunability increases the likelihood that an application can be
admitted into the system."

Admission here is all-or-nothing at arrival under the static negotiation
model: a job whose configurations all fail first fit is rejected and never
retried.  An admitted job's chosen placement is committed immediately and is
never revoked (the paper assumes a fault-free, fixed-resource system for the
Section 5 experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Container

from repro.core.greedy import GreedyScheduler
from repro.core.placement import ChainPlacement
from repro.model.job import Job

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """Outcome of offering one job to admission control."""

    job_id: int
    admitted: bool
    placement: ChainPlacement | None
    reason: str = ""

    @property
    def chain_index(self) -> int | None:
        """Index of the configuration granted, or ``None`` if rejected."""
        return self.placement.chain_index if self.placement else None

    @property
    def finish(self) -> float | None:
        """Scheduled completion time, or ``None`` if rejected."""
        return self.placement.finish if self.placement else None


class AdmissionController:
    """Offers jobs to a scheduler and keeps acceptance accounting.

    Parameters
    ----------
    scheduler:
        Any :class:`~repro.core.greedy.GreedyScheduler` (rigid or malleable).
    compact:
        When True (default), the schedule's profile is compacted to each
        job's release time before scheduling — sound because no task may
        start before the newest arrival, and essential for long simulations
        (keeps the profile size proportional to *live* allocations).
        Requires non-decreasing release times across :meth:`offer` calls;
        violating that raises from the profile layer.
    """

    def __init__(self, scheduler: GreedyScheduler, compact: bool = True) -> None:
        self.scheduler = scheduler
        self.compact = compact
        self.admitted = 0
        self.rejected = 0
        self.decisions_by_chain: dict[int, int] = {}

    @property
    def offered(self) -> int:
        """Total number of jobs offered so far."""
        return self.admitted + self.rejected

    def offer(self, job: Job, skip: "Container[int]" = ()) -> AdmissionDecision:
        """Run admission control and (on success) commit the chosen chain.

        ``skip`` forwards pre-certified-unschedulable chain indices to the
        scheduler (batched admission pre-screen); decisions are unchanged.
        """
        if self.compact:
            self.scheduler.schedule.compact(job.release)
        placement = self.scheduler.schedule_job(job, skip)
        if placement is None:
            self.rejected += 1
            return AdmissionDecision(
                job.job_id, False, None, reason="no schedulable configuration"
            )
        self.admitted += 1
        self.decisions_by_chain[placement.chain_index] = (
            self.decisions_by_chain.get(placement.chain_index, 0) + 1
        )
        return AdmissionDecision(job.job_id, True, placement)
