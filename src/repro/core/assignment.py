"""Concrete processor assignment for committed schedules.

Section 3.1: the QoS arbitrator's algorithms "make an assignment of which
processors will execute which application tasks and for what time."  The
scheduling core tracks only processor *counts* (sufficient for feasibility
on homogeneous machines); this module derives the concrete mapping — each
placement gets specific processor indices for its interval — which the
paper's architecture hands back to the QoS agent and which the SVG Gantt
renderer draws.

The assignment is a sweep over placements in start order, holding a pool of
free processor indices: right-open intervals mean a task ending at ``t``
frees its processors for a task starting at ``t``.  Feasibility is
guaranteed by the profile's capacity invariant, so a pool underflow here
indicates schedule corruption and raises.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.resources import TIME_EPS
from repro.core.schedule import Schedule
from repro.errors import ScheduleConsistencyError

__all__ = ["AssignedSlice", "assign_processors"]


@dataclass(frozen=True, slots=True)
class AssignedSlice:
    """One task occurrence pinned to one concrete processor."""

    job_id: int
    task: str
    processor: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def assign_processors(schedule: Schedule) -> list[AssignedSlice]:
    """Assign concrete processor indices to every committed placement.

    Returns one :class:`AssignedSlice` per (task, processor) pair, sorted by
    ``(start, processor)``.  Lowest-numbered free processors are taken
    first, so assignments are deterministic and visually compact.

    Requires the schedule to have been built with ``keep_placements=True``.
    """
    occurrences = sorted(
        (
            (pl.start, pl.end, pl.processors, cp.job_id, pl.task.name)
            for cp in schedule.placements
            for pl in cp.placements
        ),
        key=lambda row: (row[0], row[3], row[4]),
    )
    free = list(range(schedule.capacity))
    heapq.heapify(free)
    running: list[tuple[float, list[int]]] = []  # (end, processor indices)
    slices: list[AssignedSlice] = []

    for start, end, procs, job_id, task_name in occurrences:
        while running and running[0][0] <= start + TIME_EPS:
            _end, indices = heapq.heappop(running)
            for idx in indices:
                heapq.heappush(free, idx)
        if len(free) < procs:
            raise ScheduleConsistencyError(
                f"processor pool underflow at t={start}: task {task_name!r} of "
                f"job {job_id} needs {procs}, only {len(free)} free — the "
                "schedule's placements exceed capacity"
            )
        taken = [heapq.heappop(free) for _ in range(procs)]
        heapq.heappush(running, (end, taken))
        for idx in taken:
            slices.append(
                AssignedSlice(
                    job_id=job_id,
                    task=task_name,
                    processor=idx,
                    start=start,
                    end=end,
                )
            )
    slices.sort(key=lambda s: (s.start, s.processor))
    return slices
