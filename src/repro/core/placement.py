"""Placement records: where tasks and chains land in processor-time space.

A :class:`Placement` is the scheduler's answer for one task — its start
time, actual processor count and actual duration (which equal the rigid
request for non-malleable tasks, and a work-conserving reshape for malleable
ones).  A :class:`ChainPlacement` strings task placements together for one
chosen configuration of a job; it knows how to validate itself against the
chain's precedence and deadline constraints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.core.resources import TIME_EPS, time_leq
from repro.errors import ScheduleConsistencyError
from repro.model.chain import TaskChain
from repro.model.task import TaskSpec

__all__ = ["Placement", "ChainPlacement"]


@dataclass(frozen=True, slots=True)
class Placement:
    """One task pinned to ``processors`` CPUs over ``[start, start+duration)``."""

    task: TaskSpec
    start: float
    processors: int
    duration: float

    def __post_init__(self) -> None:
        if math.isnan(self.start) or math.isinf(self.start):
            raise ScheduleConsistencyError(
                f"placement of {self.task.name!r} has non-finite start {self.start!r}"
            )
        if self.processors <= 0 or self.duration <= 0:
            raise ScheduleConsistencyError(
                f"placement of {self.task.name!r} has non-positive extent "
                f"({self.processors} procs, {self.duration} time)"
            )

    @property
    def end(self) -> float:
        """Finish time of the task."""
        return self.start + self.duration

    @property
    def area(self) -> float:
        """Processor-time consumed."""
        return self.processors * self.duration

    @staticmethod
    def rigid(task: TaskSpec, start: float) -> "Placement":
        """Placement honouring the task's rigid request exactly."""
        return Placement(task, start, task.processors, task.duration)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.task.name}@[{self.start:g},{self.end:g})"
            f"x{self.processors}p"
        )


@dataclass(frozen=True, slots=True)
class ChainPlacement:
    """A complete schedule for one chain of one job.

    Attributes
    ----------
    job_id / chain_index / chain:
        Which job, which of its alternative chains, and the chain itself.
    placements:
        One :class:`Placement` per chain task, in chain order.
    release:
        The job's release time (placements may not start before it).
    """

    job_id: int
    chain_index: int
    chain: TaskChain
    placements: tuple[Placement, ...]
    release: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "placements", tuple(self.placements))
        if len(self.placements) != len(self.chain):
            raise ScheduleConsistencyError(
                f"job {self.job_id}: {len(self.placements)} placements for a "
                f"{len(self.chain)}-task chain"
            )

    def __iter__(self) -> Iterator[Placement]:
        return iter(self.placements)

    @property
    def start(self) -> float:
        """Start of the first task."""
        return self.placements[0].start

    @property
    def finish(self) -> float:
        """Finish of the last task (the job's completion time)."""
        return self.placements[-1].end

    @property
    def response_time(self) -> float:
        """Completion time minus release time."""
        return self.finish - self.release

    @property
    def total_area(self) -> float:
        """Processor-time consumed by the whole chain as placed."""
        return sum(p.area for p in self.placements)

    def validate(self) -> None:
        """Check release, precedence and per-task deadline constraints.

        Raises :class:`~repro.errors.ScheduleConsistencyError` on the first
        violation.  Capacity feasibility is a *schedule-level* property and
        is checked by :meth:`repro.core.schedule.Schedule.check_consistency`.
        """
        prev_end = self.release
        for pl, task in zip(self.placements, self.chain.tasks):
            if pl.task is not task and pl.task != task:
                raise ScheduleConsistencyError(
                    f"job {self.job_id}: placement/task mismatch at {task.name!r}"
                )
            if pl.start < prev_end - TIME_EPS:
                raise ScheduleConsistencyError(
                    f"job {self.job_id}: task {task.name!r} starts at "
                    f"{pl.start} before its predecessor finishes at {prev_end}"
                )
            absolute_deadline = self.release + task.deadline
            if not time_leq(pl.end, absolute_deadline):
                raise ScheduleConsistencyError(
                    f"job {self.job_id}: task {task.name!r} finishes at "
                    f"{pl.end} past its deadline {absolute_deadline}"
                )
            prev_end = pl.end

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = " ".join(str(p) for p in self.placements)
        return f"job#{self.job_id}[chain {self.chain_index}] {body}"
