"""The committed schedule: profile + accepted placements + accounting.

The :class:`Schedule` is the QoS arbitrator's single source of truth about
what has been promised to admitted jobs.  It owns the
:class:`~repro.core.profile.AvailabilityProfile`, applies/rolls back chain
placements atomically, keeps the utilization accounting that survives
profile compaction, and can audit itself end-to-end
(:meth:`check_consistency`) by replaying every stored placement.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.core.placement import ChainPlacement, Placement
from repro.core.profile import AvailabilityProfile
from repro.errors import ScheduleConsistencyError

__all__ = ["Schedule"]


class Schedule:
    """Mutable record of all committed allocations on ``capacity`` processors.

    Parameters
    ----------
    capacity:
        Number of processors in the system.
    origin:
        Virtual time at which the system becomes available.
    keep_placements:
        When True (default) every committed :class:`ChainPlacement` is
        retained for auditing, tracing and Gantt rendering.  Long-running
        simulations that only need aggregate metrics may disable this to
        keep memory flat; consistency auditing then only covers the profile
        invariants.
    """

    def __init__(
        self, capacity: int, origin: float = 0.0, keep_placements: bool = True
    ) -> None:
        self.profile = AvailabilityProfile(capacity, origin=origin)
        self._keep = keep_placements
        self._placements: list[ChainPlacement] = []
        self._committed_area = 0.0
        self._committed_jobs = 0
        self._first_release = math.inf
        self._last_finish = -math.inf

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Number of processors managed by this schedule."""
        return self.profile.capacity

    @property
    def placements(self) -> tuple[ChainPlacement, ...]:
        """All committed chain placements (empty if ``keep_placements=False``)."""
        return tuple(self._placements)

    @property
    def committed_area(self) -> float:
        """Total processor-time promised to admitted jobs so far."""
        return self._committed_area

    @property
    def committed_jobs(self) -> int:
        """Number of chain placements committed so far."""
        return self._committed_jobs

    @property
    def first_release(self) -> float:
        """Earliest release among committed jobs (``inf`` when empty)."""
        return self._first_release

    @property
    def last_finish(self) -> float:
        """Latest finish among committed jobs (``-inf`` when empty)."""
        return self._last_finish

    def utilization(self, horizon: float | None = None) -> float:
        """Committed processor-time divided by machine capacity over time.

        The window runs from the earliest committed release to ``horizon``
        (default: the latest committed finish).  Returns 0.0 for an empty
        schedule.
        """
        if self._committed_jobs == 0:
            return 0.0
        end = self._last_finish if horizon is None else horizon
        span = end - self._first_release
        if span <= 0:
            return 0.0
        return self._committed_area / (self.capacity * span)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def commit(self, cp: ChainPlacement) -> None:
        """Atomically reserve every task placement of ``cp``.

        Validates the chain placement first; if any reservation fails
        mid-way (which indicates a scheduler bug — placements are computed
        against this very profile), already-applied reservations are rolled
        back before the error propagates.
        """
        cp.validate()
        applied: list[Placement] = []
        try:
            for pl in cp.placements:
                self.profile.reserve(pl.start, pl.end, pl.processors)
                applied.append(pl)
        except Exception:
            for pl in reversed(applied):
                self.profile.release(pl.start, pl.end, pl.processors)
            raise
        if self._keep:
            self._placements.append(cp)
        self._committed_area += cp.total_area
        self._committed_jobs += 1
        self._first_release = min(self._first_release, cp.release)
        self._last_finish = max(self._last_finish, cp.finish)

    def rollback(self, cp: ChainPlacement) -> None:
        """Undo a previously committed chain placement."""
        for pl in reversed(cp.placements):
            self.profile.release(pl.start, pl.end, pl.processors)
        if self._keep:
            try:
                self._placements.remove(cp)
            except ValueError as exc:  # pragma: no cover - misuse guard
                raise ScheduleConsistencyError(
                    f"rollback of unknown placement for job {cp.job_id}"
                ) from exc
        self._committed_area -= cp.total_area
        self._committed_jobs -= 1

    def compact(self, before: float) -> None:
        """Forget profile structure before ``before`` (see profile docs).

        Utilization accounting is unaffected: committed areas were summed at
        commit time.
        """
        self.profile.compact(before)

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------

    def check_consistency(self) -> None:
        """Audit the whole schedule.

        * profile invariants hold;
        * every stored chain placement satisfies release/precedence/deadline;
        * replaying all stored placements onto a fresh profile never exceeds
          capacity and reproduces the live profile's availability at every
          stored breakpoint (only meaningful when ``keep_placements=True``
          and :meth:`compact` has not been used).

        Raises :class:`~repro.errors.ScheduleConsistencyError` on failure.
        """
        self.profile.check_invariants()
        if not self._keep:
            return
        replay = AvailabilityProfile(self.capacity, origin=self.profile.origin)
        for cp in self._placements:
            cp.validate()
            for pl in cp.placements:
                if pl.start < self.profile.origin:
                    continue  # compacted history; cannot replay
                replay.reserve(pl.start, pl.end, pl.processors)

    def gantt_rows(self) -> Iterable[tuple[int, str, float, float, int]]:
        """Yield ``(job_id, task_name, start, end, processors)`` rows.

        A convenience for trace/Gantt rendering in :mod:`repro.sim.trace`.
        """
        for cp in self._placements:
            for pl in cp.placements:
                yield (cp.job_id, pl.task.name, pl.start, pl.end, pl.processors)
