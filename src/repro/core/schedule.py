"""The committed schedule: profile + accepted placements + accounting.

The :class:`Schedule` is the QoS arbitrator's single source of truth about
what has been promised to admitted jobs.  It owns the
:class:`~repro.core.profile.AvailabilityProfile`, applies/rolls back chain
placements atomically, keeps the utilization accounting that survives
profile compaction, and can audit itself end-to-end
(:meth:`check_consistency`) by replaying every stored placement.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable

from repro.core.placement import ChainPlacement, Placement
from repro.core.resources import time_leq
from repro.core.profile import AvailabilityProfile
from repro.errors import ScheduleConsistencyError
from repro.perf import PerfRecorder

__all__ = ["Schedule"]


class Schedule:
    """Mutable record of all committed allocations on ``capacity`` processors.

    Parameters
    ----------
    capacity:
        Number of processors in the system.
    origin:
        Virtual time at which the system becomes available.
    keep_placements:
        When True (default) every committed :class:`ChainPlacement` is
        retained for auditing, tracing and Gantt rendering.  Long-running
        simulations that only need aggregate metrics may disable this to
        keep memory flat; consistency auditing then only covers the profile
        invariants.
    backend:
        Scan back-end for the owned availability profile (see
        :data:`~repro.core.profile.PROFILE_BACKENDS`); all back-ends make
        bit-identical scheduling decisions.
    """

    def __init__(
        self,
        capacity: int,
        origin: float = 0.0,
        keep_placements: bool = True,
        backend: str = "auto",
    ) -> None:
        self.profile = AvailabilityProfile(capacity, origin=origin, backend=backend)
        self.perf = PerfRecorder()
        self._keep = keep_placements
        self._placements: list[ChainPlacement] = []
        self._committed_area = 0.0
        self._committed_jobs = 0
        # Multisets of committed release/finish times: rollback must be able
        # to *shrink* the utilization window, so the extremes cannot be
        # tracked as bare running min/max (a rolled-back extreme would leave
        # them stale and deflate utilization()).
        self._releases: Counter[float] = Counter()
        self._finishes: Counter[float] = Counter()
        self._first_release = math.inf
        self._last_finish = -math.inf

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Number of processors managed by this schedule."""
        return self.profile.capacity

    @property
    def keeps_placements(self) -> bool:
        """Whether committed placements are retained (see constructor)."""
        return self._keep

    @property
    def placements(self) -> tuple[ChainPlacement, ...]:
        """All committed chain placements (empty if ``keep_placements=False``)."""
        return tuple(self._placements)

    @property
    def committed_area(self) -> float:
        """Total processor-time promised to admitted jobs so far."""
        return self._committed_area

    @property
    def committed_jobs(self) -> int:
        """Number of chain placements committed so far."""
        return self._committed_jobs

    @property
    def first_release(self) -> float:
        """Earliest release among committed jobs (``inf`` when empty)."""
        return self._first_release

    @property
    def last_finish(self) -> float:
        """Latest finish among committed jobs (``-inf`` when empty)."""
        return self._last_finish

    def utilization(self, horizon: float | None = None) -> float:
        """Committed processor-time divided by machine capacity over time.

        The window runs from the earliest committed release to ``horizon``
        (default: the latest committed finish).  Returns 0.0 for an empty
        schedule.
        """
        if self._committed_jobs == 0:
            return 0.0
        end = self._last_finish if horizon is None else horizon
        span = end - self._first_release
        if span <= 0:
            return 0.0
        return self._committed_area / (self.capacity * span)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def commit(self, cp: ChainPlacement) -> None:
        """Atomically reserve every task placement of ``cp``.

        Validates the chain placement first; if any reservation fails
        mid-way (which indicates a scheduler bug — placements are computed
        against this very profile), already-applied reservations are rolled
        back before the error propagates.
        """
        cp.validate()
        applied: list[Placement] = []
        try:
            for pl in cp.placements:
                self.profile.reserve(pl.start, pl.end, pl.processors)
                applied.append(pl)
        except Exception:
            self.perf.commit_failures += 1
            for pl in reversed(applied):
                self.profile.release(pl.start, pl.end, pl.processors)
            raise
        self.record_commit(cp)
        self.perf.commits += 1

    def record_commit(self, cp: ChainPlacement) -> None:
        """Book-keep a committed chain placement (no profile mutation).

        Split out of :meth:`commit` so the batched admission kernel —
        which applies the profile reservations wholesale inside C — can
        replay the per-chain accounting without re-reserving.
        """
        if self._keep:
            self._placements.append(cp)
        self._committed_area += cp.total_area
        self._committed_jobs += 1
        self._releases[cp.release] += 1
        self._finishes[cp.finish] += 1
        if cp.release < self._first_release:
            self._first_release = cp.release
        if cp.finish > self._last_finish:
            self._last_finish = cp.finish

    def rollback(self, cp: ChainPlacement) -> None:
        """Undo a previously committed chain placement.

        The utilization window is recomputed from the surviving committed
        placements: rolling back the earliest-released or latest-finishing
        job shrinks ``first_release``/``last_finish`` accordingly instead of
        leaving them stale.
        """
        for pl in reversed(cp.placements):
            self.profile.release(pl.start, pl.end, pl.processors)
        if self._keep:
            try:
                self._placements.remove(cp)
            except ValueError as exc:  # pragma: no cover - misuse guard
                raise ScheduleConsistencyError(
                    f"rollback of unknown placement for job {cp.job_id}"
                ) from exc
        self._committed_area -= cp.total_area
        self._committed_jobs -= 1
        self._releases[cp.release] -= 1
        if not self._releases[cp.release]:
            del self._releases[cp.release]
            if cp.release == self._first_release:
                self._first_release = (
                    min(self._releases) if self._releases else math.inf
                )
        self._finishes[cp.finish] -= 1
        if not self._finishes[cp.finish]:
            del self._finishes[cp.finish]
            if cp.finish == self._last_finish:
                self._last_finish = (
                    max(self._finishes) if self._finishes else -math.inf
                )
        self.perf.rollbacks += 1

    def rollback_tail(self, cp: ChainPlacement, cut: float) -> None:
        """Release the portion of ``cp``'s reservations at or after ``cut``.

        The overrun primitive of the resilience driver: when a running
        task is discovered (at ``cut``) to exceed its reserved duration,
        the chain's downstream reservations are returned to the profile so
        the remaining work can be re-negotiated, while the already-consumed
        prefix (before ``cut``) stays accounted — those processors really
        were busy.  Concretely:

        * every reserved interval ``[start, end)`` with ``end > cut`` is
          released over ``[max(start, cut), end)``;
        * committed area shrinks by exactly the released processor-time;
        * the job's committed finish moves from ``cp.finish`` to ``cut``
          (the consumed stub still bounds the utilization window);
        * ``cp`` leaves the placement list — the re-admitted remainder, if
          any, is committed as its own placement.

        ``cut`` must lie strictly after ``cp.start``; a placement that has
        not started yet is a plain :meth:`rollback`.  A placement carried
        across a capacity change (see :meth:`adopt_carried`) may be passed
        here even though its pre-change intervals were never reserved on
        this profile: only post-``cut`` intervals are touched, and those
        are always within the carried reservation.
        """
        if cut <= cp.start:
            self.rollback(cp)
            return
        released = 0.0
        for pl in reversed(cp.placements):
            if time_leq(pl.end, cut):  # sub-eps remainder: nothing to free
                continue
            start = max(pl.start, cut)
            self.profile.release(start, pl.end, pl.processors)
            released += (pl.end - start) * pl.processors
        if self._keep:
            try:
                self._placements.remove(cp)
            except ValueError as exc:
                raise ScheduleConsistencyError(
                    f"rollback_tail of unknown placement for job {cp.job_id}"
                ) from exc
        self._committed_area -= released
        self._finishes[cp.finish] -= 1
        if not self._finishes[cp.finish]:
            del self._finishes[cp.finish]
        self._finishes[cut] += 1
        if cp.finish == self._last_finish:
            self._last_finish = max(self._finishes)
        self.perf.tail_rollbacks += 1

    def restore_tail(self, cp: ChainPlacement, cut: float) -> None:
        """Exact inverse of :meth:`rollback_tail` at the same ``cut``.

        Re-reserves the post-``cut`` portion of ``cp``'s intervals, returns
        ``cp`` to the placement list, and moves the job's committed finish
        back from ``cut`` to ``cp.finish``.  The mid-execution resize engine
        uses this to abandon a *tentative* resize: it tail-rolls a running
        placement back, probes a reshaped remainder, and — when the reshape
        is rejected — restores the original reservation bit for bit.

        Must be called with the same ``cut`` that was passed to
        :meth:`rollback_tail`, while the freed region is still free (the
        caller rolls back whatever it committed in between first); a
        ``cut`` at or before ``cp.start`` undoes a plain rollback.
        """
        if cut <= cp.start:
            self.commit(cp)
            return
        restored = 0.0
        reserved: list[tuple[float, float, int]] = []
        try:
            for pl in cp.placements:
                # Mirror of rollback_tail's skip — the two must slice
                # identically for restore to be an exact inverse.
                if time_leq(pl.end, cut):
                    continue
                start = max(pl.start, cut)
                self.profile.reserve(start, pl.end, pl.processors)
                reserved.append((start, pl.end, pl.processors))
                restored += (pl.end - start) * pl.processors
        except Exception:
            for start, end, procs in reversed(reserved):
                self.profile.release(start, end, procs)
            raise
        if self._keep:
            self._placements.append(cp)
        self._committed_area += restored
        self._finishes[cut] -= 1
        if not self._finishes[cut]:
            del self._finishes[cut]
        self._finishes[cp.finish] += 1
        if self._finishes:
            self._last_finish = max(self._finishes)
        self.perf.tail_restores += 1

    def adopt_carried(self, cp: ChainPlacement, cut: float) -> None:
        """Re-reserve the remaining (post-``cut``) portion of ``cp`` here.

        Used when a placement committed on a *predecessor* schedule is
        carried across a capacity change onto this schedule (whose origin
        is the change time ``cut``): each reserved interval is clipped to
        ``[max(start, cut), end)`` and re-reserved.  Raises
        :class:`~repro.errors.CapacityExceededError` — after rolling back
        the partial reservation — when the remaining shape no longer fits,
        in which case the caller renegotiates or drops the job.

        Accounting counts only the clipped (re-reserved) area; the
        pre-change portion burned on the predecessor machine and is that
        schedule's history.
        """
        reserved: list[tuple[float, float, int]] = []
        area = 0.0
        try:
            for pl in cp.placements:
                # time_leq, not <=: a remainder shorter than TIME_EPS is
                # history, not a reservable interval — reserving it would
                # trip the profile's degenerate-interval guard.
                if time_leq(pl.end, cut):
                    continue
                start = max(pl.start, cut)
                self.profile.reserve(start, pl.end, pl.processors)
                reserved.append((start, pl.end, pl.processors))
                area += (pl.end - start) * pl.processors
        except Exception:
            for start, end, procs in reversed(reserved):
                self.profile.release(start, end, procs)
            raise
        if self._keep:
            self._placements.append(cp)
        self._committed_area += area
        self._committed_jobs += 1
        self._releases[cp.release] += 1
        self._finishes[cp.finish] += 1
        if cp.release < self._first_release:
            self._first_release = cp.release
        if cp.finish > self._last_finish:
            self._last_finish = cp.finish
        self.perf.carries += 1

    def compact(self, before: float) -> None:
        """Forget profile structure before ``before`` (see profile docs).

        Utilization accounting is unaffected: committed areas were summed at
        commit time.
        """
        self.profile.compact(before)

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    def perf_snapshot(self) -> dict[str, float | int]:
        """Flat performance summary: recorder counters/timers + profile stats.

        Profile counters come through prefixed with ``profile_``; the
        current segment count rides along as ``profile_segments`` (a proxy
        for live-allocation fragmentation).  When the profile runs
        ``backend="adaptive"`` the autotune controller's telemetry
        (``autotune_backend``, ``autotune_switches``, ...) rides along
        too.  See :mod:`repro.perf` and :mod:`repro.autotune`.
        """
        out = self.perf.snapshot()
        for name, value in self.profile.stats.as_dict().items():
            out[f"profile_{name}"] = value
        out["profile_segments"] = len(self.profile)
        autotune = self.profile.autotune
        if autotune is not None:
            out.update(autotune.snapshot())
        return out

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------

    def check_consistency(self) -> None:
        """Audit the whole schedule.

        * profile invariants hold;
        * every stored chain placement satisfies release/precedence/deadline;
        * replaying all stored placements onto a fresh profile never exceeds
          capacity and reproduces the live profile's availability at every
          stored breakpoint (only meaningful when ``keep_placements=True``
          and :meth:`compact` has not been used).

        Raises :class:`~repro.errors.ScheduleConsistencyError` on failure.
        """
        self.profile.check_invariants()
        if not self._keep:
            return
        replay = AvailabilityProfile(self.capacity, origin=self.profile.origin)
        for cp in self._placements:
            cp.validate()
            for pl in cp.placements:
                if pl.start < self.profile.origin:
                    continue  # compacted history; cannot replay
                replay.reserve(pl.start, pl.end, pl.processors)

    def gantt_rows(self) -> Iterable[tuple[int, str, float, float, int]]:
        """Yield ``(job_id, task_name, start, end, processors)`` rows.

        A convenience for trace/Gantt rendering in :mod:`repro.sim.trace`.
        """
        for cp in self._placements:
            for pl in cp.placements:
                yield (cp.job_id, pl.task.name, pl.start, pl.end, pl.processors)
