"""The free-processor availability profile.

The greedy heuristic of Section 5.2 "keeps track of available maximal holes
in the processor-time 2D space".  The equivalent primitive implemented here
is the *availability profile*: a right-open step function ``a(t)`` giving the
number of free processors at each instant.  Maximal holes are exactly the
maximal axis-aligned rectangles under this step function and are derived in
:mod:`repro.core.holes`; all hot-path scheduling operations (reservation,
earliest-fit search, free-area integrals) run directly on the step function,
which is both simpler and asymptotically cheaper.

Representation
--------------
Two parallel lists ``_times`` and ``_avail``: ``_avail[i]`` processors are
free throughout ``[_times[i], _times[i+1])``; the last segment extends to
``+inf``.  ``_times[0]`` is the profile *origin* — the earliest instant the
profile describes (it advances under :meth:`compact`).

Invariants (checked by :meth:`check_invariants` and the test suite):

* ``_times`` strictly increasing, ``len(_times) == len(_avail) >= 1``;
* ``0 <= _avail[i] <= capacity`` for all ``i``;
* adjacent segments have distinct availability (canonical form).

Performance
-----------
All mutations go through a single *windowed rewrite* (:meth:`_shift`): the
affected index window is located by bisection, validated in one scan, and
replaced with one slice assignment per array — no per-breakpoint
``list.insert``/``del`` splices, no post-hoc canonicalization pass.  The
work per operation is O(log S + W) Python steps plus one O(S) C-level
memmove, where W is the number of segments overlapping the interval.

Area queries (:meth:`free_area`, :meth:`busy_area`) run off a cached
prefix-sum over the segment areas, rebuilt lazily after a mutation, making
each query O(log S).  :class:`~repro.perf.ProfileStats` counters
(``stats``) record ops, per-op segments touched, probe scans and prefix
rebuilds; they are always on and cost a few integer adds per operation.

For fit probes on *large* profiles, the profile additionally maintains
NumPy mirrors of ``_times`` and ``_avail`` (:meth:`_mirrors`): built lazily
on the first probe, then kept in sync by the same windowed splice
``_shift`` applies to the lists (one C-level concatenate each per
mutation).  The :func:`~repro.core.first_fit.earliest_fit` search uses them
to locate and feasibility-test runs of sufficient availability with
vectorized comparisons instead of a per-segment Python loop — the
difference between ~500µs and ~30µs per probe on a 10k-segment profile.

Scan back-ends
--------------
Four interchangeable back-ends answer fit/min/area queries, selected by
the ``backend`` constructor argument (resolved per query by
:meth:`scan_backend`):

* ``"scalar"`` — the per-segment Python walks above (the seed semantics;
  every other back-end must reproduce its results bit-for-bit);
* ``"vector"`` — vectorized scans over the NumPy mirrors, O(S) with a much
  smaller constant;
* ``"tree"`` — a :class:`~repro.core.segtree.SegmentTreeIndex` over the
  mirrors (built lazily, kept fresh by O(1) dirty marks from ``_shift`` /
  ``compact`` plus lazy suffix consolidation), giving O(log S) descents
  that skip whole subtrees — sublinear in fragmentation;
* ``"kernel"`` — the scalar walk ported to C (:mod:`repro.core.kernels`),
  with a bit-identical numpy fallback when no compiled kernel is loaded;
* ``"auto"`` (default) — a static size-only rule: scalar below
  :data:`VECTOR_MIN_SEGMENTS`, vector beyond — or the compiled kernel
  from :data:`KERNEL_MIN_SEGMENTS` up when one is loaded;
* ``"adaptive"`` — a self-tuning meta-controller
  (:class:`repro.autotune.AdaptiveController`, owned by the profile as
  :attr:`~AvailabilityProfile.autotune`) that watches the always-on
  :class:`~repro.perf.ProfileStats` counters and switches among the four
  concrete back-ends per *regime* — segment count, probe depth and
  probe-to-mutation ratio — with hysteresis.  See ``docs/adaptive.md``.

``"auto"`` deliberately never selects the tree: whether the tree wins
depends on the probe-to-mutation ratio, which a size-only rule cannot
observe, not on the segment count alone.  Query-dominated fragmented
regimes (admission control near saturation, where most submissions probe
far and commit rarely) should opt in explicitly — that is where the
descents are orders of magnitude ahead; mutation-heavy streams with
random reservation positions pay O(S) tree consolidation per op and
should not.  ``"adaptive"`` *can* observe that ratio and does select the
tree when it pays.  Every back-end returns bit-identical answers, so the
choice — static or switched mid-run — never changes a scheduling
decision.  See ``docs/perf.md`` for the measured crossovers.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Iterator, Sequence

import numpy as np

from repro.errors import CapacityExceededError, ConfigurationError, SchedulingError
from repro.core import kernels
from repro.core.resources import TIME_EPS
from repro.core.segtree import SegmentTreeIndex
from repro.perf import ProfileStats

__all__ = [
    "AvailabilityProfile",
    "PROFILE_BACKENDS",
    "KERNEL_MIN_SEGMENTS",
    "TREE_MIN_SEGMENTS",
    "VECTOR_MIN_SEGMENTS",
    "resolve_auto_backend",
]

#: Valid values for the ``backend`` constructor argument.
PROFILE_BACKENDS = ("auto", "adaptive", "scalar", "vector", "tree", "kernel")

#: Segment count below which the scalar walk beats the vectorized scan's
#: fixed per-call numpy overhead.  The committed fragmentation benchmark
#: (``BENCH_sched.json``) puts the vector scan *behind* the scalar walk at
#: both 100 segments (212µs vs 64µs p50) and 1000 segments (129µs vs
#: 99µs) and only ahead at 10000 (145µs vs 641µs): the run-search
#: allocates several temporaries per probe, so its fixed cost is far
#: higher than a single comparison's.  The crossover therefore sits
#: between 10^3 and 10^4 live segments; 2048 keeps ``"auto"`` on the
#: cheap walk through the entire committed range where the walk wins
#: (``tests/core/test_auto_backend.py`` pins this against the committed
#: benchmark data).
VECTOR_MIN_SEGMENTS = 2048

#: Segment count from which the ``"tree"`` back-end's O(log S) descents
#: clearly beat both O(S) scans on *query-dominated* workloads (measured in
#: ``benchmarks/bench_fragmentation.py``; the CI smoke asserts the win at
#: 1000 segments).  Advisory: ``"auto"`` never selects the tree — see the
#: module docs — so opting in is an explicit deployment choice (or the
#: ``"adaptive"`` controller's, which *can* observe the probe-to-mutation
#: ratio the tree's profitability depends on).
TREE_MIN_SEGMENTS = 1000

#: Segment count from which the *compiled* ``"kernel"`` back-end beats the
#: scalar walk on serial decisions.  The committed decision-throughput
#: data (``BENCH_sched.json``) puts serial-kernel *behind* serial-python
#: at 100 segments (13.5k vs 16.1k decisions/s — the ctypes call overhead
#: loses on a short walk) and ahead at 1000 (15.4k vs 9.6k/s), and the
#: fragmentation points agree (kernel p50 63.5µs vs scalar 37.9µs at 100
#: segments; 65.6µs vs 89.8µs at 1000).  The crossover therefore sits in
#: (100, 1000]; 512 splits the bracket
#: (``tests/core/test_auto_backend.py`` pins it against the committed
#: data).  Only meaningful when the compiled kernel is loaded — the
#: pure-Python kernel fallback never beats the walk it mirrors.
KERNEL_MIN_SEGMENTS = 512


def resolve_auto_backend(n_segments: int, kernel_compiled: bool | None = None) -> str:
    """The back-end ``"auto"`` picks for a profile of ``n_segments``.

    With the compiled decision kernel loaded, ``"kernel"`` from
    :data:`KERNEL_MIN_SEGMENTS` up (at every committed point at or past
    the crossover the compiled scan beats both Python scans, vector
    included); otherwise scalar below :data:`VECTOR_MIN_SEGMENTS` and
    vector from there up.  ``kernel_compiled=None`` (the default) asks
    the kernel layer; tests pass an explicit value to pin both regimes.

    ``"auto"`` deliberately never resolves to ``"tree"``: whether the
    tree wins depends on the probe-to-mutation ratio, which a size-only
    resolver cannot observe (that is what ``backend="adaptive"`` is for).
    The contract tested against the committed benchmark data is that auto
    is never the *worst* scan at any committed fragmentation point.
    """
    if kernel_compiled is None:
        kernel_compiled = kernels.kernel_backend() == "compiled"
    if kernel_compiled and n_segments >= KERNEL_MIN_SEGMENTS:
        return "kernel"
    return "vector" if n_segments >= VECTOR_MIN_SEGMENTS else "scalar"


class AvailabilityProfile:
    """Number of free processors as a right-open step function of time.

    Parameters
    ----------
    capacity:
        Total number of (homogeneous) processors in the system.
    origin:
        The earliest instant described by the profile; all processors are
        free from ``origin`` onward in a fresh profile.
    backend:
        Scan back-end for fit/min/area queries — one of
        :data:`PROFILE_BACKENDS`.  ``"auto"`` (default) picks by segment
        count; the explicit values force one back-end (used by oracles,
        equivalence tests and benchmarks).  All back-ends return
        bit-identical results.
    """

    __slots__ = (
        "_capacity",
        "_times",
        "_avail",
        "_prefix",
        "_np_times",
        "_np_avail",
        "_backend",
        "_segtree",
        "_autotune",
        "stats",
    )

    #: Class-level switch consulted by :func:`~repro.core.first_fit.earliest_fit`:
    #: when True (and the profile is large enough) fit probes scan the NumPy
    #: availability mirror instead of walking segments in Python.  The legacy
    #: baseline in ``benchmarks/`` sets this False to preserve seed behaviour.
    VECTORIZED_SCAN = True

    def __init__(
        self, capacity: int, origin: float = 0.0, backend: str = "auto"
    ) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity <= 0:
            raise ConfigurationError(f"capacity must be a positive int, got {capacity!r}")
        if math.isnan(origin) or math.isinf(origin):
            raise ConfigurationError(f"origin must be finite, got {origin!r}")
        if backend not in PROFILE_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {PROFILE_BACKENDS}, got {backend!r}"
            )
        self._capacity = capacity
        self._times: list[float] = [origin]
        self._avail: list[int] = [capacity]
        #: Cached free-area prefix sums; None whenever the profile mutated
        #: since the last area query (rebuilt lazily by :meth:`_ensure_prefix`).
        self._prefix: "list[float] | np.ndarray | None" = None
        #: NumPy mirrors of ``_times`` / ``_avail`` for vectorized fit
        #: probes; built lazily by :meth:`_mirrors` and kept in sync
        #: incrementally by :meth:`_shift` / :meth:`compact` (never rebuilt
        #: from scratch on the mutation path).
        self._np_times: np.ndarray | None = None
        self._np_avail: np.ndarray | None = None
        #: Configured scan back-end (see class docs) and the lazily built
        #: segment-tree index used when it resolves to ``"tree"``.
        self._backend = backend
        self._segtree: SegmentTreeIndex | None = None
        #: The ``"adaptive"`` back-end's meta-controller (None otherwise).
        #: Imported lazily: :mod:`repro.autotune` reads this module's
        #: thresholds, so a top-level import would be circular.
        self._autotune = None
        if backend == "adaptive":
            from repro.autotune import AdaptiveController

            self._autotune = AdaptiveController()
        #: Always-on operation counters (see :class:`repro.perf.ProfileStats`).
        self.stats = ProfileStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Total number of processors in the system."""
        return self._capacity

    @property
    def origin(self) -> float:
        """Earliest instant described by the profile."""
        return self._times[0]

    @property
    def backend(self) -> str:
        """Configured scan back-end (``"auto"`` resolves per query)."""
        return self._backend

    @property
    def breakpoints(self) -> tuple[float, ...]:
        """The step-change instants, including the origin."""
        return tuple(self._times)

    def segments(self) -> Iterator[tuple[float, float, int]]:
        """Yield ``(start, end, available)`` triples; the last end is ``inf``."""
        for i, avail in enumerate(self._avail):
            start = self._times[i]
            end = self._times[i + 1] if i + 1 < len(self._times) else math.inf
            yield (start, end, avail)

    def __len__(self) -> int:
        return len(self._times)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AvailabilityProfile):
            return NotImplemented
        return (
            self._capacity == other._capacity
            and self._times == other._times
            and self._avail == other._avail
        )

    def __hash__(self) -> int:  # pragma: no cover - profiles are mutable
        raise TypeError("AvailabilityProfile is mutable and unhashable")

    def __repr__(self) -> str:
        parts = ", ".join(
            f"[{s:g},{'inf' if math.isinf(e) else format(e, 'g')}):{a}"
            for s, e, a in self.segments()
        )
        return f"AvailabilityProfile(capacity={self._capacity}, {parts})"

    def copy(self) -> "AvailabilityProfile":
        """Return an independent deep copy (with fresh stats counters)."""
        new = AvailabilityProfile.__new__(AvailabilityProfile)
        new._capacity = self._capacity
        new._times = list(self._times)
        new._avail = list(self._avail)
        new._prefix = None
        new._np_times = None
        new._np_avail = None
        new._backend = self._backend
        new._segtree = None
        new._autotune = None
        if self._autotune is not None:
            from repro.autotune import AdaptiveController

            # Fresh controller (stats are fresh too), but start it on the
            # source's current choice so the copy resumes where it was.
            new._autotune = AdaptiveController(
                self._autotune.config, initial=self._autotune.current
            )
        new.stats = ProfileStats()
        return new

    @classmethod
    def from_segments(
        cls,
        capacity: int,
        segments: Sequence[tuple[float, int]],
        backend: str = "auto",
    ) -> "AvailabilityProfile":
        """Build a profile from ``(start_time, available)`` pairs.

        The pairs must be in strictly increasing time order; each pair opens
        a segment lasting until the next pair (the last to ``+inf``).
        """
        if not segments:
            raise ConfigurationError("from_segments requires at least one segment")
        prof = cls(capacity, origin=segments[0][0], backend=backend)
        times: list[float] = []
        avail: list[int] = []
        prev_t = -math.inf
        for t, a in segments:
            if t <= prev_t:
                raise ConfigurationError("segment times must be strictly increasing")
            if not 0 <= a <= capacity:
                raise ConfigurationError(
                    f"availability {a} outside [0, {capacity}]"
                )
            if avail and avail[-1] == a:  # canonicalize
                prev_t = t
                continue
            times.append(float(t))
            avail.append(int(a))
            prev_t = t
        prof._times = times
        prof._avail = avail
        return prof

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _index_at(self, t: float) -> int:
        """Index of the segment containing time ``t`` (``t >= origin``)."""
        if t < self._times[0] - TIME_EPS:
            raise SchedulingError(
                f"time {t} precedes profile origin {self._times[0]}"
            )
        # bisect_right-1 gives the segment whose start <= t.
        i = bisect_right(self._times, t) - 1
        return max(i, 0)

    def available_at(self, t: float) -> int:
        """Free processors at instant ``t`` (right-open convention)."""
        return self._avail[self._index_at(t)]

    def _mirrors(self) -> tuple[np.ndarray, np.ndarray]:
        """NumPy views of ``(_times, _avail)`` for vectorized probes.

        Built from the lists on first use (O(S)); thereafter every windowed
        rewrite splices the same change into the mirrors at C speed, so they
        are never rebuilt from scratch while probes and mutations alternate
        — the access pattern of the scheduling hot path.
        """
        avail_m = self._np_avail
        if avail_m is None:
            avail_m = np.asarray(self._avail, dtype=np.int64)
            self._np_avail = avail_m
        times_m = self._np_times
        if times_m is None:
            times_m = np.asarray(self._times, dtype=np.float64)
            self._np_times = times_m
        return times_m, avail_m

    def scan_backend(self) -> str:
        """Resolve the back-end answering the next query (one of the four
        concrete scans — never ``"auto"`` or ``"adaptive"``).

        An explicit constructor choice wins; ``"adaptive"`` asks the
        profile's :attr:`autotune` controller (which may switch per
        regime); ``"auto"`` picks by live segment count (see the module
        docs for why it never picks the tree), and profile classes that
        disable :attr:`VECTORIZED_SCAN` always walk scalar.
        """
        backend = self._backend
        if backend == "adaptive":
            return self._autotune.backend_for(self)
        if backend != "auto":
            return backend
        if not self.VECTORIZED_SCAN:
            return "scalar"
        return resolve_auto_backend(len(self._times))

    @property
    def autotune(self):
        """The ``"adaptive"`` back-end's controller, or ``None``.

        See :class:`repro.autotune.AdaptiveController`.
        """
        return self._autotune

    def adopt_autotune(self, controller) -> None:
        """Transplant an existing adaptive controller onto this profile.

        Used when a capacity change rebuilds the :class:`Schedule` on a
        new machine size: the replacement profile keeps the predecessor's
        learned back-end choice, latency EWMA and switch history instead
        of re-learning from scratch.  Only valid on an ``"adaptive"``
        profile; the controller re-baselines onto this profile's counters.
        """
        if self._backend != "adaptive":
            raise ConfigurationError(
                f"adopt_autotune requires backend='adaptive', "
                f"got {self._backend!r}"
            )
        self._autotune = controller
        controller.rebind(self)

    def _tree(self) -> SegmentTreeIndex:
        """The consolidated segment-tree index (built on first use)."""
        times_m, avail_m = self._mirrors()
        tree = self._segtree
        if tree is None:
            tree = SegmentTreeIndex(times_m, avail_m)
            self._segtree = tree
        else:
            tree.consolidate(times_m, avail_m)
        return tree

    def min_available(self, t0: float, t1: float) -> int:
        """Minimum free processors over the interval ``[t0, t1)``.

        Degenerate intervals (``t1 <= t0``) report availability at ``t0``.
        O(window) on the scalar/vector back-ends, O(log S) on the tree.
        """
        if t1 <= t0:
            return self.available_at(t0)
        i = self._index_at(t0)
        backend = self.scan_backend()
        if backend == "tree":
            # Same window as the scalar walk below: segment i plus every
            # later segment starting strictly before t1 - TIME_EPS.
            hi = max(bisect_left(self._times, t1 - TIME_EPS), i + 1)
            return self._tree().range_min(i, hi)
        if backend == "kernel":
            # Same window, reduced flat over the int64 mirror by the
            # kernel layer (compiled loop or numpy min — bit-identical).
            hi = max(bisect_left(self._times, t1 - TIME_EPS), i + 1)
            _, avail_m = self._mirrors()
            return kernels.active().range_min(avail_m, i, hi)
        lo = self._avail[i]
        n = len(self._times)
        i += 1
        while i < n and self._times[i] < t1 - TIME_EPS:
            if self._avail[i] < lo:
                lo = self._avail[i]
            i += 1
        return lo

    def _ensure_prefix(self) -> "list[float] | np.ndarray":
        """Return the cached free-area prefix sums, rebuilding if stale.

        ``prefix[k]`` is the free processor-time integral from the origin to
        ``_times[k]``.  The cache is dropped on every mutation and rebuilt
        in one O(S) pass on the next area query, so a burst of queries
        between mutations (the tie-break rule probes several windows per
        arrival) costs O(log S) each.
        """
        prefix = self._prefix
        if prefix is None:
            times = self._times
            avail = self._avail
            prefix = [0.0] * len(times)
            acc = 0.0
            for k in range(1, len(times)):
                acc += avail[k - 1] * (times[k] - times[k - 1])
                prefix[k] = acc
            self._prefix = prefix
            self.stats.prefix_rebuilds += 1
        return prefix

    def _cumulative_free(self, t: float, prefix: "Sequence[float] | np.ndarray") -> float:
        """Free area integrated over ``[origin, t)`` (``t >= origin``)."""
        times = self._times
        i = bisect_right(times, t) - 1
        if i < 0:  # t within TIME_EPS below the origin
            return 0.0
        return prefix[i] + self._avail[i] * (t - times[i])

    def free_area(self, t0: float, t1: float) -> float:
        """Integral of free processors over ``[t0, t1)`` (processor-time).

        O(log S) via the cached prefix sums (plus an O(S) rebuild on the
        first query after a mutation).
        """
        if t1 <= t0:
            return 0.0
        if math.isinf(t1):
            raise SchedulingError("free_area requires a finite upper bound")
        if t0 < self._times[0] - TIME_EPS:
            raise SchedulingError(
                f"time {t0} precedes profile origin {self._times[0]}"
            )
        backend = self.scan_backend()
        if backend == "tree":
            # The tree's incrementally maintained prefix is bit-identical to
            # the list prefix (same sequential accumulation) but avoids the
            # O(S) Python rebuild after every mutation.
            prefix = self._tree().prefix()
            return float(
                self._cumulative_free(t1, prefix) - self._cumulative_free(t0, prefix)
            )
        if backend == "kernel":
            # np.cumsum over the mirror segment areas accumulates in the
            # same sequential order as the Python loop, so the cached
            # array is bit-identical to the list prefix (the rebuild just
            # runs at C speed).  Shares the ``_prefix`` cache slot and its
            # invalidation-on-mutation lifecycle.
            prefix = self._prefix
            if prefix is None:
                times_m, avail_m = self._mirrors()
                prefix = kernels.free_area_prefix(times_m, avail_m)
                self._prefix = prefix
                self.stats.prefix_rebuilds += 1
            return float(
                self._cumulative_free(t1, prefix) - self._cumulative_free(t0, prefix)
            )
        prefix = self._ensure_prefix()
        return self._cumulative_free(t1, prefix) - self._cumulative_free(t0, prefix)

    def busy_area(self, t0: float, t1: float) -> float:
        """Integral of *busy* processors over ``[t0, t1)``."""
        if t1 <= t0:
            return 0.0
        return self._capacity * (t1 - t0) - self.free_area(t0, t1)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _shift(self, t0: float, t1: float, delta: int) -> None:
        """Add ``delta`` free processors over ``[t0, t1)``, validating bounds.

        Validation happens *before* any mutation, so a rejected operation
        leaves the profile bit-identical (no stray breakpoints).

        Implementation: a single *windowed rewrite*.  The affected segment
        window is located by bisection, its bounds snapped to existing
        breakpoints within :data:`TIME_EPS` (never creating sliver
        segments), validated in one scan, rebuilt canonically (equal
        neighbours merged as it is built, including against both
        untouched border segments), and spliced in with one slice
        assignment per array.  Per-op Python work is proportional to the
        *window* size, not the total segment count.
        """
        if math.isnan(t0) or math.isnan(t1):
            raise SchedulingError("reservation times must not be NaN")
        if t1 <= t0 + TIME_EPS:
            raise SchedulingError(
                f"reservation interval [{t0}, {t1}) is empty or inverted"
            )
        if math.isinf(t1):
            raise SchedulingError("reservations must have a finite end time")
        times = self._times
        avail = self._avail
        n = len(times)
        # Locate the left edge and snap it to a breakpoint within TIME_EPS.
        i = self._index_at(t0)
        if abs(times[i] - t0) <= TIME_EPS:
            t0 = times[i]
        elif i + 1 < n and abs(times[i + 1] - t0) <= TIME_EPS:
            i += 1
            t0 = times[i]
        # Locate the right edge; `last` is the final shifted segment and
        # `trailing` marks whether t1 falls strictly inside it.
        j = bisect_right(times, t1) - 1
        trailing = False
        if abs(times[j] - t1) <= TIME_EPS:
            t1 = times[j]
            last = j - 1
        elif j + 1 < n and abs(times[j + 1] - t1) <= TIME_EPS:
            t1 = times[j + 1]
            last = j
        else:
            last = j
            trailing = True
        if t1 <= t0:
            return  # both edges snapped to the same breakpoint: no-op
        # Validate the whole window before touching anything.
        window = avail[i : last + 1]
        if delta < 0:
            tightest = min(window)
            if tightest < -delta:
                raise CapacityExceededError(
                    f"reserving {-delta} processors over [{t0}, {t1}) would "
                    f"exceed capacity: only {tightest} free at the tightest "
                    "instant"
                )
        else:
            widest = max(window)
            if widest + delta > self._capacity:
                raise CapacityExceededError(
                    f"releasing {delta} processors over [{t0}, {t1}) would "
                    f"exceed capacity {self._capacity}"
                )
        # Build the replacement window, merging equal neighbours on the fly.
        new_times: list[float] = []
        new_avail: list[int] = []
        if t0 > times[i]:
            # Left part of segment i survives unshifted.
            new_times.append(times[i])
            new_avail.append(avail[i])
            prev = avail[i]
        else:
            # Window starts at a breakpoint: merge candidate is segment i-1.
            prev = avail[i - 1] if i > 0 else -1
        start = t0
        for k in range(i, last + 1):
            value = avail[k] + delta
            if value != prev:
                new_times.append(start if k == i else times[k])
                new_avail.append(value)
                prev = value
            # else: equal to the previous value — the breakpoint vanishes.
        if trailing:
            # Right part of segment `last` survives unshifted; it cannot
            # merge (its value differs from avail[last] + delta by delta).
            new_times.append(t1)
            new_avail.append(avail[last])
        hi = last + 1
        if not trailing and hi < n and avail[hi] == prev:
            hi += 1  # absorb the right border segment's breakpoint
        times[i:hi] = new_times
        avail[i:hi] = new_avail
        # Same splice, applied to any live mirror in one C-level concatenate
        # each.  (Explicit dtypes: an empty replacement window must not
        # promote the availability mirror to float64.)
        mirror = self._np_avail
        if mirror is not None:
            self._np_avail = np.concatenate(
                (mirror[:i], np.asarray(new_avail, dtype=np.int64), mirror[hi:])
            )
        mirror = self._np_times
        if mirror is not None:
            self._np_times = np.concatenate(
                (mirror[:i], np.asarray(new_times, dtype=np.float64), mirror[hi:])
            )
        tree = self._segtree
        if tree is not None:
            # Leaf i-1's *width* changes when the window starts at breakpoint
            # i and merges into the left border segment, so the dirty suffix
            # starts one leaf early.
            tree.mark_dirty(i - 1 if i > 0 else 0)
        self._prefix = None
        stats = self.stats
        stats.shift_ops += 1
        touched = last - i + 1
        stats.segments_touched += touched
        stats.last_touched = touched

    def reserve(self, t0: float, t1: float, processors: int) -> None:
        """Commit ``processors`` CPUs over ``[t0, t1)``.

        Raises :class:`~repro.errors.CapacityExceededError` if any instant in
        the interval has fewer than ``processors`` free; the profile is left
        unmodified in that case.
        """
        if processors <= 0:
            raise SchedulingError(f"processors must be positive, got {processors}")
        self._shift(t0, t1, -processors)

    def release(self, t0: float, t1: float, processors: int) -> None:
        """Undo a reservation of ``processors`` CPUs over ``[t0, t1)``."""
        if processors <= 0:
            raise SchedulingError(f"processors must be positive, got {processors}")
        self._shift(t0, t1, processors)

    def compact(self, before: float) -> None:
        """Forget structure earlier than ``before``.

        Scheduling decisions never place work before the current arrival
        time, so segments wholly before ``before`` can be merged into a
        single leading segment.  This bounds profile growth to O(live
        allocations) over arbitrarily long simulations.  The availability
        *at* ``before`` is preserved; history before it is not (callers that
        need utilization integrals account for areas at commit time).
        """
        if before <= self._times[0]:
            return
        i = self._index_at(before)
        if i == 0:
            return
        # Keep segment i onward; re-anchor its start at `before` only if the
        # origin moves past the old breakpoint.  The kept suffix is already
        # canonical (adjacent values were distinct before the trim).
        self._times = self._times[i:]
        self._avail = self._avail[i:]
        if self._times[0] < before:
            self._times[0] = before
        mirror = self._np_avail
        if mirror is not None:
            self._np_avail = mirror[i:]
        mirror = self._np_times
        if mirror is not None:
            # Copy before the re-anchor write: the slice is a view.
            mirror = mirror[i:].copy()
            mirror[0] = self._times[0]
            self._np_times = mirror
        tree = self._segtree
        if tree is not None:
            tree.mark_dirty(0)  # every leaf index shifts left by i
        self._prefix = None
        self.stats.compactions += 1

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`~repro.errors.SchedulingError` on any broken invariant."""
        if len(self._times) != len(self._avail) or not self._times:
            raise SchedulingError("profile arrays out of sync or empty")
        for a, b in zip(self._times, self._times[1:]):
            if not a < b:
                raise SchedulingError(f"breakpoints not increasing: {a} !< {b}")
        for a in self._avail:
            if not 0 <= a <= self._capacity:
                raise SchedulingError(f"availability {a} out of range")
        for a, b in zip(self._avail, self._avail[1:]):
            if a == b:
                raise SchedulingError("profile not canonical: equal neighbours")
        mirror = self._np_avail
        if mirror is not None and list(mirror) != self._avail:
            raise SchedulingError("NumPy availability mirror out of sync")
        mirror = self._np_times
        if mirror is not None and list(mirror) != self._times:
            raise SchedulingError("NumPy breakpoint mirror out of sync")
        if self._segtree is not None:
            try:
                self._tree().check_against(self._times, self._avail)
            except AssertionError as exc:
                raise SchedulingError(str(exc)) from exc
