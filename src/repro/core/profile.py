"""The free-processor availability profile.

The greedy heuristic of Section 5.2 "keeps track of available maximal holes
in the processor-time 2D space".  The equivalent primitive implemented here
is the *availability profile*: a right-open step function ``a(t)`` giving the
number of free processors at each instant.  Maximal holes are exactly the
maximal axis-aligned rectangles under this step function and are derived in
:mod:`repro.core.holes`; all hot-path scheduling operations (reservation,
earliest-fit search, free-area integrals) run directly on the step function,
which is both simpler and asymptotically cheaper.

Representation
--------------
Two parallel lists ``_times`` and ``_avail``: ``_avail[i]`` processors are
free throughout ``[_times[i], _times[i+1])``; the last segment extends to
``+inf``.  ``_times[0]`` is the profile *origin* — the earliest instant the
profile describes (it advances under :meth:`compact`).

Invariants (checked by :meth:`check_invariants` and the test suite):

* ``_times`` strictly increasing, ``len(_times) == len(_avail) >= 1``;
* ``0 <= _avail[i] <= capacity`` for all ``i``;
* adjacent segments have distinct availability (canonical form).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterator, Sequence

from repro.errors import CapacityExceededError, ConfigurationError, SchedulingError
from repro.core.resources import TIME_EPS

__all__ = ["AvailabilityProfile"]


class AvailabilityProfile:
    """Number of free processors as a right-open step function of time.

    Parameters
    ----------
    capacity:
        Total number of (homogeneous) processors in the system.
    origin:
        The earliest instant described by the profile; all processors are
        free from ``origin`` onward in a fresh profile.
    """

    __slots__ = ("_capacity", "_times", "_avail")

    def __init__(self, capacity: int, origin: float = 0.0) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity <= 0:
            raise ConfigurationError(f"capacity must be a positive int, got {capacity!r}")
        if math.isnan(origin) or math.isinf(origin):
            raise ConfigurationError(f"origin must be finite, got {origin!r}")
        self._capacity = capacity
        self._times: list[float] = [origin]
        self._avail: list[int] = [capacity]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Total number of processors in the system."""
        return self._capacity

    @property
    def origin(self) -> float:
        """Earliest instant described by the profile."""
        return self._times[0]

    @property
    def breakpoints(self) -> tuple[float, ...]:
        """The step-change instants, including the origin."""
        return tuple(self._times)

    def segments(self) -> Iterator[tuple[float, float, int]]:
        """Yield ``(start, end, available)`` triples; the last end is ``inf``."""
        for i, avail in enumerate(self._avail):
            start = self._times[i]
            end = self._times[i + 1] if i + 1 < len(self._times) else math.inf
            yield (start, end, avail)

    def __len__(self) -> int:
        return len(self._times)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AvailabilityProfile):
            return NotImplemented
        return (
            self._capacity == other._capacity
            and self._times == other._times
            and self._avail == other._avail
        )

    def __hash__(self) -> int:  # pragma: no cover - profiles are mutable
        raise TypeError("AvailabilityProfile is mutable and unhashable")

    def __repr__(self) -> str:
        parts = ", ".join(
            f"[{s:g},{'inf' if math.isinf(e) else format(e, 'g')}):{a}"
            for s, e, a in self.segments()
        )
        return f"AvailabilityProfile(capacity={self._capacity}, {parts})"

    def copy(self) -> "AvailabilityProfile":
        """Return an independent deep copy."""
        new = AvailabilityProfile.__new__(AvailabilityProfile)
        new._capacity = self._capacity
        new._times = list(self._times)
        new._avail = list(self._avail)
        return new

    @classmethod
    def from_segments(
        cls,
        capacity: int,
        segments: Sequence[tuple[float, int]],
    ) -> "AvailabilityProfile":
        """Build a profile from ``(start_time, available)`` pairs.

        The pairs must be in strictly increasing time order; each pair opens
        a segment lasting until the next pair (the last to ``+inf``).
        """
        if not segments:
            raise ConfigurationError("from_segments requires at least one segment")
        prof = cls(capacity, origin=segments[0][0])
        times: list[float] = []
        avail: list[int] = []
        prev_t = -math.inf
        for t, a in segments:
            if t <= prev_t:
                raise ConfigurationError("segment times must be strictly increasing")
            if not 0 <= a <= capacity:
                raise ConfigurationError(
                    f"availability {a} outside [0, {capacity}]"
                )
            if avail and avail[-1] == a:  # canonicalize
                prev_t = t
                continue
            times.append(float(t))
            avail.append(int(a))
            prev_t = t
        prof._times = times
        prof._avail = avail
        return prof

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _index_at(self, t: float) -> int:
        """Index of the segment containing time ``t`` (``t >= origin``)."""
        if t < self._times[0] - TIME_EPS:
            raise SchedulingError(
                f"time {t} precedes profile origin {self._times[0]}"
            )
        # bisect_right-1 gives the segment whose start <= t.
        i = bisect_right(self._times, t) - 1
        return max(i, 0)

    def available_at(self, t: float) -> int:
        """Free processors at instant ``t`` (right-open convention)."""
        return self._avail[self._index_at(t)]

    def min_available(self, t0: float, t1: float) -> int:
        """Minimum free processors over the interval ``[t0, t1)``.

        Degenerate intervals (``t1 <= t0``) report availability at ``t0``.
        """
        if t1 <= t0:
            return self.available_at(t0)
        i = self._index_at(t0)
        lo = self._avail[i]
        n = len(self._times)
        i += 1
        while i < n and self._times[i] < t1 - TIME_EPS:
            if self._avail[i] < lo:
                lo = self._avail[i]
            i += 1
        return lo

    def free_area(self, t0: float, t1: float) -> float:
        """Integral of free processors over ``[t0, t1)`` (processor-time)."""
        if t1 <= t0:
            return 0.0
        if math.isinf(t1):
            raise SchedulingError("free_area requires a finite upper bound")
        total = 0.0
        i = self._index_at(t0)
        n = len(self._times)
        cur = t0
        while cur < t1 - TIME_EPS:
            seg_end = self._times[i + 1] if i + 1 < n else math.inf
            upper = min(seg_end, t1)
            total += self._avail[i] * (upper - cur)
            cur = upper
            i += 1
        return total

    def busy_area(self, t0: float, t1: float) -> float:
        """Integral of *busy* processors over ``[t0, t1)``."""
        if t1 <= t0:
            return 0.0
        return self._capacity * (t1 - t0) - self.free_area(t0, t1)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _split_at(self, t: float) -> int:
        """Ensure a breakpoint exists at ``t``; return its segment index.

        Times within :data:`TIME_EPS` of an existing breakpoint are snapped
        to it rather than creating a sliver segment.
        """
        i = self._index_at(t)
        if abs(self._times[i] - t) <= TIME_EPS:
            return i
        if i + 1 < len(self._times) and abs(self._times[i + 1] - t) <= TIME_EPS:
            return i + 1
        self._times.insert(i + 1, t)
        self._avail.insert(i + 1, self._avail[i])
        return i + 1

    def _canonicalize(self, lo: int, hi: int) -> None:
        """Merge equal-availability neighbours in index window [lo-1, hi+1]."""
        start = max(lo - 1, 0)
        end = min(hi + 1, len(self._avail) - 1)
        i = max(start, 1)
        while i <= end and i < len(self._avail):
            if self._avail[i] == self._avail[i - 1]:
                del self._avail[i]
                del self._times[i]
                end -= 1
            else:
                i += 1

    def _max_available(self, t0: float, t1: float) -> int:
        """Maximum free processors over ``[t0, t1)``."""
        i = self._index_at(t0)
        hi = self._avail[i]
        n = len(self._times)
        i += 1
        while i < n and self._times[i] < t1 - TIME_EPS:
            if self._avail[i] > hi:
                hi = self._avail[i]
            i += 1
        return hi

    def _shift(self, t0: float, t1: float, delta: int) -> None:
        """Add ``delta`` free processors over ``[t0, t1)``, validating bounds.

        Validation happens *before* any mutation, so a rejected operation
        leaves the profile bit-identical (no stray breakpoints).
        """
        if math.isnan(t0) or math.isnan(t1):
            raise SchedulingError("reservation times must not be NaN")
        if t1 <= t0 + TIME_EPS:
            raise SchedulingError(
                f"reservation interval [{t0}, {t1}) is empty or inverted"
            )
        if math.isinf(t1):
            raise SchedulingError("reservations must have a finite end time")
        if delta < 0 and self.min_available(t0, t1) < -delta:
            raise CapacityExceededError(
                f"reserving {-delta} processors over [{t0}, {t1}) would "
                f"exceed capacity: only {self.min_available(t0, t1)} free at "
                "the tightest instant"
            )
        if delta > 0 and self._max_available(t0, t1) + delta > self._capacity:
            raise CapacityExceededError(
                f"releasing {delta} processors over [{t0}, {t1}) would "
                f"exceed capacity {self._capacity}"
            )
        i0 = self._split_at(t0)
        i1 = self._split_at(t1)
        for i in range(i0, i1):
            self._avail[i] += delta
        self._canonicalize(i0, i1)

    def reserve(self, t0: float, t1: float, processors: int) -> None:
        """Commit ``processors`` CPUs over ``[t0, t1)``.

        Raises :class:`~repro.errors.CapacityExceededError` if any instant in
        the interval has fewer than ``processors`` free; the profile is left
        unmodified in that case.
        """
        if processors <= 0:
            raise SchedulingError(f"processors must be positive, got {processors}")
        self._shift(t0, t1, -processors)

    def release(self, t0: float, t1: float, processors: int) -> None:
        """Undo a reservation of ``processors`` CPUs over ``[t0, t1)``."""
        if processors <= 0:
            raise SchedulingError(f"processors must be positive, got {processors}")
        self._shift(t0, t1, processors)

    def compact(self, before: float) -> None:
        """Forget structure earlier than ``before``.

        Scheduling decisions never place work before the current arrival
        time, so segments wholly before ``before`` can be merged into a
        single leading segment.  This bounds profile growth to O(live
        allocations) over arbitrarily long simulations.  The availability
        *at* ``before`` is preserved; history before it is not (callers that
        need utilization integrals account for areas at commit time).
        """
        if before <= self._times[0]:
            return
        i = self._index_at(before)
        if i == 0:
            return
        # Keep segment i onward; re-anchor its start at `before` only if the
        # origin moves past the old breakpoint.
        self._times = self._times[i:]
        self._avail = self._avail[i:]
        if self._times[0] < before:
            self._times[0] = before
        self._canonicalize(0, 0)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`~repro.errors.SchedulingError` on any broken invariant."""
        if len(self._times) != len(self._avail) or not self._times:
            raise SchedulingError("profile arrays out of sync or empty")
        for a, b in zip(self._times, self._times[1:]):
            if not a < b:
                raise SchedulingError(f"breakpoints not increasing: {a} !< {b}")
        for a in self._avail:
            if not 0 <= a <= self._capacity:
                raise SchedulingError(f"availability {a} out of range")
        for a, b in zip(self._avail, self._avail[1:]):
            if a == b:
                raise SchedulingError("profile not canonical: equal neighbours")
