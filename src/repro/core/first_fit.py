"""Earliest-feasible-start search (the "first fit" of Section 5.2).

Given the availability profile, a task needing ``processors`` CPUs for
``duration`` time, a release time and an absolute deadline, find the
*smallest* start ``s >= release`` such that at least ``processors``
processors are free throughout ``[s, s + duration)`` and
``s + duration <= deadline``.

The search walks profile segments once: from the segment containing the
release time, it tracks the start of the current *run* of segments with
sufficient availability; whenever the run grows to cover ``duration`` the
run's start is the answer, and whenever a deficient segment is hit the run
restarts after it.  Complexity is O(segments), and the trailing infinite
segment guarantees termination.  The maximal-holes formulation in
:mod:`repro.core.holes` provides an independent oracle for this function
(exercised by the property-based tests).
"""

from __future__ import annotations

import math

from repro.core.profile import AvailabilityProfile
from repro.core.resources import TIME_EPS

__all__ = ["earliest_fit"]


def earliest_fit(
    profile: AvailabilityProfile,
    processors: int,
    duration: float,
    release: float,
    deadline: float = math.inf,
) -> float | None:
    """Earliest start for a ``processors x duration`` task, or ``None``.

    Parameters
    ----------
    profile:
        Current committed availability.
    processors, duration:
        The task's rigid shape.
    release:
        Earliest permissible start (job release or predecessor finish).
    deadline:
        Absolute time by which the task must *finish*.

    Returns
    -------
    The earliest feasible start time, or ``None`` when no placement
    completes by ``deadline`` (including the case ``processors`` exceeds the
    machine capacity, which can never fit).
    """
    if processors > profile.capacity:
        return None
    if release + duration > deadline + TIME_EPS:
        return None
    release = max(release, profile.origin)

    times = profile._times  # noqa: SLF001 - hot path, same package
    avail = profile._avail  # noqa: SLF001
    n = len(times)

    # Segment containing the release instant.
    from bisect import bisect_right

    i = max(bisect_right(times, release) - 1, 0)

    run_start: float | None = release if avail[i] >= processors else None
    while True:
        if run_start is not None:
            # Extend the run from segment i forward until it covers duration.
            j = i
            while True:
                seg_end = times[j + 1] if j + 1 < n else math.inf
                if seg_end - run_start >= duration - TIME_EPS:
                    if run_start + duration > deadline + TIME_EPS:
                        return None
                    return run_start
                j += 1
                if avail[j] < processors:
                    i = j
                    run_start = None
                    break
        # Advance to the next segment with sufficient availability.
        if run_start is None:
            j = i + 1
            while j < n and avail[j] < processors:
                j += 1
            if j == n:
                return None  # trailing segment deficient: never fits
            i = j
            run_start = max(times[i], release)
            if run_start + duration > deadline + TIME_EPS:
                return None
