"""Earliest-feasible-start search (the "first fit" of Section 5.2).

Given the availability profile, a task needing ``processors`` CPUs for
``duration`` time, a release time and an absolute deadline, find the
*smallest* start ``s >= release`` such that at least ``processors``
processors are free throughout ``[s, s + duration)`` and
``s + duration <= deadline``.

The search starts at the segment containing the release time — found by
bisection, never by scanning from the profile origin — then looks for the
first *run* of segments with sufficient availability that covers
``duration``; the run's (release-clamped) start is the answer.  Three
interchangeable scan back-ends implement that search, selected by
:meth:`AvailabilityProfile.scan_backend`:

* :func:`_scalar_scan` walks segments one by one in Python — O(segments
  scanned past the release), cheapest on small profiles;
* :func:`_vector_scan` finds the runs — and feasibility-tests all of them
  at once — with vectorized comparisons over the profile's NumPy mirrors
  (:meth:`AvailabilityProfile._mirrors`).  On a 10k-segment profile this is
  an order of magnitude faster than the walk, which is what makes
  10k-arrival benchmarks tractable — but still O(S) per probe;
* :func:`_tree_scan` alternates :meth:`SegmentTreeIndex.first_at_least` /
  :meth:`~repro.core.segtree.SegmentTreeIndex.first_below` descents over
  the profile's segment-tree index — O(log S) per run examined, *sublinear
  in fragmentation*, because subtrees whose max availability cannot fit
  the request are skipped wholesale.

Under the default ``"auto"`` back-end, profiles below
:data:`VECTOR_MIN_SEGMENTS` use the scalar walk (the numpy fixed overhead
loses at that scale), as do profile classes that set ``VECTORIZED_SCAN =
False`` (the legacy baseline in ``benchmarks/``); larger profiles use the
vectorized scan.  The tree is an explicit opt-in for query-dominated
fragmented regimes (see the :mod:`repro.core.profile` module docs).  All
back-ends return bit-identical results — property tests drive them with
the same random profiles, and the maximal-holes formulation in
:mod:`repro.core.holes` provides an independent oracle.

Each call bumps the profile's :class:`~repro.perf.ProfileStats` probe
counters (``probes``, ``probe_segments``) so decision cost stays observable
at simulation scale.  (For the tree back-end ``probe_segments`` counts
*tree nodes visited*, the cost driver of that search.)
"""

from __future__ import annotations

import math
from bisect import bisect_right

import numpy as np

from repro.core import kernels
from repro.core.profile import (
    TREE_MIN_SEGMENTS,
    VECTOR_MIN_SEGMENTS,
    AvailabilityProfile,
)
from repro.core.resources import TIME_EPS

__all__ = ["earliest_fit", "TREE_MIN_SEGMENTS", "VECTOR_MIN_SEGMENTS"]


def earliest_fit(
    profile: AvailabilityProfile,
    processors: int,
    duration: float,
    release: float,
    deadline: float = math.inf,
) -> float | None:
    """Earliest start for a ``processors x duration`` task, or ``None``.

    Parameters
    ----------
    profile:
        Current committed availability.
    processors, duration:
        The task's rigid shape.
    release:
        Earliest permissible start (job release or predecessor finish).
    deadline:
        Absolute time by which the task must *finish*.

    Returns
    -------
    The earliest feasible start time, or ``None`` when no placement
    completes by ``deadline`` (including the case ``processors`` exceeds the
    machine capacity, which can never fit).
    """
    stats = profile.stats
    stats.probes += 1
    if processors > profile.capacity:
        return None
    if release + duration > deadline + TIME_EPS:
        return None
    release = max(release, profile.origin)

    times = profile._times  # noqa: SLF001 - hot path, same package
    n = len(times)

    # Segment containing the release instant (bisected, never scanned).
    i = max(bisect_right(times, release) - 1, 0)

    backend = profile.scan_backend()
    if backend == "tree":
        return _tree_scan(profile, times, n, i, processors, duration, release, deadline)
    if backend == "vector":
        return _vector_scan(profile, times, n, i, processors, duration, release, deadline)
    if backend == "kernel":
        return _kernel_scan(profile, n, i, processors, duration, release, deadline)
    return _scalar_scan(profile, times, n, i, processors, duration, release, deadline)


def _kernel_scan(
    profile: AvailabilityProfile,
    n: int,
    i: int,
    processors: int,
    duration: float,
    release: float,
    deadline: float,
) -> float | None:
    """Flat-array search via the decision-kernel layer.

    Dispatches to the compiled C port of the scalar walk when available
    (``REPRO_KERNEL``), or to its bit-identical numpy fallback; see
    :mod:`repro.core.kernels`.  Decisions always match the other scan
    back-ends; the ``probe_segments`` accounting follows whichever
    implementation serves the call.
    """
    times_m, avail_m = profile._mirrors()  # noqa: SLF001
    start, scanned = kernels.active().earliest_fit_arrays(
        times_m, avail_m, n, i, processors, duration, release, deadline
    )
    profile.stats.probe_segments += scanned
    return start


def _scalar_scan(
    profile: AvailabilityProfile,
    times: list[float],
    n: int,
    i: int,
    processors: int,
    duration: float,
    release: float,
    deadline: float,
) -> float | None:
    """Per-segment Python walk (the seed implementation's search loop)."""
    stats = profile.stats
    avail = profile._avail  # noqa: SLF001
    first = i

    run_start: float | None = release if avail[i] >= processors else None
    while True:
        if run_start is not None:
            # Extend the run from segment i forward until it covers duration.
            j = i
            while True:
                seg_end = times[j + 1] if j + 1 < n else math.inf
                if seg_end - run_start >= duration - TIME_EPS:
                    stats.probe_segments += j - first + 1
                    if run_start + duration > deadline + TIME_EPS:
                        return None
                    return run_start
                j += 1
                if avail[j] < processors:
                    i = j
                    run_start = None
                    break
        # Advance to the next segment with sufficient availability.
        if run_start is None:
            j = i + 1
            while j < n and avail[j] < processors:
                j += 1
            if j == n:
                stats.probe_segments += n - first
                return None  # trailing segment deficient: never fits
            i = j
            run_start = max(times[i], release)
            if run_start + duration > deadline + TIME_EPS:
                stats.probe_segments += i - first + 1
                return None


def _vector_scan(
    profile: AvailabilityProfile,
    times: list[float],
    n: int,
    i: int,
    processors: int,
    duration: float,
    release: float,
    deadline: float,
) -> float | None:
    """Vectorized run search over the NumPy profile mirrors.

    One ``>=`` comparison over the availability mirror tail yields the
    sufficiency mask; its 0→1 / 1→0 transitions delimit the candidate runs;
    run starts/ends gathered from the breakpoint mirror give every run's
    duration coverage at once, and the first run that covers ``duration``
    wins.  All comparisons replicate :func:`_scalar_scan`'s float math (same
    IEEE-754 subtractions, same TIME_EPS slack), so both back-ends return
    bit-identical results.
    """
    stats = profile.stats
    np_times, np_avail = profile._mirrors()
    mask = np_avail[i:] >= processors
    m8 = mask.view(np.int8)
    d = np.diff(m8)
    length = m8.shape[0]
    # Candidate runs [a, b) of sufficient availability, in time order
    # (indices relative to segment i).
    starts = np.flatnonzero(d == 1) + 1
    if mask[0]:
        starts = np.concatenate(((0,), starts))
    if starts.size == 0:
        stats.probe_segments += length
        return None  # no sufficient segment at all: never fits
    ends = np.flatnonzero(d == -1) + 1
    if ends.size < starts.size:
        ends = np.concatenate((ends, (length,)))  # last run extends to +inf
    start_t = np_times[i + starts]
    if starts[0] == 0:
        # The first run contains the release instant itself; clamp its
        # start (times[i] <= release by choice of i).
        start_t[0] = release
    end_idx = i + ends
    end_t = np.where(end_idx < n, np_times[np.minimum(end_idx, n - 1)], math.inf)
    feasible = end_t - start_t >= duration - TIME_EPS
    k = int(np.argmax(feasible))
    if not feasible[k]:
        stats.probe_segments += length
        return None  # trailing segment deficient or covered: never fits
    stats.probe_segments += int(ends[k])  # segments through the deciding run
    start = float(start_t[k])
    # Any earlier (infeasible) run starts no later than this one, so a
    # single deadline check on the winner matches the scalar walk's
    # run-by-run early exit.
    if start + duration > deadline + TIME_EPS:
        return None
    return start


def _tree_scan(
    profile: AvailabilityProfile,
    times: list[float],
    n: int,
    i: int,
    processors: int,
    duration: float,
    release: float,
    deadline: float,
) -> float | None:
    """Segment-tree descent search — O(log S) per candidate run.

    Run starts are located with ``first_at_least`` (first segment at or
    after an index with enough free processors) and run ends with
    ``first_below`` (first segment that breaks the run); each is one
    root-to-leaf descent that skips subtrees whose max/min availability
    disqualifies them.  The float comparisons are exactly the scalar
    walk's (same subtractions, same TIME_EPS slack), so the result is
    bit-identical to both other back-ends.
    """
    stats = profile.stats
    tree = profile._tree()  # noqa: SLF001 - hot path, same package
    avail = profile._avail  # noqa: SLF001
    before = tree.visited

    if avail[i] >= processors:
        # The release segment itself opens a run.
        j = i
        run_start = release
    else:
        j = tree.first_at_least(i + 1, processors)
        if j < 0:
            stats.probe_segments += tree.visited - before
            return None  # trailing segment deficient: never fits
        run_start = times[j]  # > release since j > i by choice of i
        if run_start + duration > deadline + TIME_EPS:
            stats.probe_segments += tree.visited - before
            return None
    while True:
        k = tree.first_below(j + 1, processors)
        end_t = times[k] if 0 <= k < n else math.inf
        if end_t - run_start >= duration - TIME_EPS:
            stats.probe_segments += tree.visited - before
            if run_start + duration > deadline + TIME_EPS:
                return None
            return run_start
        j = tree.first_at_least(k + 1, processors)
        if j < 0:
            stats.probe_segments += tree.visited - before
            return None
        run_start = times[j]
        if run_start + duration > deadline + TIME_EPS:
            stats.probe_segments += tree.visited - before
            return None
