"""Pure-Python/NumPy fallback implementation of the decision kernels.

Selected when ``REPRO_KERNEL=python`` or when no C compiler is available
(see :mod:`repro.core.kernels`).  Every function returns bit-identical
results to its compiled counterpart in ``_kernels.c``:

* :func:`earliest_fit_arrays` reuses the vectorized run search of
  :func:`repro.core.first_fit._vector_scan` (whose float comparisons are
  already proven identical to the scalar walk the C kernel ports);
* :func:`range_min` / :func:`free_area_prefix` are single NumPy
  reductions whose accumulation order matches the scalar loops (NumPy's
  ``cumsum``/``min`` over a 1-D float64/int64 array accumulate
  sequentially, the same order as the Python reference — asserted by
  ``tests/core/test_kernels.py`` and the differential fuzzer).

The *scanned-segment* counts attached to probe results are an
instrumentation side-channel, not part of the decision contract: this
implementation reports the vector scan's accounting (segments through
the deciding run), the compiled one reports the scalar walk's — the
decisions themselves are always bit-identical.

There is no batched admission here (``supports_batch = False``): the
batch API's generic path drives the ordinary Python admission loop with
a vectorized pre-screen instead (:mod:`repro.core.kernels.batch`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.resources import TIME_EPS

__all__ = ["compiled", "supports_batch", "earliest_fit_arrays", "range_min"]

#: Discriminators read by the kernel selector / perf snapshot.
compiled = False
supports_batch = False


def earliest_fit_arrays(
    times: np.ndarray,
    avail: np.ndarray,
    n: int,
    i: int,
    processors: int,
    duration: float,
    release: float,
    deadline: float,
) -> tuple[float | None, int]:
    """Earliest-fit run search over the mirror arrays.

    Arguments mirror the scan back-end protocol of
    :mod:`repro.core.first_fit`: pre-checks already passed, ``release``
    already clamped to the origin, ``i`` the bisected start segment.
    Returns ``(start | None, scanned_segments)``.
    """
    mask = avail[i:] >= processors
    m8 = mask.view(np.int8)
    d = np.diff(m8)
    length = m8.shape[0]
    starts = np.flatnonzero(d == 1) + 1
    if mask[0]:
        starts = np.concatenate(((0,), starts))
    if starts.size == 0:
        return None, int(length)
    ends = np.flatnonzero(d == -1) + 1
    if ends.size < starts.size:
        ends = np.concatenate((ends, (length,)))
    start_t = times[i + starts]
    if starts[0] == 0:
        start_t[0] = release
    end_idx = i + ends
    end_t = np.where(end_idx < n, times[np.minimum(end_idx, n - 1)], math.inf)
    feasible = end_t - start_t >= duration - TIME_EPS
    k = int(np.argmax(feasible))
    if not feasible[k]:
        return None, int(length)
    scanned = int(ends[k])
    start = float(start_t[k])
    if start + duration > deadline + TIME_EPS:
        return None, scanned
    return start, scanned


def range_min(avail: np.ndarray, lo: int, hi: int) -> int:
    """Minimum of ``avail[lo:hi]`` (``hi > lo`` guaranteed by callers)."""
    return int(avail[lo:hi].min())
