"""CLI for the compiled decision kernel: build, check, report.

Used by CI (build the kernel before the fuzz/throughput gates) and by
operators verifying which implementation a deployment runs::

    python -m repro.core.kernels --build          # build if stale
    python -m repro.core.kernels --build --force  # rebuild
    python -m repro.core.kernels --check          # exit 0 iff compiled loads
    python -m repro.core.kernels                  # print selection info
"""

from __future__ import annotations

import argparse
import sys

from repro.core import kernels
from repro.core.kernels.build import ensure_built, find_compiler, lib_path
from repro.errors import ConfigurationError


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.core.kernels")
    parser.add_argument(
        "--build", action="store_true", help="compile the kernel if stale"
    )
    parser.add_argument(
        "--force", action="store_true", help="rebuild even if up to date"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 0 iff the compiled kernel loads (no output on success)",
    )
    args = parser.parse_args(argv)

    if args.check:
        try:
            with kernels.use("compiled"):
                pass
        except ConfigurationError as exc:
            print(f"compiled kernel unavailable: {exc}", file=sys.stderr)
            return 1
        return 0

    if args.build:
        try:
            path = ensure_built(force=args.force)
        except ConfigurationError as exc:
            print(f"build failed: {exc}", file=sys.stderr)
            return 1
        print(f"built {path}")
        return 0

    print(f"REPRO_KERNEL={kernels.requested_mode()}")
    print(f"kernel_backend={kernels.kernel_backend()}")
    print(f"compiler={find_compiler() or '<none>'}")
    print(f"lib={lib_path()}")
    print(f"fallbacks={kernels.stats.fallbacks}"
          + (f" (last: {kernels.stats.last_reason})"
             if kernels.stats.last_reason else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
