"""ctypes binding for the compiled decision kernel (``_kernels.c``).

Loads the shared object built by :mod:`repro.core.kernels.build` and
exposes the same interface as :mod:`repro.core.kernels.pykernels`, plus
:meth:`CompiledKernels.admit_batch` — the one-call batched admission
loop.  All array arguments are contiguous NumPy arrays passed by raw
pointer; the C side never allocates, so ownership stays entirely with
the caller.
"""

from __future__ import annotations

import ctypes
from pathlib import Path

import numpy as np

from repro.core.kernels.build import ABI_VERSION, ensure_built, notice
from repro.errors import ConfigurationError

__all__ = ["CompiledKernels", "load"]

_c_double_p = ctypes.POINTER(ctypes.c_double)
_c_int64_p = ctypes.POINTER(ctypes.c_int64)


def _dp(arr: np.ndarray):
    return arr.ctypes.data_as(_c_double_p)


def _ip(arr: np.ndarray):
    return arr.ctypes.data_as(_c_int64_p)


class CompiledKernels:
    """Thin, stateless wrapper around the loaded shared object."""

    compiled = True
    supports_batch = True

    def __init__(self, path: Path) -> None:
        self.path = path
        lib = ctypes.CDLL(str(path))
        lib.repro_abi_version.restype = ctypes.c_int64
        lib.repro_abi_version.argtypes = ()
        lib.repro_earliest_fit.restype = ctypes.c_int64
        lib.repro_earliest_fit.argtypes = (
            _c_double_p, _c_int64_p, ctypes.c_int64, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_double, ctypes.c_double, ctypes.c_double,
            _c_double_p, _c_int64_p,
        )
        lib.repro_range_min.restype = ctypes.c_int64
        lib.repro_range_min.argtypes = (
            _c_int64_p, ctypes.c_int64, ctypes.c_int64,
        )
        lib.repro_admit_batch.restype = ctypes.c_int64
        lib.repro_admit_batch.argtypes = (
            _c_double_p, _c_int64_p, _c_double_p, _c_double_p, _c_int64_p,
            ctypes.c_int64,  # buf_cap
            _c_int64_p,      # prof_state
            ctypes.c_int64, ctypes.c_int64,  # capacity, n_jobs
            _c_double_p, _c_int64_p, _c_int64_p,  # releases, job/chain offsets
            _c_int64_p, _c_double_p, _c_double_p, _c_double_p,  # task arrays
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            ctypes.c_int64,  # policy, use_dup, use_dom, use_cap, do_compact
            ctypes.c_int64, ctypes.c_int64,  # max_chains, max_tasks
            _c_double_p, _c_int64_p,         # dscratch, iscratch
            _c_int64_p, _c_double_p, _c_int64_p,  # out_chain, out_starts, counters
        )
        self._lib = lib
        got = int(lib.repro_abi_version())
        if got != ABI_VERSION:
            raise ConfigurationError(
                f"compiled kernel ABI {got} != expected {ABI_VERSION} "
                f"({path}); rebuild with python -m repro.core.kernels --build --force"
            )

    # -- scan back-end protocol (mirrors pykernels) --------------------

    def earliest_fit_arrays(
        self,
        times: np.ndarray,
        avail: np.ndarray,
        n: int,
        i: int,
        processors: int,
        duration: float,
        release: float,
        deadline: float,
    ) -> tuple[float | None, int]:
        out_start = ctypes.c_double()
        out_scanned = ctypes.c_int64()
        found = self._lib.repro_earliest_fit(
            _dp(times), _ip(avail), n, i, processors, duration, release,
            deadline, ctypes.byref(out_start), ctypes.byref(out_scanned),
        )
        return (out_start.value if found else None), out_scanned.value

    def range_min(self, avail: np.ndarray, lo: int, hi: int) -> int:
        return int(self._lib.repro_range_min(_ip(avail), lo, hi))

    # -- batched admission ---------------------------------------------

    def admit_batch(self, **kw) -> int:
        """Raw batched admission call; see ``_kernels.c`` for the layout.

        Keyword names match the C parameter names one-to-one.  Returns
        the C status code (0 = OK); the driver in
        :mod:`repro.core.kernels.batch` owns buffer preparation and
        result write-back.
        """
        return int(self._lib.repro_admit_batch(
            _dp(kw["times_buf"]), _ip(kw["avail_buf"]), _dp(kw["prefix_buf"]),
            _dp(kw["scratch_times"]), _ip(kw["scratch_avail"]),
            kw["buf_cap"], _ip(kw["prof_state"]), kw["capacity"],
            kw["n_jobs"], _dp(kw["releases"]), _ip(kw["job_chain_off"]),
            _ip(kw["chain_task_off"]), _ip(kw["task_procs"]),
            _dp(kw["task_dur"]), _dp(kw["task_deadline"]),
            _dp(kw["task_quality"]), kw["policy"], kw["use_dup"],
            kw["use_dom"], kw["use_cap"], kw["do_compact"],
            kw["max_chains"], kw["max_tasks"], _dp(kw["dscratch"]),
            _ip(kw["iscratch"]), _ip(kw["out_chain"]), _dp(kw["out_starts"]),
            _ip(kw["counters"]),
        ))


_loaded: CompiledKernels | None = None


def load() -> CompiledKernels:
    """Build (if stale) and load the compiled kernel, cached per process.

    A cached artifact can be unloadable even when its mtime looks fresh:
    an interrupted build left a truncated ``.so`` (``CDLL`` raises
    ``OSError``) or an upgrade changed the ABI stamp
    (:class:`~repro.errors.ConfigurationError`).  Both trigger exactly
    one clean forced rebuild, announced with a ``::notice`` annotation —
    never a hard crash.  If even the rebuilt object cannot be loaded the
    failure is normalized to :class:`~repro.errors.ConfigurationError`
    so ``REPRO_KERNEL=auto`` falls back to the Python kernels.
    """
    global _loaded
    if _loaded is None:
        path = ensure_built()
        try:
            _loaded = CompiledKernels(path)
        except (OSError, ConfigurationError) as exc:
            notice(
                f"kernel artifact {path} is stale or corrupt ({exc}); "
                "rebuilding"
            )
            try:
                _loaded = CompiledKernels(ensure_built(force=True))
            except OSError as rebuilt_exc:
                raise ConfigurationError(
                    f"rebuilt kernel at {path} still fails to load: "
                    f"{rebuilt_exc}"
                ) from rebuilt_exc
    return _loaded
