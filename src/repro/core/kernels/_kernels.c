/* Compiled flat-array kernels for the admission hot path.
 *
 * Hand-written C, built on demand by ``repro.core.kernels.build`` with
 * ``cc -O2 -fPIC -shared -fno-fast-math -ffp-contract=off`` and bound via
 * ctypes (no Python.h, no Cython — the container toolchain has a C
 * compiler but no extension-build stack, and the ABI below needs nothing
 * beyond raw pointers).
 *
 * Every function is a line-for-line port of a pure-Python reference in
 * ``repro.core`` (profile._shift / compact / _ensure_prefix / free_area,
 * first_fit._scalar_scan, greedy._prober / place_chain,
 * policies.select_candidate, chain.is_trivially_infeasible).  The float
 * operations replicate the exact IEEE-754 op order of those references —
 * max/min keep Python's first-argument-on-ties convention, accumulations
 * run in the same sequence — and the build flags forbid contraction, so
 * results are bit-identical.  That is the contract the differential
 * fuzzer (``repro.verify.fuzz``) enforces against the scalar/vector/tree
 * oracles.
 *
 * Two entry points matter:
 *
 * - ``repro_earliest_fit``: one fit probe over the profile's NumPy
 *   mirrors (the ``"kernel"`` scan back-end; correctness/differential
 *   path — per-call ctypes overhead makes it no faster than Python for
 *   single probes on small profiles).
 * - ``repro_admit_batch``: the whole serial admission loop for a vector
 *   of jobs in ONE call — compaction, pruning, probing, tie-breaks and
 *   profile commits all run in C over flattened arrays.  This is the
 *   100k+ decisions/sec path.
 */

#include <math.h>
#include <stdint.h>
#include <string.h>

#define TIME_EPS 1e-9   /* repro.core.resources.TIME_EPS */
#define AREA_EPS 1e-6   /* greedy._area_reject slack */
#define QUICK_EPS 1e-9  /* chain.is_trivially_infeasible slack */
#define UTIL_EPS 1e-12  /* policies.select_candidate utilization slack */

#define ABI_VERSION 2

/* Status codes returned by repro_admit_batch (0 = OK).  Any nonzero
 * status means "this batch cannot be decided in C" — the Python driver
 * discards the scratch buffers (the live profile was never touched) and
 * falls back to the serial loop. */
#define BATCH_OK 0
#define BATCH_ERR_OVERFLOW (-1)  /* profile outgrew the preallocated buffer */
#define BATCH_ERR_SHIFT (-2)     /* _shift precondition violated (scheduler bug) */
#define BATCH_ERR_CAPACITY (-3)  /* commit exceeded capacity (scheduler bug) */
#define BATCH_ERR_POLICY (-4)    /* unsupported tie-break policy code */

/* Tie-break policy codes (subset of TieBreakPolicy: RANDOM is excluded
 * from the fast path because it consumes a Python RNG stream). */
#define POLICY_PAPER 0
#define POLICY_FIRST 1
#define POLICY_PREFIX 2

/* Counter slots, accumulated into ProfileStats / PerfRecorder by the
 * Python driver after a successful batch. */
#define K_SHIFT_OPS 0
#define K_SEGMENTS_TOUCHED 1
#define K_LAST_TOUCHED 2
#define K_PROBES 3
#define K_PROBE_SEGMENTS 4
#define K_PREFIX_REBUILDS 5
#define K_COMPACTIONS 6
#define K_CHAINS_PROBED 7
#define K_QUICK_REJECTED 8
#define K_AREA_REJECTED 9
#define K_PRUNED_DOMINATED 10
#define K_COMMITS 11
#define N_COUNTERS 12

/* Python max(a, b) returns the FIRST argument on ties (max(-0.0, 0.0)
 * is -0.0); same for min.  These macros keep that convention so even
 * signed zeros round-trip bit-identically. */
#define PYMAX(a, b) ((a) >= (b) ? (a) : (b))
#define PYMIN(a, b) ((a) <= (b) ? (a) : (b))

/* ------------------------------------------------------------------ */
/* bisect ports (exact semantics of the stdlib bisect module)          */
/* ------------------------------------------------------------------ */

static int64_t bisect_right_d(const double *a, int64_t n, double x)
{
    int64_t lo = 0, hi = n;
    while (lo < hi) {
        int64_t mid = (lo + hi) / 2;
        if (x < a[mid])
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

/* ------------------------------------------------------------------ */
/* The availability profile over caller-owned flat buffers             */
/* ------------------------------------------------------------------ */

/* Live segments occupy [lo, lo + n) of times/avail; compaction advances
 * lo instead of memmoving, shifts splice in place within the window.
 * prefix[0..n) is the free-area prefix cache over the live window,
 * rebuilt sequentially when prefix_valid drops (exactly like
 * AvailabilityProfile._ensure_prefix). */
typedef struct {
    double *times;
    int64_t *avail;
    double *prefix;
    double *scr_t;  /* shift replacement-window scratch */
    int64_t *scr_a;
    int64_t cap_buf;  /* allocated length of times/avail */
    int64_t lo;
    int64_t n;
    int64_t capacity; /* machine capacity (processors) */
    int prefix_valid;
    int64_t *c; /* counters[N_COUNTERS] */
} Prof;

/* port of AvailabilityProfile._shift (validation included) */
static int prof_shift(Prof *p, double t0, double t1, int64_t delta)
{
    if (isnan(t0) || isnan(t1))
        return BATCH_ERR_SHIFT;
    if (t1 <= t0 + TIME_EPS)
        return BATCH_ERR_SHIFT;
    if (isinf(t1))
        return BATCH_ERR_SHIFT;
    double *times = p->times + p->lo;
    int64_t *avail = p->avail + p->lo;
    int64_t n = p->n;
    /* _index_at(t0), then snap the left edge to a breakpoint. */
    if (t0 < times[0] - TIME_EPS)
        return BATCH_ERR_SHIFT;
    int64_t i = bisect_right_d(times, n, t0) - 1;
    if (i < 0)
        i = 0;
    if (fabs(times[i] - t0) <= TIME_EPS) {
        t0 = times[i];
    } else if (i + 1 < n && fabs(times[i + 1] - t0) <= TIME_EPS) {
        i += 1;
        t0 = times[i];
    }
    /* Right edge: `last` is the final shifted segment, `trailing` marks
     * t1 strictly inside it. */
    int64_t j = bisect_right_d(times, n, t1) - 1;
    int trailing = 0;
    int64_t last;
    if (fabs(times[j] - t1) <= TIME_EPS) {
        t1 = times[j];
        last = j - 1;
    } else if (j + 1 < n && fabs(times[j + 1] - t1) <= TIME_EPS) {
        t1 = times[j + 1];
        last = j;
    } else {
        last = j;
        trailing = 1;
    }
    if (t1 <= t0)
        return BATCH_OK; /* both edges snapped to the same breakpoint */
    if (last < i)
        return BATCH_ERR_SHIFT;
    /* Validate the whole window before touching anything. */
    if (delta < 0) {
        int64_t tightest = avail[i];
        for (int64_t k = i + 1; k <= last; k++)
            if (avail[k] < tightest)
                tightest = avail[k];
        if (tightest < -delta)
            return BATCH_ERR_CAPACITY;
    } else {
        int64_t widest = avail[i];
        for (int64_t k = i + 1; k <= last; k++)
            if (avail[k] > widest)
                widest = avail[k];
        if (widest + delta > p->capacity)
            return BATCH_ERR_CAPACITY;
    }
    /* Build the replacement window, merging equal neighbours on the fly. */
    double *nt = p->scr_t;
    int64_t *na = p->scr_a;
    int64_t w = 0;
    int64_t prev;
    if (t0 > times[i]) {
        nt[w] = times[i];
        na[w] = avail[i];
        w += 1;
        prev = avail[i];
    } else {
        prev = (i > 0) ? avail[i - 1] : -1;
    }
    double start = t0;
    for (int64_t k = i; k <= last; k++) {
        int64_t value = avail[k] + delta;
        if (value != prev) {
            nt[w] = (k == i) ? start : times[k];
            na[w] = value;
            w += 1;
            prev = value;
        }
    }
    if (trailing) {
        nt[w] = t1;
        na[w] = avail[last];
        w += 1;
    }
    int64_t hi = last + 1;
    if (!trailing && hi < n && avail[hi] == prev)
        hi += 1; /* absorb the right border segment's breakpoint */
    int64_t new_n = n - (hi - i) + w;
    if (p->lo + new_n > p->cap_buf)
        return BATCH_ERR_OVERFLOW;
    if (w != hi - i) {
        memmove(times + i + w, times + hi, (size_t)(n - hi) * sizeof(double));
        memmove(avail + i + w, avail + hi, (size_t)(n - hi) * sizeof(int64_t));
    }
    memcpy(times + i, nt, (size_t)w * sizeof(double));
    memcpy(avail + i, na, (size_t)w * sizeof(int64_t));
    p->n = new_n;
    p->prefix_valid = 0;
    p->c[K_SHIFT_OPS] += 1;
    int64_t touched = last - i + 1;
    p->c[K_SEGMENTS_TOUCHED] += touched;
    p->c[K_LAST_TOUCHED] = touched;
    return BATCH_OK;
}

/* port of AvailabilityProfile.compact */
static void prof_compact(Prof *p, double before)
{
    double *times = p->times + p->lo;
    if (before <= times[0])
        return;
    int64_t i = bisect_right_d(times, p->n, before) - 1;
    if (i < 0)
        i = 0;
    if (i == 0)
        return;
    p->lo += i;
    p->n -= i;
    times = p->times + p->lo;
    if (times[0] < before)
        times[0] = before;
    p->prefix_valid = 0;
    p->c[K_COMPACTIONS] += 1;
}

/* port of AvailabilityProfile._ensure_prefix (same sequential sum) */
static void prof_ensure_prefix(Prof *p)
{
    if (p->prefix_valid)
        return;
    const double *times = p->times + p->lo;
    const int64_t *avail = p->avail + p->lo;
    double *prefix = p->prefix;
    prefix[0] = 0.0;
    double acc = 0.0;
    for (int64_t k = 1; k < p->n; k++) {
        acc += (double)avail[k - 1] * (times[k] - times[k - 1]);
        prefix[k] = acc;
    }
    p->prefix_valid = 1;
    p->c[K_PREFIX_REBUILDS] += 1;
}

/* port of AvailabilityProfile._cumulative_free */
static double prof_cumulative_free(const Prof *p, double t)
{
    const double *times = p->times + p->lo;
    int64_t i = bisect_right_d(times, p->n, t) - 1;
    if (i < 0)
        return 0.0;
    return p->prefix[i] + (double)(p->avail + p->lo)[i] * (t - times[i]);
}

/* port of AvailabilityProfile.free_area (guards hoisted to callers) */
static double prof_free_area(Prof *p, double t0, double t1)
{
    if (t1 <= t0)
        return 0.0;
    prof_ensure_prefix(p);
    return prof_cumulative_free(p, t1) - prof_cumulative_free(p, t0);
}

/* ------------------------------------------------------------------ */
/* The earliest-fit scan (port of first_fit._scalar_scan)              */
/* ------------------------------------------------------------------ */

/* Raw walk over [0, n) starting at segment i; release already clamped
 * to the origin and i already bisected by the caller.  Returns 1 and
 * *out_start on success, 0 on failure; *out_scanned counts the
 * segments examined exactly like _scalar_scan's probe_segments. */
static int scan_walk(const double *times, const int64_t *avail, int64_t n,
                     int64_t i, int64_t processors, double duration,
                     double release, double deadline, double *out_start,
                     int64_t *out_scanned)
{
    int64_t first = i;
    int have = avail[i] >= processors;
    double run_start = release;
    *out_scanned = 0;
    for (;;) {
        if (have) {
            /* Extend the run from segment i forward. */
            int64_t j = i;
            for (;;) {
                double seg_end = (j + 1 < n) ? times[j + 1] : INFINITY;
                if (seg_end - run_start >= duration - TIME_EPS) {
                    *out_scanned = j - first + 1;
                    if (run_start + duration > deadline + TIME_EPS)
                        return 0;
                    *out_start = run_start;
                    return 1;
                }
                j += 1;
                if (avail[j] < processors) {
                    i = j;
                    have = 0;
                    break;
                }
            }
        }
        if (!have) {
            /* Advance to the next sufficient segment. */
            int64_t j = i + 1;
            while (j < n && avail[j] < processors)
                j += 1;
            if (j == n) {
                *out_scanned = n - first;
                return 0; /* trailing segment deficient: never fits */
            }
            i = j;
            run_start = PYMAX(times[i], release);
            if (run_start + duration > deadline + TIME_EPS) {
                *out_scanned = i - first + 1;
                return 0;
            }
            have = 1;
        }
    }
}

/* Full earliest_fit port (pre-checks + clamp + bisect + walk), used by
 * the batched admission loop. */
static int ef_probe(Prof *p, int64_t processors, double duration,
                    double release, double deadline, double *out_start)
{
    p->c[K_PROBES] += 1;
    if (processors > p->capacity)
        return 0;
    if (release + duration > deadline + TIME_EPS)
        return 0;
    const double *times = p->times + p->lo;
    const int64_t *avail = p->avail + p->lo;
    int64_t n = p->n;
    release = PYMAX(release, times[0]);
    int64_t i = bisect_right_d(times, n, release) - 1;
    if (i < 0)
        i = 0;
    int64_t scanned = 0;
    int found = scan_walk(times, avail, n, i, processors, duration, release,
                          deadline, out_start, &scanned);
    p->c[K_PROBE_SEGMENTS] += scanned;
    return found;
}

/* ------------------------------------------------------------------ */
/* Chain-level helpers (ports from greedy.py / chain.py / policies.py) */
/* ------------------------------------------------------------------ */

/* greedy._shape_key equality for chains a and b (flattened layout) */
static int shape_equal(int64_t a, int64_t b, const int64_t *off,
                       const int64_t *procs, const double *dur,
                       const double *dl, const double *q)
{
    int64_t a0 = off[a], b0 = off[b];
    int64_t n = off[a + 1] - a0;
    if (off[b + 1] - b0 != n)
        return 0;
    for (int64_t k = 0; k < n; k++) {
        if (procs[a0 + k] != procs[b0 + k])
            return 0;
        if (dur[a0 + k] != dur[b0 + k])
            return 0;
        if (dl[a0 + k] != dl[b0 + k])
            return 0;
        if (q[a0 + k] != q[b0 + k])
            return 0;
    }
    return 1;
}

/* greedy._harder_than_failed for one (chain, failed-chain) pair */
static int harder_than(int64_t c, int64_t o, const int64_t *off,
                       const int64_t *procs, const double *dur,
                       const double *dl)
{
    int64_t c0 = off[c], o0 = off[o];
    int64_t n = off[c + 1] - c0;
    if (off[o + 1] - o0 != n)
        return 0;
    for (int64_t k = 0; k < n; k++) {
        if (!(procs[c0 + k] >= procs[o0 + k]))
            return 0;
        if (!(dur[c0 + k] >= dur[o0 + k]))
            return 0;
        if (!(dl[c0 + k] <= dl[o0 + k]))
            return 0;
    }
    return 1;
}

/* chain.is_trivially_infeasible (eff is caller scratch of >= n tasks) */
static int quick_reject(int64_t c, const int64_t *off, const int64_t *procs,
                        const double *dur, const double *dl, int64_t capacity,
                        double *eff)
{
    int64_t t0 = off[c];
    int64_t n = off[c + 1] - t0;
    int64_t maxw = procs[t0];
    for (int64_t k = 1; k < n; k++)
        if (procs[t0 + k] > maxw)
            maxw = procs[t0 + k];
    if (maxw > capacity)
        return 1;
    for (int64_t k = 0; k < n; k++)
        eff[k] = dl[t0 + k];
    for (int64_t k = n - 2; k >= 0; k--)
        eff[k] = PYMIN(eff[k], eff[k + 1] - dur[t0 + k + 1]);
    double elapsed = 0.0;
    for (int64_t k = 0; k < n; k++) {
        elapsed += dur[t0 + k];
        if (elapsed > eff[k] + QUICK_EPS)
            return 1;
    }
    return 0;
}

/* chain.total_area: sum(t.area) == 0.0 + p0*d0 + p1*d1 + ... --
 * sequential, same floats as the Python property (0.0 + a == a exactly
 * for the positive areas the model validates). */
static double chain_area(int64_t c, const int64_t *off, const int64_t *procs,
                         const double *dur)
{
    int64_t t0 = off[c];
    int64_t n = off[c + 1] - t0;
    double acc = 0.0;
    for (int64_t k = 0; k < n; k++)
        acc += (double)procs[t0 + k] * dur[t0 + k];
    return acc;
}

/* greedy._area_reject */
static int area_reject(Prof *p, double release, double final_deadline,
                       double total_area)
{
    double origin = (p->times + p->lo)[0];
    double t0 = PYMAX(release, origin);
    double t1 = release + final_deadline;
    if (isinf(t1))
        return 0;
    if (t1 <= t0)
        return 1;
    return prof_free_area(p, t0, t1) < total_area - AREA_EPS;
}

/* policies.window_utilization (cp.total_area == chain.total_area for
 * rigid placements: both are the same left-to-right float sum) */
static double window_util(Prof *p, double release, double finish,
                          double total_area)
{
    double origin = (p->times + p->lo)[0];
    double start = PYMAX(release, origin);
    double span = finish - start;
    if (span <= 0)
        return 1.0;
    double busy = (double)p->capacity * (finish - start) -
                  prof_free_area(p, start, finish);
    busy = busy + total_area;
    return busy / ((double)p->capacity * span);
}

/* policies._prefix_key three-way comparison: Python tuple lexicographic
 * order over chain.prefix_areas() (shorter prefix of an equal run sorts
 * first). */
static int prefix_cmp(int64_t a, int64_t b, const int64_t *off,
                      const int64_t *procs, const double *dur)
{
    int64_t a0 = off[a], na = off[a + 1] - a0;
    int64_t b0 = off[b], nb = off[b + 1] - b0;
    int64_t m = (na < nb) ? na : nb;
    double acc_a = 0.0, acc_b = 0.0;
    for (int64_t k = 0; k < m; k++) {
        acc_a += (double)procs[a0 + k] * dur[a0 + k];
        acc_b += (double)procs[b0 + k] * dur[b0 + k];
        if (acc_a < acc_b)
            return -1;
        if (acc_a > acc_b)
            return 1;
    }
    if (na < nb)
        return -1;
    if (na > nb)
        return 1;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Exported API                                                        */
/* ------------------------------------------------------------------ */

int64_t repro_abi_version(void)
{
    return ABI_VERSION;
}

/* Single fit probe over the profile mirrors: the "kernel" scan back-end.
 * Pre-checks, clamping and the start-segment bisect already happened in
 * Python (earliest_fit's dispatcher).  Returns 1/0 (found), writes the
 * start and the scanned-segment count. */
int64_t repro_earliest_fit(const double *times, const int64_t *avail,
                           int64_t n, int64_t i, int64_t processors,
                           double duration, double release, double deadline,
                           double *out_start, int64_t *out_scanned)
{
    return scan_walk(times, avail, n, i, processors, duration, release,
                     deadline, out_start, out_scanned);
}

/* min over avail[lo:hi] — the min_available window reduction. */
int64_t repro_range_min(const int64_t *avail, int64_t lo, int64_t hi)
{
    int64_t m = avail[lo];
    for (int64_t k = lo + 1; k < hi; k++)
        if (avail[k] < m)
            m = avail[k];
    return m;
}

/* The whole serial admission loop for a job vector, in one call.
 *
 * Layout: jobs own chains [job_chain_off[j], job_chain_off[j+1]); chain
 * c owns tasks [chain_task_off[c], chain_task_off[c+1]).  Profile state
 * lives in times_buf/avail_buf at window [prof_state[0],
 * prof_state[0] + prof_state[1]); on BATCH_OK the final window is
 * written back to prof_state and out_chain[j] holds the chosen global
 * chain index (-1 = rejected) with the chosen chains' task starts in
 * out_starts (flattened task indexing).  Any error status leaves the
 * caller's live profile untouched (the buffers are scratch copies).
 *
 * dscratch: max_chains*max_tasks + 3*max_chains + max_tasks doubles;
 * iscratch: 4*max_chains int64s.  Replays greedy._prober exactly:
 * duplicate collapse, failure propagation, incumbent finish capping,
 * then select_candidate's earliest-finish + policy tie-break. */
int64_t repro_admit_batch(
    double *times_buf, int64_t *avail_buf, double *prefix_buf,
    double *scratch_times, int64_t *scratch_avail, int64_t buf_cap,
    int64_t *prof_state, int64_t capacity, int64_t n_jobs,
    const double *releases, const int64_t *job_chain_off,
    const int64_t *chain_task_off, const int64_t *task_procs,
    const double *task_dur, const double *task_deadline,
    const double *task_quality, int64_t policy, int64_t use_dup,
    int64_t use_dom, int64_t use_cap, int64_t do_compact,
    int64_t max_chains, int64_t max_tasks, double *dscratch,
    int64_t *iscratch, int64_t *out_chain, double *out_starts,
    int64_t *counters)
{
    if (policy != POLICY_PAPER && policy != POLICY_FIRST &&
        policy != POLICY_PREFIX)
        return BATCH_ERR_POLICY;
    Prof prof;
    prof.times = times_buf;
    prof.avail = avail_buf;
    prof.prefix = prefix_buf;
    prof.scr_t = scratch_times;
    prof.scr_a = scratch_avail;
    prof.cap_buf = buf_cap;
    prof.lo = prof_state[0];
    prof.n = prof_state[1];
    prof.capacity = capacity;
    prof.prefix_valid = 0;
    prof.c = counters;
    Prof *p = &prof;

    double *cand_starts = dscratch;                      /* [MC][MT] */
    double *cand_finish = cand_starts + max_chains * max_tasks;
    double *cand_util = cand_finish + max_chains;
    double *cand_area = cand_util + max_chains;
    double *eff = cand_area + max_chains;                /* [MT] */
    int64_t *cand_chain = iscratch;
    int64_t *keyed = cand_chain + max_chains;
    int64_t *failed = keyed + max_chains;
    int64_t *tied = failed + max_chains;

    for (int64_t jb = 0; jb < n_jobs; jb++) {
        double release = releases[jb];
        if (do_compact)
            prof_compact(p, release);
        int64_t c_begin = job_chain_off[jb], c_end = job_chain_off[jb + 1];
        int64_t ncand = 0, nkeyed = 0, nfailed = 0;
        double cap = INFINITY;
        for (int64_t c = c_begin; c < c_end; c++) {
            int64_t t_begin = chain_task_off[c];
            int64_t ntasks = chain_task_off[c + 1] - t_begin;
            if (use_dup) {
                int dup = 0;
                for (int64_t k = 0; k < nkeyed; k++) {
                    if (shape_equal(keyed[k], c, chain_task_off, task_procs,
                                    task_dur, task_deadline, task_quality)) {
                        dup = 1;
                        break;
                    }
                }
                if (dup) {
                    counters[K_PRUNED_DOMINATED] += 1;
                    continue;
                }
                keyed[nkeyed++] = c;
            }
            if (use_dom && nfailed) {
                int harder = 0;
                for (int64_t k = 0; k < nfailed; k++) {
                    if (harder_than(c, failed[k], chain_task_off, task_procs,
                                    task_dur, task_deadline)) {
                        harder = 1;
                        break;
                    }
                }
                if (harder) {
                    counters[K_PRUNED_DOMINATED] += 1;
                    continue;
                }
            }
            counters[K_CHAINS_PROBED] += 1;
            if (quick_reject(c, chain_task_off, task_procs, task_dur,
                             task_deadline, capacity, eff)) {
                counters[K_QUICK_REJECTED] += 1;
                continue;
            }
            double ca = chain_area(c, chain_task_off, task_procs, task_dur);
            if (area_reject(p, release, task_deadline[t_begin + ntasks - 1],
                            ca)) {
                counters[K_AREA_REJECTED] += 1;
                if (use_dom)
                    failed[nfailed++] = c;
                continue;
            }
            /* place_chain: first fit per task under the capped deadline */
            double earliest = PYMAX(release, (p->times + p->lo)[0]);
            double *starts = cand_starts + ncand * max_tasks;
            int ok = 1;
            for (int64_t t = 0; t < ntasks; t++) {
                double dl = release + task_deadline[t_begin + t];
                if (cap < dl)
                    dl = cap;
                double s;
                if (!ef_probe(p, task_procs[t_begin + t],
                              task_dur[t_begin + t], earliest, dl, &s)) {
                    ok = 0;
                    break;
                }
                starts[t] = s;
                earliest = s + task_dur[t_begin + t];
            }
            if (!ok) {
                if (use_dom)
                    failed[nfailed++] = c;
                continue;
            }
            cand_chain[ncand] = c;
            cand_finish[ncand] = earliest; /* last start + duration */
            cand_area[ncand] = ca;
            ncand += 1;
            if (use_cap) {
                double new_cap = earliest + TIME_EPS;
                if (new_cap < cap)
                    cap = new_cap;
            }
        }
        if (ncand == 0) {
            out_chain[jb] = -1;
            continue;
        }
        /* select_candidate: earliest finish, then the policy tie-break */
        double best_finish = cand_finish[0];
        for (int64_t k = 1; k < ncand; k++)
            if (cand_finish[k] < best_finish)
                best_finish = cand_finish[k];
        int64_t ntied = 0;
        for (int64_t k = 0; k < ncand; k++)
            if (cand_finish[k] <= best_finish + TIME_EPS)
                tied[ntied++] = k;
        int64_t chosen;
        if (ntied == 1 || policy == POLICY_FIRST) {
            chosen = tied[0];
        } else if (policy == POLICY_PREFIX) {
            chosen = tied[0];
            for (int64_t k = 1; k < ntied; k++)
                if (prefix_cmp(cand_chain[tied[k]], cand_chain[chosen],
                               chain_task_off, task_procs, task_dur) < 0)
                    chosen = tied[k];
        } else {
            /* PAPER: max window utilization, then min prefix key */
            double best_util = -INFINITY;
            for (int64_t k = 0; k < ntied; k++) {
                int64_t ci = tied[k];
                double u = window_util(p, release, cand_finish[ci],
                                       cand_area[ci]);
                cand_util[k] = u;
                if (u > best_util)
                    best_util = u;
            }
            chosen = -1;
            for (int64_t k = 0; k < ntied; k++) {
                if (cand_util[k] >= best_util - UTIL_EPS) {
                    if (chosen < 0 ||
                        prefix_cmp(cand_chain[tied[k]], cand_chain[chosen],
                                   chain_task_off, task_procs, task_dur) < 0)
                        chosen = tied[k];
                }
            }
        }
        /* commit: reserve every task interval in chain order */
        int64_t cc = cand_chain[chosen];
        int64_t ct0 = chain_task_off[cc];
        int64_t cn = chain_task_off[cc + 1] - ct0;
        const double *starts = cand_starts + chosen * max_tasks;
        for (int64_t t = 0; t < cn; t++) {
            double s = starts[t];
            int st = prof_shift(p, s, s + task_dur[ct0 + t],
                                -task_procs[ct0 + t]);
            if (st != BATCH_OK)
                return st;
            out_starts[ct0 + t] = s;
        }
        counters[K_COMMITS] += 1;
        out_chain[jb] = cc;
    }
    prof_state[0] = p->lo;
    prof_state[1] = p->n;
    return BATCH_OK;
}
