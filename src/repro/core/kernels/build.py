"""On-demand build of the compiled decision kernel.

The kernel is a single hand-written C file (``_kernels.c``) compiled into
a shared object and bound through :mod:`ctypes` — deliberately *not* a
CPython extension: there is no ``Python.h`` dependency, no Cython, no
build isolation, just ``cc -O2 -fPIC -shared`` plus the two flags that
make bit-identity possible (``-fno-fast-math -ffp-contract=off``; fused
multiply-adds or value-unsafe reassociation would break the equality
contract with the pure-Python back-ends).

The build is lazy, cached by mtime, and *optional*: when no C compiler
is present :func:`ensure_built` raises :class:`ConfigurationError` and
the kernel layer falls back to the pure-NumPy implementation (see
:mod:`repro.core.kernels`).  ``python -m repro.core.kernels --build``
runs the same build explicitly (the CI hook).
"""

from __future__ import annotations

import os
import platform
import shutil
import struct
import subprocess
import sys
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "ABI_VERSION",
    "artifact_intact",
    "ensure_built",
    "find_compiler",
    "lib_path",
    "notice",
]

#: Must match ``ABI_VERSION`` in ``_kernels.c``; bump both together when
#: the exported signatures change so a stale cached ``.so`` is rebuilt
#: instead of being called with the wrong argument layout.
ABI_VERSION = 2

SOURCE = Path(__file__).with_name("_kernels.c")

CFLAGS = ("-O2", "-fPIC", "-shared", "-fno-fast-math", "-ffp-contract=off")


def notice(message: str) -> None:
    """Emit a CI-visible ``::notice`` annotation (plain stderr elsewhere).

    GitHub Actions renders ``::notice`` lines as workflow annotations;
    locally they are just one informative stderr line.  Used when the
    kernel layer self-heals (e.g. rebuilding a corrupt artifact) so the
    event is observable without being an error.
    """
    print(f"::notice title=repro-kernels::{message}", file=sys.stderr)


def find_compiler() -> str | None:
    """Locate a C compiler (``$CC``, then cc/gcc/clang); None if absent."""
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return cc
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def lib_path() -> Path:
    """Where the built shared object lives (or should live).

    ``$REPRO_KERNEL_LIB`` overrides everything; otherwise the object sits
    next to the source, tagged by platform so heterogeneous checkouts on
    shared filesystems do not collide.  Falls back to a per-user cache
    directory when the package directory is not writable (installed
    site-packages).
    """
    explicit = os.environ.get("REPRO_KERNEL_LIB")
    if explicit:
        return Path(explicit)
    tag = f"{platform.system()}-{platform.machine()}".lower()
    candidate = SOURCE.parent / f"_kernels-{tag}.so"
    if os.access(SOURCE.parent, os.W_OK) or candidate.exists():
        return candidate
    cache = Path(
        os.environ.get("XDG_CACHE_HOME", Path.home() / ".cache")
    ) / "repro-kernels"
    return cache / candidate.name


def artifact_intact(path: Path) -> bool:
    """Cheap structural check that a shared object is not truncated.

    ``dlopen`` of a *partially written* ``.so`` is not a catchable error:
    the loader mmaps program segments that extend past EOF and the
    process dies with SIGBUS on first touch.  So completeness must be
    established *before* ever handing the file to ``ctypes``.  Linkers
    place the section-header table at the end of the object; an ELF
    whose header points that table inside the file is complete for
    loading purposes.  Non-ELF platforms (Mach-O, PE) only get the
    magic-independent minimum-size check — their loaders report
    truncation as a catchable load error, which :func:`~repro.core.
    kernels.compiled.load` turns into a rebuild.
    """
    try:
        data = path.read_bytes()
    except OSError:
        return False
    if len(data) < 64:
        return False
    if data[:4] != b"\x7fELF":
        return True  # not ELF: leave judgement to the dynamic loader
    if data[4] != 2 or data[5] != 1:
        return True  # only 64-bit little-endian layouts are parsed here
    (e_shoff,) = struct.unpack_from("<Q", data, 0x28)
    e_shentsize, e_shnum = struct.unpack_from("<HH", data, 0x3A)
    return e_shoff + e_shentsize * e_shnum <= len(data)


def ensure_built(force: bool = False) -> Path:
    """Return the path of an up-to-date shared object, building if stale.

    A cached artifact is reused only when it is both fresh (mtime ≥
    source) and structurally intact (:func:`artifact_intact`); a
    truncated object left by an interrupted build triggers a clean,
    ``::notice``-announced rebuild instead of a hard crash at ``dlopen``
    time.  Raises :class:`~repro.errors.ConfigurationError` when no
    compiler is available or the compile fails; never leaves a partially
    written object behind (the build lands in a temp name and is renamed
    into place atomically).
    """
    path = lib_path()
    if (
        not force
        and path.exists()
        and path.stat().st_mtime >= SOURCE.stat().st_mtime
    ):
        if artifact_intact(path):
            return path
        notice(
            f"kernel artifact {path} is truncated or corrupt "
            "(interrupted build?); rebuilding"
        )
    cc = find_compiler()
    if cc is None:
        raise ConfigurationError(
            "no C compiler found (tried $CC, cc, gcc, clang); "
            "set REPRO_KERNEL=python or install a compiler"
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    cmd = [cc, *CFLAGS, "-o", str(tmp), str(SOURCE), "-lm"]
    result = subprocess.run(cmd, capture_output=True, text=True)
    if result.returncode != 0:
        tmp.unlink(missing_ok=True)
        raise ConfigurationError(
            f"kernel build failed ({' '.join(cmd)}):\n{result.stderr}"
        )
    os.replace(tmp, path)
    return path
