"""Compiled decision-kernel layer with a bit-identical Python fallback.

This package provides the flat-array kernels behind the ``"kernel"``
profile scan back-end and the batched admission fast path
(:meth:`repro.core.arbitrator.QoSArbitrator.admit_batch`):

* ``_kernels.c`` — hand-written C, built on demand by :mod:`.build` and
  bound via ctypes in :mod:`.compiled` (no Cython, no ``Python.h``);
* :mod:`.pykernels` — the pure-Python/NumPy implementation of the same
  interface, returning bit-identical *decisions* (probe instrumentation
  counts may differ; see the pykernels docs);
* :mod:`.batch` — flattening and write-back for the one-call batched
  admission loop, plus the vectorized pre-screen used when only the
  Python kernels are available.

Selection is controlled by the ``REPRO_KERNEL`` environment variable,
read lazily on first use:

* ``auto`` (default) — compiled when a C compiler (or a cached build) is
  available, Python otherwise;
* ``compiled`` — require the compiled kernel; raise
  :class:`~repro.errors.ConfigurationError` if it cannot be built;
* ``python`` — force the fallback (the differential-fuzz oracle mode).

:func:`kernel_backend` and :data:`stats` surface what actually loaded —
``perf_snapshot()`` reports them as ``kernel_backend`` and
``kernel_fallbacks`` so cross-machine benchmark comparisons can verify
which path ran.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "KERNEL_MODES",
    "active",
    "free_area_prefix",
    "kernel_backend",
    "note_fallback",
    "requested_mode",
    "set_kernel",
    "stats",
    "use",
]

#: Valid values of the ``REPRO_KERNEL`` environment variable.
KERNEL_MODES = ("auto", "compiled", "python")


class KernelStats:
    """Process-wide kernel-selection telemetry (see ``perf_snapshot``)."""

    __slots__ = ("fallbacks", "last_reason")

    def __init__(self) -> None:
        self.fallbacks = 0
        self.last_reason = ""


#: Global fallback counter: bumped when a compiled path was requested or
#: expected but the Python implementation had to serve instead.
stats = KernelStats()

_active = None
_mode: str | None = None


def requested_mode() -> str:
    """The ``REPRO_KERNEL`` setting (validated; default ``auto``)."""
    mode = os.environ.get("REPRO_KERNEL", "auto")
    if mode not in KERNEL_MODES:
        raise ConfigurationError(
            f"REPRO_KERNEL must be one of {KERNEL_MODES}, got {mode!r}"
        )
    return mode


def note_fallback(reason: str) -> None:
    """Record one compiled→python fallback event (kept in :data:`stats`)."""
    stats.fallbacks += 1
    stats.last_reason = reason


def _load(mode: str):
    from repro.core.kernels import pykernels

    if mode == "python":
        return pykernels
    try:
        from repro.core.kernels import compiled

        return compiled.load()
    except ConfigurationError as exc:
        if mode == "compiled":
            raise ConfigurationError(
                f"REPRO_KERNEL=compiled but the compiled kernel is "
                f"unavailable: {exc}"
            ) from exc
        note_fallback(str(exc))
        return pykernels


def active():
    """The selected kernel implementation (loaded lazily, then cached)."""
    global _active, _mode
    if _active is None:
        _mode = requested_mode()
        _active = _load(_mode)
    return _active


def kernel_backend() -> str:
    """``"compiled"`` or ``"python"`` — what :func:`active` resolves to."""
    return "compiled" if active().compiled else "python"


def set_kernel(mode: str) -> str:
    """Force a kernel implementation at runtime; returns the prior mode.

    Benchmarks and tests use this to pin a side of the differential
    matrix regardless of the environment variable.
    """
    global _active, _mode
    if mode not in KERNEL_MODES:
        raise ConfigurationError(
            f"kernel mode must be one of {KERNEL_MODES}, got {mode!r}"
        )
    previous = _mode if _mode is not None else requested_mode()
    _mode = mode
    _active = _load(mode)
    return previous


@contextmanager
def use(mode: str) -> Iterator[None]:
    """Context manager pinning the kernel implementation temporarily."""
    previous = set_kernel(mode)
    try:
        yield
    finally:
        set_kernel(previous)


def free_area_prefix(times: np.ndarray, avail: np.ndarray) -> np.ndarray:
    """Free-area prefix sums over the mirrors, bit-identical to the loop.

    ``out[k]`` integrates free processors from the origin to
    ``times[k]``.  The per-segment areas are the same multiplications
    the scalar :meth:`~repro.core.profile.AvailabilityProfile._ensure_prefix`
    performs, and ``np.cumsum`` over a 1-D float64 array accumulates them
    sequentially in the same order, so every element matches the list
    prefix bit-for-bit (asserted by ``tests/core/test_kernels.py``).
    """
    n = times.shape[0]
    seq = np.empty(n, dtype=np.float64)
    seq[0] = 0.0
    if n > 1:
        np.multiply(
            avail[:-1].astype(np.float64), np.diff(times), out=seq[1:]
        )
    return np.cumsum(seq, out=seq)
