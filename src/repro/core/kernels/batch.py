"""Batched admission: flattening, the compiled fast path, the pre-screen.

:meth:`repro.core.arbitrator.QoSArbitrator.admit_batch` delegates here.
Two strategies, both honouring the equivalence contract (*a batch
replays bit-identical to the serial submit loop in arrival order*):

1. :func:`try_admit_batch_compiled` — flatten the whole batch into
   contiguous arrays and run ``repro_admit_batch`` (the entire serial
   admission loop — compaction, prunes, probes, tie-breaks, commits) in
   ONE C call, then write the resulting profile window, decisions and
   accounting back into the live objects.  The C kernel works on
   scratch copies, so any error status (unsupported policy, buffer
   overflow) simply discards them and falls through to strategy 2.
   Eligibility: plain rigid :class:`GreedyScheduler`, EARLIEST_FINISH
   objective, deterministic tie-break (RANDOM consumes a Python RNG
   stream), compiled kernel loaded.

2. :func:`prescreen_skips` + the ordinary serial loop — one vectorized
   area pre-screen over the batch-entry profile computes, for every
   chain in the batch, a *conservative* version of the serial
   :meth:`~repro.core.greedy.GreedyScheduler._area_reject`; chains it
   condemns are skipped without probing.  Soundness: commits during the
   batch only shrink free area and compaction preserves it, so the
   snapshot free area upper-bounds the live value each job sees — and a
   float-error margin makes the comparison a strict subset of the
   serial reject even across differently-accumulated prefix sums.
   Skipped chains would have returned ``None`` from the prober anyway
   (their pointwise-harder dominators are area-rejected too, see the
   dominance proof in :mod:`repro.core.greedy`), so decisions are
   unchanged for every policy including RANDOM and for the malleable
   scheduler (area is conserved under reshaping).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core import kernels
from repro.core.admission import AdmissionDecision
from repro.core.placement import ChainPlacement, Placement
from repro.core.policies import TieBreakPolicy
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.quality import QualityComposition, chain_quality

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.arbitrator import QoSArbitrator

__all__ = ["FlatBatch", "flatten_jobs", "prescreen_skips", "try_admit_batch_compiled"]

#: Tie-break policy codes of ``_kernels.c`` (RANDOM intentionally absent).
_POLICY_CODES = {
    TieBreakPolicy.PAPER: 0,
    TieBreakPolicy.FIRST: 1,
    TieBreakPolicy.PREFIX: 2,
}

#: Per-job scratch in the C kernel is sized max_chains × max_tasks; bail
#: out to the serial loop for pathological fan-outs instead of letting
#: the scratch arrays balloon.
_MAX_CHAINS = 512
_MAX_TASKS = 512


@dataclass(slots=True)
class FlatBatch:
    """A job vector flattened into contiguous arrays (C layout).

    Chain areas and prefix sums are *not* flattened — the C kernel
    recomputes them from ``task_procs``/``task_dur`` with the exact
    float operations of :attr:`TaskChain.total_area` /
    :meth:`TaskChain.prefix_areas`, which keeps flattening (the
    dominant Python-side cost of a batch) to one attribute sweep.
    """

    jobs: Sequence[Job]
    chains: list[TaskChain]  # global chain index -> chain object
    releases: np.ndarray           # [n_jobs] float64
    job_chain_off: np.ndarray      # [n_jobs+1] int64
    chain_task_off: np.ndarray     # [n_chains+1] int64
    task_procs: np.ndarray         # [n_tasks] int64
    task_dur: np.ndarray           # [n_tasks] float64
    task_deadline: np.ndarray      # [n_tasks] float64
    task_quality: np.ndarray       # [n_tasks] float64
    max_chains: int
    max_tasks: int

    @property
    def n_tasks(self) -> int:
        return len(self.task_procs)


def flatten_jobs(jobs: Sequence[Job]) -> FlatBatch:
    """Flatten a job vector for the C kernel / the vectorized pre-screen.

    Written for throughput: this runs once per batch but touches every
    task, and at the 100k-decisions/sec operating point it is the
    largest Python-side cost — hence the bound methods and direct
    ``request`` field access instead of the (property-indirected)
    ``TaskSpec`` accessors.
    """
    releases: list[float] = []
    job_chain_off = [0]
    chain_task_off = [0]
    task_procs: list[int] = []
    task_dur: list[float] = []
    task_deadline: list[float] = []
    task_quality: list[float] = []
    chains: list[TaskChain] = []
    max_chains = 0
    max_tasks = 0
    rel_append = releases.append
    jco_append = job_chain_off.append
    cto_append = chain_task_off.append
    procs_append = task_procs.append
    dur_append = task_dur.append
    dl_append = task_deadline.append
    q_append = task_quality.append
    chains_append = chains.append
    for job in jobs:
        rel_append(job.release)
        job_chains = job.chains
        if len(job_chains) > max_chains:
            max_chains = len(job_chains)
        for chain in job_chains:
            chains_append(chain)
            tasks = chain.tasks
            if len(tasks) > max_tasks:
                max_tasks = len(tasks)
            for task in tasks:
                request = task.request
                procs_append(request.processors)
                dur_append(request.duration)
                dl_append(task.deadline)
                q_append(task.quality)
            cto_append(len(task_procs))
        jco_append(len(chains))
    return FlatBatch(
        jobs=jobs,
        chains=chains,
        releases=np.asarray(releases, dtype=np.float64),
        job_chain_off=np.asarray(job_chain_off, dtype=np.int64),
        chain_task_off=np.asarray(chain_task_off, dtype=np.int64),
        task_procs=np.asarray(task_procs, dtype=np.int64),
        task_dur=np.asarray(task_dur, dtype=np.float64),
        task_deadline=np.asarray(task_deadline, dtype=np.float64),
        task_quality=np.asarray(task_quality, dtype=np.float64),
        max_chains=max_chains,
        max_tasks=max_tasks,
    )


def try_admit_batch_compiled(
    arbitrator: "QoSArbitrator", jobs: Sequence[Job]
) -> list[AdmissionDecision] | None:
    """Run the whole batch through the C admission loop, or return None.

    ``None`` means "not handled" (kernel unavailable, unsupported shape,
    or a C error status) — the caller falls back to the serial path with
    the live state untouched.
    """
    impl = kernels.active()
    if not getattr(impl, "supports_batch", False):
        return None
    scheduler = arbitrator.scheduler
    policy_code = _POLICY_CODES.get(scheduler.policy)
    if policy_code is None:
        return None
    flat = flatten_jobs(jobs)
    if flat.max_chains > _MAX_CHAINS or flat.max_tasks > _MAX_TASKS:
        return None
    schedule = arbitrator.schedule
    profile = schedule.profile

    n0 = len(profile._times)  # noqa: SLF001 - same package, hot path
    # Each committed task splits at most two segments; headroom on top.
    buf_cap = n0 + 2 * flat.n_tasks + 8
    times_buf = np.empty(buf_cap, dtype=np.float64)
    avail_buf = np.empty(buf_cap, dtype=np.int64)
    times_buf[:n0] = profile._times  # noqa: SLF001
    avail_buf[:n0] = profile._avail  # noqa: SLF001
    prof_state = np.array([0, n0], dtype=np.int64)
    out_chain = np.empty(len(jobs), dtype=np.int64)
    out_starts = np.empty(max(flat.n_tasks, 1), dtype=np.float64)
    counters = np.zeros(12, dtype=np.int64)
    mc, mt = flat.max_chains, flat.max_tasks
    status = impl.admit_batch(
        times_buf=times_buf,
        avail_buf=avail_buf,
        prefix_buf=np.empty(buf_cap, dtype=np.float64),
        scratch_times=np.empty(buf_cap + 4, dtype=np.float64),
        scratch_avail=np.empty(buf_cap + 4, dtype=np.int64),
        buf_cap=buf_cap,
        prof_state=prof_state,
        capacity=profile.capacity,
        n_jobs=len(jobs),
        releases=flat.releases,
        job_chain_off=flat.job_chain_off,
        chain_task_off=flat.chain_task_off,
        task_procs=flat.task_procs,
        task_dur=flat.task_dur,
        task_deadline=flat.task_deadline,
        task_quality=flat.task_quality,
        policy=policy_code,
        use_dup=int(scheduler.prune),  # policy is deterministic here
        use_dom=int(scheduler.prune and scheduler.SUPPORTS_DOMINANCE),
        use_cap=int(scheduler.prune and scheduler.SUPPORTS_FINISH_CAP),
        do_compact=int(arbitrator.admission.compact),
        max_chains=mc,
        max_tasks=mt,
        dscratch=np.empty(mc * mt + 3 * mc + mt, dtype=np.float64),
        iscratch=np.empty(4 * mc, dtype=np.int64),
        out_chain=out_chain,
        out_starts=out_starts,
        counters=counters,
    )
    if status != 0:
        kernels.note_fallback(f"admit_batch kernel status {status}")
        return None
    return _apply_batch_results(
        arbitrator, flat, times_buf, avail_buf, prof_state, out_chain,
        out_starts, counters,
    )


def _apply_batch_results(
    arbitrator: "QoSArbitrator",
    flat: FlatBatch,
    times_buf: np.ndarray,
    avail_buf: np.ndarray,
    prof_state: np.ndarray,
    out_chain: np.ndarray,
    out_starts: np.ndarray,
    counters: np.ndarray,
) -> list[AdmissionDecision]:
    """Write the C results back into profile, schedule and accounting.

    Replays exactly the per-job accounting order of the serial loop
    (quality-possible before the decision, quality-sum and admission
    counters after), so every float accumulator matches bit-for-bit.
    """
    schedule = arbitrator.schedule
    profile = schedule.profile
    lo, n = int(prof_state[0]), int(prof_state[1])
    new_times = times_buf[lo : lo + n].copy()
    new_avail = avail_buf[lo : lo + n].copy()
    profile._times = new_times.tolist()  # noqa: SLF001
    profile._avail = new_avail.tolist()  # noqa: SLF001
    profile._np_times = new_times  # noqa: SLF001
    profile._np_avail = new_avail  # noqa: SLF001
    profile._prefix = None  # noqa: SLF001
    if profile._segtree is not None:  # noqa: SLF001
        profile._segtree.mark_dirty(0)  # noqa: SLF001

    stats = profile.stats
    stats.shift_ops += int(counters[0])
    stats.segments_touched += int(counters[1])
    if counters[0]:
        stats.last_touched = int(counters[2])
    stats.probes += int(counters[3])
    stats.probe_segments += int(counters[4])
    stats.prefix_rebuilds += int(counters[5])
    stats.compactions += int(counters[6])
    perf = schedule.perf
    for name, slot in (
        ("chains_probed", 7),
        ("chains_quick_rejected", 8),
        ("chains_area_rejected", 9),
        ("chains_pruned_dominated", 10),
        ("commits", 11),
    ):
        if counters[slot]:
            perf.count(name, int(counters[slot]))

    admission = arbitrator.admission
    comp = arbitrator.quality_composition
    task_off = flat.chain_task_off

    # Quality accounting.  PRODUCT / MIN compose with order-exact numpy
    # reductions (sequential multiply / exact min over each chain's task
    # slice, then an exact max across each job's chains), and the running
    # accumulators are replayed with a cumsum seeded by the current value
    # — the identical left-to-right float additions the serial loop
    # performs.  MEAN uses math.fsum, which has no cheap vector
    # equivalent, so it keeps the per-job Python calls.
    chain_q = None
    if len(flat.chains) and flat.n_tasks:
        starts_idx = flat.chain_task_off[:-1]
        if comp is QualityComposition.PRODUCT:
            chain_q = np.multiply.reduceat(flat.task_quality, starts_idx)
        elif comp is QualityComposition.MIN:
            chain_q = np.minimum.reduceat(flat.task_quality, starts_idx)
    if chain_q is not None:
        best_q = np.maximum.reduceat(chain_q, flat.job_chain_off[:-1])
        arbitrator._quality_possible = float(  # noqa: SLF001
            np.cumsum(
                np.concatenate(
                    ((arbitrator._quality_possible,), best_q)  # noqa: SLF001
                )
            )[-1]
        )
        admitted_q = chain_q[out_chain[out_chain >= 0]]
        if admitted_q.size:
            arbitrator._quality_sum = float(  # noqa: SLF001
                np.cumsum(
                    np.concatenate(
                        ((arbitrator._quality_sum,), admitted_q)  # noqa: SLF001
                    )
                )[-1]
            )

    decisions: list[AdmissionDecision] = []
    append = decisions.append
    for jb, job in enumerate(flat.jobs):
        if chain_q is None:
            arbitrator._quality_possible += job.best_quality(comp)  # noqa: SLF001
        c = int(out_chain[jb])
        if c < 0:
            admission.rejected += 1
            append(
                AdmissionDecision(
                    job.job_id, False, None,
                    reason="no schedulable configuration",
                )
            )
            continue
        chain = flat.chains[c]
        chain_index = c - int(flat.job_chain_off[jb])
        t0 = int(task_off[c])
        placements = tuple(
            Placement.rigid(task, float(out_starts[t0 + k]))
            for k, task in enumerate(chain.tasks)
        )
        cp = ChainPlacement(
            job_id=job.job_id,
            chain_index=chain_index,
            chain=chain,
            placements=placements,
            release=job.release,
        )
        schedule.record_commit(cp)
        admission.admitted += 1
        admission.decisions_by_chain[chain_index] = (
            admission.decisions_by_chain.get(chain_index, 0) + 1
        )
        if chain_q is None:
            arbitrator._quality_sum += chain_quality(chain, comp)  # noqa: SLF001
        append(AdmissionDecision(job.job_id, True, cp))
    return decisions


def prescreen_skips(
    arbitrator: "QoSArbitrator", jobs: Sequence[Job]
) -> list[frozenset[int]] | None:
    """Conservative per-job chain-skip sets from one vectorized pass.

    For every chain in the batch, evaluate the area-reject inequality
    against the *batch-entry* profile snapshot with a float-error margin
    (see the module docs for the soundness argument); chains condemned
    here are guaranteed to be rejected by the serial prober too, so the
    probe can skip them wholesale.  Returns ``None`` when the pre-screen
    cannot help (empty profile windows are cheap anyway).
    """
    profile = arbitrator.schedule.profile
    times_m, avail_m = profile._mirrors()  # noqa: SLF001
    prefix = kernels.free_area_prefix(times_m, avail_m)
    origin = float(times_m[0])
    capacity = profile.capacity

    releases: list[float] = []
    final_deadlines: list[float] = []
    areas: list[float] = []
    owner_end = [0]
    for job in jobs:
        for chain in job.chains:
            releases.append(job.release)
            final_deadlines.append(chain.final_deadline)
            areas.append(chain.total_area)
        owner_end.append(len(releases))
    if not releases:
        return None

    rel = np.asarray(releases, dtype=np.float64)
    t1 = rel + np.asarray(final_deadlines, dtype=np.float64)
    area = np.asarray(areas, dtype=np.float64)
    t0 = np.maximum(rel, origin)
    finite = np.isfinite(t1)
    degenerate = finite & (t1 <= t0)

    # Cumulative free area at t (vectorized _cumulative_free).
    def cum_free(t: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(times_m, t, side="right") - 1
        clipped = np.maximum(idx, 0)
        val = prefix[clipped] + avail_m[clipped] * (t - times_m[clipped])
        return np.where(idx < 0, 0.0, val)

    safe_t1 = np.where(finite, t1, origin)
    free = cum_free(np.maximum(safe_t1, t0)) - cum_free(t0)
    # Margin covering float divergence between this snapshot evaluation
    # and the serial one (differently-originated prefix sums, live
    # commits): absolute floor plus a relative term in the window area.
    span = np.maximum(safe_t1 - t0, 0.0)
    margin = 1e-7 + 1e-12 * capacity * span
    rejected = degenerate | (finite & (free < area - 1e-6 - margin))

    skips: list[frozenset[int]] = []
    for jb in range(len(jobs)):
        begin, end = owner_end[jb], owner_end[jb + 1]
        doomed = np.flatnonzero(rejected[begin:end])
        skips.append(frozenset(int(k) for k in doomed))
    return skips
