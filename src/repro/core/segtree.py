"""Hierarchical summary index over an availability profile's segments.

The scalar ``earliest_fit`` walk and the ``min_available`` loop in
:mod:`repro.core.profile` are O(segments) per probe; the vectorized mirror
scan in :mod:`repro.core.first_fit` lowers the constant (one C-level pass)
but stays O(segments).  Once a schedule fragments into thousands of live
segments, admission-decision latency is dominated by those scans.  This
module provides the third back-end: a flat-array **segment tree** over the
profile's segment list whose per-node aggregates let fit probes *skip whole
subtrees* that cannot possibly satisfy the request.

Aggregates maintained per node:

* ``max`` availability — powers :meth:`first_at_least`, the tree descent
  behind the O(log S)-per-run ``earliest_fit`` search (a subtree whose max
  availability is below the requested processor count cannot contain the
  start of a feasible run and is skipped wholesale);
* ``min`` availability — powers :meth:`first_below` (run-end location:
  the first segment that *breaks* a run) and :meth:`range_min`
  (O(log S) ``min_available``);
* a **free-area prefix array** over the leaves — O(log S) ``free_area``
  that is *bit-identical* to the profile's lazily rebuilt list prefix.
  The prefix is kept as a leaf-level summary rather than per-node partial
  sums deliberately: admission decisions threshold on free areas, so the
  tree back-end must reproduce the scalar oracle's floating-point results
  exactly, and only a fixed left-to-right summation order guarantees that.
  Sequential accumulation has the property that re-summing a suffix from
  the carried prefix value is bit-identical to re-summing from scratch,
  which is what makes the incremental splice below exact.

Incremental maintenance
-----------------------
The profile mutates through windowed splices (:meth:`AvailabilityProfile._shift`)
and origin trims (:meth:`~repro.core.profile.AvailabilityProfile.compact`);
``Schedule.commit``/``rollback`` are sequences of such splices, so the tree
survives rollback with no special casing.  Each mutation calls
:meth:`mark_dirty` with the leftmost affected leaf — an O(1) bookkeeping
write.  The next query calls :meth:`consolidate`, which re-derives the
dirty *suffix* of the leaf level from the profile's NumPy mirrors and
recomputes only the ancestor slices covering it, level by level, entirely
with vectorized operations.  Consecutive mutations between queries (a
chain commit is one reservation per task) coalesce into a single
consolidation.  The work per consolidation is O(S - dirty_from) at C speed
— the same complexity class as the mirror splice the profile already pays
— and frontier mutations (the common case: reservations near the end of
the profile) touch only a short suffix.

The tree is built lazily on the first tree-back-end query and never exists
— costing nothing — unless that back-end is used.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SegmentTreeIndex"]

#: Padding for leaves beyond the live segment count: never satisfies
#: ``avail >= processors`` (max tree) ...
_MAX_PAD = -1
#: ... and never satisfies ``avail < processors`` (min tree).
_MIN_PAD = 1 << 62


class SegmentTreeIndex:
    """Flat-array segment tree of (min, max) availability + area prefix.

    Nodes live in two ``int64`` arrays of length ``2*m`` (``m`` = leaf
    capacity, a power of two, root at index 1, leaves at ``[m, m+n)``).
    Query results are **bit-identical** to the scalar walks they replace:
    the descents compare the same integer availabilities, and the area
    prefix replicates the profile's sequential float accumulation.

    Instances are created and owned by
    :class:`~repro.core.profile.AvailabilityProfile`; all indices are
    segment (leaf) indices into the profile's ``_times``/``_avail`` arrays.
    """

    __slots__ = (
        "_m",
        "_n",
        "_tmin",
        "_tmax",
        "_lmin",
        "_lmax",
        "_prefix",
        "_dirty_from",
        "visited",
        "rebuilds",
        "splices",
    )

    def __init__(self, times: np.ndarray, avail: np.ndarray) -> None:
        #: Tree nodes visited by descents (the tree back-end's analogue of
        #: ``ProfileStats.probe_segments``; see :mod:`repro.perf`).
        self.visited = 0
        #: Full vectorized rebuilds (initial build, growth past capacity).
        self.rebuilds = 0
        #: Incremental suffix consolidations applied.
        self.splices = 0
        self._dirty_from: int | None = None
        self._build(times, avail)

    # ------------------------------------------------------------------
    # Construction and maintenance
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of live leaves (profile segments) indexed."""
        return self._n

    @property
    def leaf_capacity(self) -> int:
        """Allocated leaf slots (power of two, >= :attr:`n`)."""
        return self._m

    def _build(self, times: np.ndarray, avail: np.ndarray) -> None:
        n = int(avail.shape[0])
        m = 1
        while m < n:
            m <<= 1
        tmin = np.full(2 * m, _MIN_PAD, dtype=np.int64)
        tmax = np.full(2 * m, _MAX_PAD, dtype=np.int64)
        tmin[m : m + n] = avail
        tmax[m : m + n] = avail
        lo = m
        while lo > 1:
            tmin[lo >> 1 : lo] = np.minimum(tmin[lo : 2 * lo : 2], tmin[lo + 1 : 2 * lo : 2])
            tmax[lo >> 1 : lo] = np.maximum(tmax[lo : 2 * lo : 2], tmax[lo + 1 : 2 * lo : 2])
            lo >>= 1
        seq = np.empty(n, dtype=np.float64)
        seq[0] = 0.0
        if n > 1:
            seq[1:] = avail[: n - 1] * np.diff(times)
        self._m = m
        self._n = n
        self._tmin = tmin
        self._tmax = tmax
        # Plain-list shadows of the node arrays for the descents: indexing a
        # Python list is several times cheaper per node visit than pulling
        # NumPy scalars, and the descents are the query hot path.  The
        # shadows are refreshed by C-speed ``tolist`` slice assignments.
        self._lmin = tmin.tolist()
        self._lmax = tmax.tolist()
        self._prefix = np.cumsum(seq)
        self._dirty_from = None
        self.rebuilds += 1

    def mark_dirty(self, from_idx: int) -> None:
        """Note that leaves at or after ``from_idx`` changed (O(1)).

        Callers pass the leftmost leaf whose value *or width* may have
        changed (``_shift`` passes its splice index minus one, since the
        left border segment's width changes when the splice absorbs its
        right breakpoint).
        """
        d = self._dirty_from
        if d is None or from_idx < d:
            self._dirty_from = from_idx if from_idx > 0 else 0

    def consolidate(self, times: np.ndarray, avail: np.ndarray) -> None:
        """Apply pending dirt against the current profile mirrors.

        Rebuilds from scratch (vectorized O(S)) when the leaf count
        outgrew capacity or shrank far below it; otherwise recomputes the
        dirty leaf suffix and the ancestor slices above it.
        """
        d = self._dirty_from
        if d is None:
            return
        n_new = int(avail.shape[0])
        m = self._m
        if n_new > m or (m > 64 and n_new <= m >> 2):
            self._build(times, avail)
            return
        n_old = self._n
        # Clamp the splice start against *both* lengths: when the profile
        # grew past the old leaf count, the prefix carry below must read a
        # value that existed before the splice (rewriting an extra
        # unchanged leaf is harmless — it recomputes to the same value).
        j = min(d, n_new - 1, n_old - 1)
        if j < 0:
            j = 0
        tmin = self._tmin
        tmax = self._tmax
        tmin[m + j : m + n_new] = avail[j:]
        tmax[m + j : m + n_new] = avail[j:]
        if n_new < n_old:
            tmin[m + n_new : m + n_old] = _MIN_PAD
            tmax[m + n_new : m + n_old] = _MAX_PAD
        lmin = self._lmin
        lmax = self._lmax
        lo = m + j
        hi = m + max(n_new, n_old)
        lmin[lo:hi] = tmin[lo:hi].tolist()
        lmax[lo:hi] = tmax[lo:hi].tolist()
        while lo > 1:
            lo >>= 1
            hi = ((hi - 1) >> 1) + 1
            tmin[lo:hi] = np.minimum(tmin[2 * lo : 2 * hi : 2], tmin[2 * lo + 1 : 2 * hi : 2])
            tmax[lo:hi] = np.maximum(tmax[lo * 2 : 2 * hi : 2], tmax[2 * lo + 1 : 2 * hi : 2])
            lmin[lo:hi] = tmin[lo:hi].tolist()
            lmax[lo:hi] = tmax[lo:hi].tolist()
        # Prefix suffix: sequential accumulation restarted from the carried
        # value is bit-identical to a from-scratch rebuild (see module docs).
        seq = np.empty(n_new - j, dtype=np.float64)
        seq[0] = self._prefix[j]
        if n_new - j > 1:
            seq[1:] = avail[j : n_new - 1] * np.diff(times[j:])
        self._prefix = np.concatenate((self._prefix[:j], np.cumsum(seq)))
        self._n = n_new
        self._dirty_from = None
        self.splices += 1

    # ------------------------------------------------------------------
    # Queries (leaf/segment indices; caller consolidates first)
    # ------------------------------------------------------------------

    def prefix(self) -> np.ndarray:
        """Free-area prefix over the leaves (``prefix[k]`` = area to ``times[k]``)."""
        return self._prefix

    def first_at_least(self, start: int, processors: int) -> int:
        """First leaf index ``>= start`` with availability ``>= processors``.

        Returns -1 when no such segment exists.  O(log S): climbs to the
        first right-hand subtree whose max availability qualifies, then
        descends to its leftmost qualifying leaf.
        """
        if start >= self._n:
            return -1
        t = self._lmax
        m = self._m
        i = start + m
        visited = 1
        if t[i] >= processors:
            self.visited += visited
            return start
        while True:
            while i & 1:
                i >>= 1
            if i == 0:
                self.visited += visited
                return -1
            i += 1
            visited += 1
            if t[i] >= processors:
                break
        while i < m:
            i <<= 1
            visited += 1
            if t[i] < processors:
                i += 1
        self.visited += visited
        # Padding leaves hold -1 and can never qualify, so i - m < n here.
        return i - m

    def first_below(self, start: int, processors: int) -> int:
        """First leaf index ``>= start`` with availability ``< processors``.

        Returns -1 when every segment from ``start`` on qualifies (the run
        extends through the profile's trailing infinite segment).
        """
        if start >= self._n:
            return -1
        t = self._lmin
        m = self._m
        i = start + m
        visited = 1
        if t[i] < processors:
            self.visited += visited
            return start
        while True:
            while i & 1:
                i >>= 1
            if i == 0:
                self.visited += visited
                return -1
            i += 1
            visited += 1
            if t[i] < processors:
                break
        while i < m:
            i <<= 1
            visited += 1
            if t[i] >= processors:
                i += 1
        self.visited += visited
        # Padding leaves hold a huge sentinel and can never be below.
        return i - m

    def range_min(self, lo: int, hi: int) -> int:
        """Minimum availability over leaves ``[lo, hi)`` (non-empty range)."""
        t = self._lmin
        m = self._m
        lo += m
        hi += m
        best = _MIN_PAD
        visited = 0
        while lo < hi:
            if lo & 1:
                if t[lo] < best:
                    best = t[lo]
                lo += 1
                visited += 1
            if hi & 1:
                hi -= 1
                if t[hi] < best:
                    best = t[hi]
                visited += 1
            lo >>= 1
            hi >>= 1
        self.visited += visited
        return int(best)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def check_against(self, times: list[float], avail: list[int]) -> None:
        """Raise ``AssertionError`` unless the index matches ``times``/``avail``.

        Used by :meth:`AvailabilityProfile.check_invariants`; assumes the
        caller consolidated first.
        """
        n = len(avail)
        m = self._m
        if self._n != n:
            raise AssertionError(f"segtree leaf count {self._n} != {n}")
        if list(self._tmin[m : m + n]) != avail:
            raise AssertionError("segtree min leaves out of sync")
        if list(self._tmax[m : m + n]) != avail:
            raise AssertionError("segtree max leaves out of sync")
        for i in range(1, m):
            lo = int(min(self._tmin[2 * i], self._tmin[2 * i + 1]))
            hi = int(max(self._tmax[2 * i], self._tmax[2 * i + 1]))
            if int(self._tmin[i]) != lo or int(self._tmax[i]) != hi:
                raise AssertionError(f"segtree node {i} aggregate out of sync")
        if self._lmin != self._tmin.tolist() or self._lmax != self._tmax.tolist():
            raise AssertionError("segtree list shadows out of sync")
        acc = 0.0
        for k in range(n):
            if self._prefix[k] != acc:
                raise AssertionError(f"segtree prefix[{k}] {self._prefix[k]} != {acc}")
            if k + 1 < n:
                acc += avail[k] * (times[k + 1] - times[k])
