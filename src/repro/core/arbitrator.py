"""The system-level QoS arbitrator (Section 3).

"The QoS arbitrator takes advantage of the flexible program specification
provided by QoS agents to enhance system utilization while satisfying the
predictability requirements of each application. ... The QoS arbitrator
scheduling algorithms first choose the best execution path, and then make an
assignment of which processors will execute which application tasks and for
what time."

:class:`QoSArbitrator` is the façade a deployment talks to: it owns the
:class:`~repro.core.schedule.Schedule`, a greedy (rigid or malleable)
scheduler, and admission control, and exposes job submission plus running
metrics.  QoS *agents* (:mod:`repro.qos.agent`) negotiate with it on behalf
of applications.
"""

from __future__ import annotations

import random
import time
from enum import Enum
from typing import Sequence

from repro.core import kernels
from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.kernels import batch as kernel_batch
from repro.core.greedy import GreedyScheduler
from repro.core.malleable import MalleableScheduler, MalleableStrategy
from repro.core.placement import ChainPlacement
from repro.core.policies import TieBreakPolicy, select_candidate
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError
from repro.model.job import Job
from repro.model.quality import QualityComposition, chain_quality

__all__ = ["ArbitrationObjective", "QoSArbitrator"]


class ArbitrationObjective(Enum):
    """What the arbitrator optimizes when choosing among a job's paths."""

    #: Earliest finish time with the paper's tie-breaks (Section 5.2).
    EARLIEST_FINISH = "earliest-finish"
    #: First maximize achieved path quality, then earliest finish — the
    #: "in practice" objective of Section 5.1 ("the issue then is of
    #: maximizing the achieved job quality").
    MAX_QUALITY = "max-quality"


class QoSArbitrator:
    """System-wide resource manager for predictable tunable jobs.

    Parameters
    ----------
    capacity:
        Number of homogeneous processors managed.
    malleable:
        Select the Section 5.4 malleable placement model instead of the
        rigid Section 5.3 model.
    objective:
        Path-choice objective (see :class:`ArbitrationObjective`).
    policy:
        Tie-break policy inside the earliest-finish criterion.
    strategy / min_processors:
        Malleable-model knobs, ignored when ``malleable=False``.
    quality_composition:
        How per-task qualities compose into a path quality.
    keep_placements:
        Retain every committed placement (memory grows with admitted jobs).
    compact:
        Compact the availability profile to each arrival time.
    backend:
        Availability-profile scan back-end (see
        :data:`~repro.core.profile.PROFILE_BACKENDS`).  ``"tree"`` keeps
        decision latency sublinear in schedule fragmentation; decisions are
        bit-identical across back-ends.
    prune:
        Enable the decision-identical candidate prunes (duplicate collapse,
        failure propagation, incumbent finish capping, quality-ordered
        short-circuit under MAX_QUALITY — see :mod:`repro.core.greedy`).
        ``False`` probes every configuration in full; decisions are
        identical either way.
    seed:
        Seed for the RANDOM tie-break policy only.
    """

    def __init__(
        self,
        capacity: int,
        *,
        malleable: bool = False,
        objective: ArbitrationObjective = ArbitrationObjective.EARLIEST_FINISH,
        policy: TieBreakPolicy = TieBreakPolicy.PAPER,
        strategy: MalleableStrategy = MalleableStrategy.WIDEST_FIRST_FEASIBLE,
        min_processors: int = 1,
        quality_composition: QualityComposition = QualityComposition.PRODUCT,
        keep_placements: bool = True,
        compact: bool = True,
        backend: str = "auto",
        prune: bool = True,
        origin: float = 0.0,
        seed: int | None = None,
    ) -> None:
        self.schedule = Schedule(
            capacity, origin=origin, keep_placements=keep_placements, backend=backend
        )
        rng = random.Random(seed) if seed is not None else None
        if malleable:
            self.scheduler: GreedyScheduler = MalleableScheduler(
                self.schedule,
                policy=policy,
                strategy=strategy,
                min_processors=min_processors,
                rng=rng,
                prune=prune,
            )
        else:
            self.scheduler = GreedyScheduler(
                self.schedule, policy=policy, rng=rng, prune=prune
            )
        self.objective = objective
        self.quality_composition = quality_composition
        self.admission = AdmissionController(self.scheduler, compact=compact)
        self._quality_sum = 0.0
        self._quality_possible = 0.0

    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Number of processors managed."""
        return self.schedule.capacity

    @property
    def malleable(self) -> bool:
        """Whether the malleable placement model is active."""
        return isinstance(self.scheduler, MalleableScheduler)

    @property
    def admitted(self) -> int:
        """Jobs admitted so far."""
        return self.admission.admitted

    @property
    def rejected(self) -> int:
        """Jobs rejected so far."""
        return self.admission.rejected

    @property
    def achieved_quality(self) -> float:
        """Sum of path qualities over admitted jobs."""
        return self._quality_sum

    @property
    def quality_ratio(self) -> float:
        """Achieved quality over the best possible quality of *offered* jobs."""
        if self._quality_possible == 0:
            return 0.0
        return self._quality_sum / self._quality_possible

    def utilization(self, horizon: float | None = None) -> float:
        """Committed utilization; see :meth:`repro.core.schedule.Schedule.utilization`."""
        return self.schedule.utilization(horizon)

    def chain_usage(self) -> dict[int, int]:
        """How many admitted jobs used each configuration index."""
        return dict(self.admission.decisions_by_chain)

    # ------------------------------------------------------------------

    def perf_snapshot(self) -> dict[str, float | int | str]:
        """Hot-path instrumentation summary (see :mod:`repro.perf`).

        Includes per-submit wall-clock decision latency (``decision_*``),
        scheduler counters (probes, quick/area rejects, prune counters,
        commits, rollbacks) and profile operation stats (``profile_*``).
        The candidate-search counters are always present (0 when the event
        never fired) so dashboards and tests can read them unconditionally.
        Kernel-layer selection telemetry rides along: ``kernel_backend``
        (``"compiled"`` or ``"python"`` — which decision-kernel
        implementation serves ``REPRO_KERNEL``-routed paths) and
        ``kernel_fallbacks`` (process-wide count of compiled→python
        fallback events).
        """
        out = self.schedule.perf_snapshot()
        for name in (
            "chains_probed",
            "chains_quick_rejected",
            "chains_area_rejected",
            "chains_pruned_dominated",
            "chains_pruned_quality",
            "chains_prescreen_skipped",
            "batch_jobs",
            "batch_fallbacks",
        ):
            out.setdefault(name, 0)
        out["kernel_backend"] = kernels.kernel_backend()
        out["kernel_fallbacks"] = kernels.stats.fallbacks
        return out

    # ------------------------------------------------------------------

    def adopt_schedule(self, schedule: Schedule) -> None:
        """Swap in a replacement :class:`Schedule` (capacity change).

        The resilience driver rebuilds the committed schedule on a new
        machine size at each capacity event; this rebinds the arbitrator
        and its scheduler to that schedule so subsequent admissions probe
        the post-change profile.  Admission/quality counters are *not*
        reset — they describe the whole run, not one capacity epoch.
        """
        old = self.schedule.profile.autotune
        if old is not None and schedule.profile.backend == "adaptive":
            # Carry the adaptive controller across the capacity epoch so
            # hysteresis state (current backend, dwell, EWMA) survives the
            # rebuild instead of restarting cold on every fault.
            schedule.profile.adopt_autotune(old)
        self.schedule = schedule
        self.scheduler.schedule = schedule

    def submit(self, job: Job) -> AdmissionDecision:
        """Admission-control one job and commit its chosen configuration.

        Jobs must be submitted in non-decreasing release order when profile
        compaction is enabled (the default), matching an arrival process.
        Each call records one wall-clock ``decision`` latency sample on
        :attr:`Schedule.perf <repro.core.schedule.Schedule.perf>` and, when
        the profile runs ``backend="adaptive"``, feeds the same sample to
        the autotune controller's latency EWMA.
        """
        self._quality_possible += job.best_quality(self.quality_composition)
        t0 = time.perf_counter()
        try:
            if self.objective is ArbitrationObjective.EARLIEST_FINISH:
                decision = self.admission.offer(job)
            elif self.objective is ArbitrationObjective.MAX_QUALITY:
                decision = self._offer_max_quality(job)
            else:  # pragma: no cover - closed enum
                raise ConfigurationError(f"unknown objective {self.objective!r}")
        finally:
            dt = time.perf_counter() - t0
            self.schedule.perf.note_decision(dt)
            autotune = self.schedule.profile.autotune
            if autotune is not None:
                autotune.observe_decision(dt)
        if decision.admitted and decision.placement is not None:
            self._quality_sum += chain_quality(
                decision.placement.chain, self.quality_composition
            )
        return decision

    def admit_batch(self, jobs: "Sequence[Job]") -> list[AdmissionDecision]:
        """Admission-control a vector of jobs in arrival order.

        **Equivalence contract**: the decisions, committed schedule,
        admission counters and quality accumulators are bit-identical to
        calling :meth:`submit` on each job in sequence — the batch API
        changes *cost*, never *outcome* (asserted per-case by the
        differential fuzzer and ``tests/core/test_admit_batch.py``).
        Jobs must be in non-decreasing release order when compaction is
        enabled, exactly as for serial submission.

        Cost is amortized two ways:

        * with the compiled kernel loaded and a supported configuration
          (plain rigid scheduler, earliest-finish objective,
          deterministic tie-break), the entire admission loop for the
          batch — compaction, pruning, probing, tie-breaking, committing
          — runs in **one C call** over flat arrays
          (:func:`repro.core.kernels.batch.try_admit_batch_compiled`);
        * otherwise one vectorized area pre-screen over the batch-entry
          profile condemns hopeless configurations for the whole batch
          at once, and the ordinary Python loop runs with those chains
          skipped (``chains_prescreen_skipped``).

        Latency lands in one ``decision_batch`` timer sample (not one
        ``decision`` sample per job); ``batch_jobs`` counts jobs routed
        through here and ``batch_fallbacks`` the batches the compiled
        path declined.
        """
        if not jobs:
            return []
        perf = self.schedule.perf
        perf.batch_jobs += len(jobs)
        t0 = time.perf_counter()
        try:
            earliest = self.objective is ArbitrationObjective.EARLIEST_FINISH
            fast_eligible = (
                earliest
                and type(self.scheduler) is GreedyScheduler
                and self.scheduler.policy is not TieBreakPolicy.RANDOM
            )
            if fast_eligible:
                decisions = kernel_batch.try_admit_batch_compiled(self, jobs)
                if decisions is not None:
                    return decisions
            perf.batch_fallbacks += 1
            skips = (
                kernel_batch.prescreen_skips(self, jobs) if earliest else None
            )
            out: list[AdmissionDecision] = []
            for k, job in enumerate(jobs):
                self._quality_possible += job.best_quality(
                    self.quality_composition
                )
                if earliest:
                    decision = self.admission.offer(
                        job, skips[k] if skips is not None else ()
                    )
                else:
                    decision = self._offer_max_quality(job)
                if decision.admitted and decision.placement is not None:
                    self._quality_sum += chain_quality(
                        decision.placement.chain, self.quality_composition
                    )
                out.append(decision)
            return out
        finally:
            dt = time.perf_counter() - t0
            perf.observe("decision_batch", dt)
            autotune = self.schedule.profile.autotune
            if autotune is not None:
                autotune.observe_batch(len(jobs), dt)

    def resubmit(self, job: Job) -> AdmissionDecision:
        """Re-offer a job already counted rejected by :meth:`submit`.

        The shrink-to-admit path of the mid-execution resize engine: after
        a rejection, a running malleable job may be narrowed to free
        capacity and the arrival re-offered against the reshaped profile.
        The job was fully counted (offered/rejected/quality-possible) by
        its original :meth:`submit`, so this nets the provisional rejection
        out instead of counting the job twice: on success the earlier
        rejection is removed and the admission recorded as usual; on
        failure all counters are left exactly as :meth:`submit` set them.
        """
        t0 = time.perf_counter()
        try:
            if self.objective is ArbitrationObjective.EARLIEST_FINISH:
                decision = self.admission.offer(job)
            else:
                decision = self._offer_max_quality(job)
        finally:
            dt = time.perf_counter() - t0
            self.schedule.perf.note_decision(dt)
            autotune = self.schedule.profile.autotune
            if autotune is not None:
                autotune.observe_decision(dt)
        if decision.admitted and decision.placement is not None:
            self.admission.rejected -= 1  # the provisional rejection
            self._quality_sum += chain_quality(
                decision.placement.chain, self.quality_composition
            )
        else:
            self.admission.rejected -= 1  # offer() double-counted the reject
        return decision

    def _offer_max_quality(self, job: Job) -> AdmissionDecision:
        """Admission with quality-first path choice.

        With pruning enabled, configurations are probed in descending
        quality order: the first success pins the achievable quality, and
        every strictly lower-quality configuration after it is skipped
        unprobed (counted as ``chains_pruned_quality``) — it cannot be in
        the quality-tie set the tie-break chooses from.  Equal-quality
        duplicates sort by submission index, so collapses resolve to the
        same configuration the exhaustive path picks, and the surviving
        tie set is re-sorted into submission order before tie-breaking.
        Decisions are bit-identical to ``prune=False``.
        """
        admission = self.admission
        if admission.compact:
            self.schedule.compact(job.release)
        scheduler = self.scheduler
        if scheduler.prune:
            qualities = [
                chain_quality(c, self.quality_composition) for c in job.chains
            ]
            order = sorted(range(len(job.chains)), key=lambda i: (-qualities[i], i))
            probe = scheduler._prober(job, True, True)
            top: list[ChainPlacement] = []
            best_q: float | None = None
            for pos, idx in enumerate(order):
                if best_q is not None and qualities[idx] < best_q - 1e-12:
                    self.schedule.perf.chains_pruned_quality += len(order) - pos
                    break
                cp = probe(idx)
                if cp is not None:
                    if best_q is None:
                        best_q = qualities[idx]
                    top.append(cp)
            top.sort(key=lambda c: c.chain_index)
        else:
            cands = scheduler.candidates(job)
            if cands:
                best_q = max(
                    chain_quality(c.chain, self.quality_composition) for c in cands
                )
                top = [
                    c
                    for c in cands
                    if chain_quality(c.chain, self.quality_composition)
                    >= best_q - 1e-12
                ]
            else:
                top = []
        if not top:
            admission.rejected += 1
            return AdmissionDecision(
                job.job_id, False, None, reason="no schedulable configuration"
            )
        chosen: ChainPlacement = select_candidate(
            self.schedule, top, scheduler.policy, scheduler.rng
        )
        self.schedule.commit(chosen)
        admission.admitted += 1
        admission.decisions_by_chain[chosen.chain_index] = (
            admission.decisions_by_chain.get(chosen.chain_index, 0) + 1
        )
        return AdmissionDecision(job.job_id, True, chosen)
