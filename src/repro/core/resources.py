"""Resource requests and virtual-time arithmetic.

The paper's task model (Section 5.1, footnote 1) treats *processors* as the
managed resource: a task requests non-preemptive allocation of a specific
number of processors for a fixed amount of time.  This module defines that
request type and the epsilon-tolerant time comparisons used throughout the
scheduler.

Times are floats in *virtual* (simulated) time units.  All comparisons that
decide feasibility use a small tolerance :data:`TIME_EPS` so that chains of
float additions (e.g. repeated task finish times) do not spuriously miss
deadlines by 1 ulp.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import InvalidTaskError

__all__ = [
    "TIME_EPS",
    "time_eq",
    "time_leq",
    "time_lt",
    "time_geq",
    "ProcessorTimeRequest",
]

#: Tolerance for virtual-time comparisons.  Workload generators use values
#: that are exactly representable, so the tolerance only matters for deeply
#: chained arithmetic.
TIME_EPS: float = 1e-9


def time_eq(a: float, b: float) -> bool:
    """Return True if two virtual times are equal within :data:`TIME_EPS`."""
    if a == b:  # handles inf == inf
        return True
    return abs(a - b) <= TIME_EPS


def time_leq(a: float, b: float) -> bool:
    """Return True if ``a <= b`` within tolerance (``a`` at most ``b``)."""
    return a <= b + TIME_EPS


def time_lt(a: float, b: float) -> bool:
    """Return True if ``a < b`` strictly, beyond tolerance."""
    return a < b - TIME_EPS


def time_geq(a: float, b: float) -> bool:
    """Return True if ``a >= b`` within tolerance."""
    return a >= b - TIME_EPS


@dataclass(frozen=True, slots=True)
class ProcessorTimeRequest:
    """A non-preemptive request for ``processors`` CPUs for ``duration`` time.

    This is the ``resource-request`` of the paper's ``task`` construct
    (Section 4.2): "a processor-time tuple, denoting the number of processors
    required for the task and the time duration they are required for".

    Attributes
    ----------
    processors:
        Positive integer number of processors required simultaneously.
    duration:
        Positive length of virtual time the processors are held.
    """

    processors: int
    duration: float

    def __post_init__(self) -> None:
        if not isinstance(self.processors, int) or isinstance(self.processors, bool):
            raise InvalidTaskError(
                f"processor count must be an int, got {self.processors!r}"
            )
        if self.processors <= 0:
            raise InvalidTaskError(
                f"processor count must be positive, got {self.processors}"
            )
        if not (self.duration > 0) or math.isinf(self.duration) or math.isnan(self.duration):
            raise InvalidTaskError(
                f"duration must be positive and finite, got {self.duration!r}"
            )

    @property
    def area(self) -> float:
        """Total processor-time product (the request's resource 'area')."""
        return self.processors * self.duration

    def scaled_to(self, processors: int) -> "ProcessorTimeRequest":
        """Return a work-conserving reshaping of this request.

        Used by the malleable model (Section 5.4): running the same total
        work on ``processors`` CPUs takes ``area / processors`` time.  The
        paper's malleable tasks exhibit perfect (linear) speedup up to their
        degree of concurrency; sublinear models are layered on top in
        :mod:`repro.core.malleable`.
        """
        if processors <= 0:
            raise InvalidTaskError(
                f"cannot scale request to {processors} processors"
            )
        return ProcessorTimeRequest(processors, self.area / processors)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.processors}p x {self.duration:g}t"
