"""Core scheduling machinery — the paper's primary contribution.

This subpackage implements the QoS arbitrator's scheduling engine from
Section 5 of the paper:

* :mod:`repro.core.resources` — processor-time requests and time arithmetic.
* :mod:`repro.core.profile` — the free-processor step function over time.
* :mod:`repro.core.holes` — maximal holes ``(t_b, t_e, m)`` (Section 5.2).
* :mod:`repro.core.first_fit` — earliest-feasible-start search for one task.
* :mod:`repro.core.greedy` — the greedy heuristic for chains and tunable jobs.
* :mod:`repro.core.malleable` — the malleable-task variant (Section 5.4).
* :mod:`repro.core.admission` / :mod:`repro.core.arbitrator` — admission
  control and the system-level QoS arbitrator (Section 3).
* :mod:`repro.core.baselines` — EDF and conservative-reservation baselines.
"""

from repro.core.resources import TIME_EPS, ProcessorTimeRequest, time_eq, time_leq
from repro.core.profile import AvailabilityProfile
from repro.core.holes import MaximalHole, maximal_holes
from repro.core.placement import Placement, ChainPlacement
from repro.core.schedule import Schedule
from repro.core.first_fit import earliest_fit
from repro.core.greedy import GreedyScheduler
from repro.core.malleable import MalleableScheduler, MalleableStrategy
from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.arbitrator import QoSArbitrator
from repro.core.policies import TieBreakPolicy
from repro.core.assignment import AssignedSlice, assign_processors
from repro.core.multiresource import (
    MultiResourceProfile,
    VectorRequest,
    earliest_vector_fit,
)

__all__ = [
    "TIME_EPS",
    "ProcessorTimeRequest",
    "time_eq",
    "time_leq",
    "AvailabilityProfile",
    "MaximalHole",
    "maximal_holes",
    "Placement",
    "ChainPlacement",
    "Schedule",
    "earliest_fit",
    "GreedyScheduler",
    "MalleableScheduler",
    "MalleableStrategy",
    "AdmissionController",
    "AdmissionDecision",
    "QoSArbitrator",
    "TieBreakPolicy",
    "AssignedSlice",
    "assign_processors",
    "VectorRequest",
    "MultiResourceProfile",
    "earliest_vector_fit",
]
