"""The greedy heuristic for rigid (non-malleable) tunable jobs (Section 5.2).

"The heuristic greedily allocates resources to jobs using a first fit
policy.  For a tunable job with multiple schedulable configurations, the
heuristic finds among all of them the one that most efficiently uses the
system. ... A job is schedulable if all the tasks on its task chain (any one
of the task chains for a tunable job) can be scheduled into available holes
while meeting the task deadlines."

Per-task first fit (earliest feasible start) composed along a chain is
*dominant* for chains: starting a task at its earliest feasible time can
only enlarge the feasible start set of every successor, so the per-chain
placement returned here achieves that chain's minimum possible finish time
under the committed profile — which is why "under the assumptions of our
task model, the heuristic finds the job configuration which achieves the
earliest finish time."
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.core.first_fit import earliest_fit
from repro.core.placement import ChainPlacement, Placement
from repro.core.policies import TieBreakPolicy, select_candidate
from repro.core.schedule import Schedule
from repro.model.chain import TaskChain
from repro.model.job import Job

__all__ = ["GreedyScheduler"]


class GreedyScheduler:
    """First-fit greedy scheduler over a shared :class:`Schedule`.

    Parameters
    ----------
    schedule:
        The committed schedule this scheduler reads and (on
        :meth:`schedule_job`) writes.
    policy:
        Tie-break rule among equally-early-finishing configurations.
    rng:
        Only used by :attr:`TieBreakPolicy.RANDOM`.
    """

    def __init__(
        self,
        schedule: Schedule,
        policy: TieBreakPolicy = TieBreakPolicy.PAPER,
        rng: random.Random | None = None,
    ) -> None:
        self.schedule = schedule
        self.policy = policy
        self.rng = rng

    # ------------------------------------------------------------------

    def _quick_reject(self, chain: TaskChain) -> bool:
        """Cheap necessary-condition check before running first fit.

        Overridden by the malleable scheduler, whose reshaping invalidates
        the rigid width/duration bounds used here.
        """
        return chain.is_trivially_infeasible(self.schedule.capacity)

    def _area_reject(self, chain: TaskChain, release: float) -> bool:
        """O(log S) free-area necessary condition against the live profile.

        A chain's tasks occupy pairwise-disjoint time intervals inside
        ``[release, release + final_deadline]`` (every task finishes before
        the final task's deadline), so the window's free processor-time must
        cover the chain's total area for *any* placement — rigid or
        malleable (reshaping conserves area).  Runs off the profile's
        cached prefix sums, so it prunes doomed first-fit walks for the
        cost of two bisections.  The small absolute slack keeps a perfectly
        tight feasible chain from being rejected by float accumulation.
        """
        profile = self.schedule.profile
        t0 = max(release, profile.origin)
        t1 = release + chain.final_deadline
        if math.isinf(t1):
            return False
        if t1 <= t0:
            return True
        return profile.free_area(t0, t1) < chain.total_area - 1e-6

    def place_chain(
        self,
        chain: TaskChain,
        release: float,
        job_id: int = -1,
        chain_index: int = 0,
    ) -> ChainPlacement | None:
        """Tentatively place every task of ``chain`` by first fit.

        Does **not** modify the schedule.  Returns ``None`` as soon as any
        task cannot meet its deadline.
        """
        profile = self.schedule.profile
        earliest = max(release, profile.origin)
        placements: list[Placement] = []
        for task in chain.tasks:
            start = earliest_fit(
                profile,
                task.processors,
                task.duration,
                earliest,
                release + task.deadline,
            )
            if start is None:
                return None
            placements.append(Placement.rigid(task, start))
            earliest = start + task.duration
        return ChainPlacement(
            job_id=job_id,
            chain_index=chain_index,
            chain=chain,
            placements=tuple(placements),
            release=release,
        )

    def candidates(self, job: Job) -> list[ChainPlacement]:
        """Tentative placements for every schedulable configuration of ``job``."""
        perf = self.schedule.perf
        out: list[ChainPlacement] = []
        for idx, chain in enumerate(job.chains):
            perf.count("chains_probed")
            if self._quick_reject(chain):
                perf.count("chains_quick_rejected")
                continue
            if self._area_reject(chain, job.release):
                perf.count("chains_area_rejected")
                continue
            cp = self.place_chain(chain, job.release, job.job_id, idx)
            if cp is not None:
                out.append(cp)
        return out

    def choose(self, job: Job) -> ChainPlacement | None:
        """Best schedulable configuration of ``job`` (not committed)."""
        cands = self.candidates(job)
        if not cands:
            return None
        return select_candidate(self.schedule, cands, self.policy, self.rng)

    def schedule_job(self, job: Job) -> ChainPlacement | None:
        """Choose and *commit* the best configuration; ``None`` if rejected."""
        chosen = self.choose(job)
        if chosen is not None:
            self.schedule.commit(chosen)
        return chosen

    # ------------------------------------------------------------------

    def choose_among(
        self, job: Job, chain_indices: Sequence[int]
    ) -> ChainPlacement | None:
        """Like :meth:`choose` restricted to a subset of configurations.

        Used by baseline experiments that strip tunability from a job
        without rebuilding it.
        """
        perf = self.schedule.perf
        cands: list[ChainPlacement] = []
        for idx in chain_indices:
            chain = job.chains[idx]
            perf.count("chains_probed")
            if self._quick_reject(chain):
                perf.count("chains_quick_rejected")
                continue
            if self._area_reject(chain, job.release):
                perf.count("chains_area_rejected")
                continue
            cp = self.place_chain(chain, job.release, job.job_id, idx)
            if cp is not None:
                cands.append(cp)
        if not cands:
            return None
        return select_candidate(self.schedule, cands, self.policy, self.rng)
