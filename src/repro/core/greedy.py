"""The greedy heuristic for rigid (non-malleable) tunable jobs (Section 5.2).

"The heuristic greedily allocates resources to jobs using a first fit
policy.  For a tunable job with multiple schedulable configurations, the
heuristic finds among all of them the one that most efficiently uses the
system. ... A job is schedulable if all the tasks on its task chain (any one
of the task chains for a tunable job) can be scheduled into available holes
while meeting the task deadlines."

Per-task first fit (earliest feasible start) composed along a chain is
*dominant* for chains: starting a task at its earliest feasible time can
only enlarge the feasible start set of every successor, so the per-chain
placement returned here achieves that chain's minimum possible finish time
under the committed profile — which is why "under the assumptions of our
task model, the heuristic finds the job configuration which achieves the
earliest finish time."

Candidate pruning
-----------------
:meth:`GreedyScheduler.choose` does not blindly probe every OR-path; three
*provably decision-identical* prunes cut the number of first-fit walks per
submission (all can be disabled with ``prune=False``, the oracle mode the
regression tests compare against):

* **duplicate collapse** — two chains identical in every
  placement-relevant field (per-task shape, deadline and quality) probe
  identically and tie identically under every tie-break policy, so only
  the first is probed (synthetic sweeps hit this hard: the two fig-4
  shapes coincide at ``alpha = 1``);
* **failure propagation** — when a chain fails (area reject or first-fit
  failure), any *pointwise at-least-as-hard* chain (same length; each task
  needs at least as many processors, for at least as long, by a deadline
  at least as early) is skipped: per-task, any availability run feeding a
  harder task feeds the easier one at no later a start, so by induction
  along the chain the easier chain's per-task starts lower-bound the
  harder one's, and the easier chain's failure certifies the harder one's;
* **incumbent finish capping** — once a candidate with finish ``f`` is
  known, later chains are probed with every task deadline capped at
  ``f + TIME_EPS``.  First fit returns the same placement whenever the
  chain's finish is within the cap (the found start does not depend on
  the deadline; the deadline only accepts/rejects it), and a capped-out
  chain has finish strictly beyond any tie-break window, so the selected
  candidate is unchanged while doomed walks stop at the first run past
  the cap.

Failure propagation and finish capping rely on properties of the rigid
first-fit search (monotonicity, deadline-independent starts); schedulers
with different placement searches (malleable widest-first, best fit)
switch them off via :attr:`GreedyScheduler.SUPPORTS_DOMINANCE` /
:attr:`GreedyScheduler.SUPPORTS_FINISH_CAP`.  Duplicate collapse only
needs deterministic placement and applies everywhere.
"""

from __future__ import annotations

import math
import random
from typing import Container, Sequence

from repro.core.first_fit import earliest_fit
from repro.core.placement import ChainPlacement, Placement
from repro.core.policies import TieBreakPolicy, select_candidate
from repro.core.resources import TIME_EPS
from repro.core.schedule import Schedule
from repro.model.chain import TaskChain
from repro.model.job import Job

__all__ = ["GreedyScheduler"]


class GreedyScheduler:
    """First-fit greedy scheduler over a shared :class:`Schedule`.

    Parameters
    ----------
    schedule:
        The committed schedule this scheduler reads and (on
        :meth:`schedule_job`) writes.
    policy:
        Tie-break rule among equally-early-finishing configurations.
    rng:
        Only used by :attr:`TieBreakPolicy.RANDOM`.
    prune:
        Enable the decision-identical candidate prunes described in the
        module docs (default True).  ``False`` is the oracle mode: every
        configuration is probed in full.
    """

    #: Whether this scheduler's placement search satisfies the monotonicity
    #: property behind failure propagation (an easier chain failing
    #: certifies that a pointwise-harder one fails).  True for rigid first
    #: fit; subclasses with other searches must opt out.
    SUPPORTS_DOMINANCE = True
    #: Whether this scheduler's per-task search returns a start that does
    #: not depend on the deadline (the deadline only accepts/rejects it),
    #: which is what makes incumbent finish capping exact.  True for rigid
    #: first fit; subclasses with other searches must opt out.
    SUPPORTS_FINISH_CAP = True

    def __init__(
        self,
        schedule: Schedule,
        policy: TieBreakPolicy = TieBreakPolicy.PAPER,
        rng: random.Random | None = None,
        prune: bool = True,
    ) -> None:
        self.schedule = schedule
        self.policy = policy
        self.rng = rng
        self.prune = prune

    # ------------------------------------------------------------------

    def _quick_reject(self, chain: TaskChain) -> bool:
        """Cheap necessary-condition check before running first fit.

        Overridden by the malleable scheduler, whose reshaping invalidates
        the rigid width/duration bounds used here.
        """
        return chain.is_trivially_infeasible(self.schedule.capacity)

    def _area_reject(self, chain: TaskChain, release: float) -> bool:
        """O(log S) free-area necessary condition against the live profile.

        A chain's tasks occupy pairwise-disjoint time intervals inside
        ``[release, release + final_deadline]`` (every task finishes before
        the final task's deadline), so the window's free processor-time must
        cover the chain's total area for *any* placement — rigid or
        malleable (reshaping conserves area).  Runs off the profile's
        cached prefix sums, so it prunes doomed first-fit walks for the
        cost of two bisections.  The small absolute slack keeps a perfectly
        tight feasible chain from being rejected by float accumulation.
        """
        profile = self.schedule.profile
        t0 = max(release, profile.origin)
        t1 = release + chain.final_deadline
        if math.isinf(t1):
            return False
        if t1 <= t0:
            return True
        return profile.free_area(t0, t1) < chain.total_area - 1e-6

    def place_chain(
        self,
        chain: TaskChain,
        release: float,
        job_id: int = -1,
        chain_index: int = 0,
        finish_cap: float = math.inf,
    ) -> ChainPlacement | None:
        """Tentatively place every task of ``chain`` by first fit.

        Does **not** modify the schedule.  Returns ``None`` as soon as any
        task cannot meet its deadline.  ``finish_cap`` additionally bounds
        every task's absolute deadline (task finishes never decrease along
        a chain, so capping each task caps the chain's finish): the same
        placement comes back when its finish is within the cap, ``None``
        otherwise — see the incumbent-capping notes in the module docs.
        """
        profile = self.schedule.profile
        earliest = max(release, profile.origin)
        placements: list[Placement] = []
        for task in chain.tasks:
            deadline = release + task.deadline
            if finish_cap < deadline:
                deadline = finish_cap
            start = earliest_fit(
                profile,
                task.processors,
                task.duration,
                earliest,
                deadline,
            )
            if start is None:
                return None
            placements.append(Placement.rigid(task, start))
            earliest = start + task.duration
        return ChainPlacement(
            job_id=job_id,
            chain_index=chain_index,
            chain=chain,
            placements=tuple(placements),
            release=release,
        )

    # ------------------------------------------------------------------
    # Candidate enumeration and pruning
    # ------------------------------------------------------------------

    def _shape_key(self, chain: TaskChain) -> tuple:
        """Placement-relevant identity of a chain under this scheduler.

        Two chains with equal keys produce identical probe outcomes and
        are indistinguishable to every tie-break rule and to the quality
        objective, so the second never needs probing.  Quality is part of
        the key: collapsing equal-shape chains of *different* quality
        could flip a max-quality choice.
        """
        return tuple(
            (t.processors, t.duration, t.deadline, t.quality) for t in chain.tasks
        )

    @staticmethod
    def _harder_than_failed(chain: TaskChain, failed: list[TaskChain]) -> bool:
        """True when ``chain`` is pointwise at least as hard as a failed one.

        Pointwise hardness (see module docs) certifies failure under both
        the area reject (at least as much area into a window no larger)
        and the rigid first-fit search, including capped probes (the
        harder chain is probed under a cap no looser than the failed
        one's — the cap only tightens as enumeration proceeds).
        """
        n = len(chain.tasks)
        for other in failed:
            if len(other.tasks) != n:
                continue
            if all(
                c.processors >= o.processors
                and c.duration >= o.duration
                and c.deadline <= o.deadline
                for c, o in zip(chain.tasks, other.tasks)
            ):
                return True
        return False

    def _prober(
        self,
        job: Job,
        prune: bool,
        finish_cap: bool,
        skip: "Container[int]" = (),
    ):
        """Stateful per-chain probe applying the enabled prunes.

        Returns a ``probe(idx) -> ChainPlacement | None`` closure that
        carries the prune state (seen shapes, failed chains, incumbent
        finish cap) across calls.  The order of calls is the probe order
        the prunes reason about, so callers that reorder (the max-quality
        arbitrator path) get exactly the prunes that are sound for their
        order.

        ``skip`` holds chain indices certified unschedulable by an
        *external* conservative check (the batched admission pre-screen,
        :func:`repro.core.kernels.batch.prescreen_skips`); they return
        ``None`` without being probed.  Decision-neutral by construction:
        every skipped chain would have been rejected here too, and the
        check runs before any prune state is touched, so the seen-shape /
        dominance / finish-cap trajectories of the surviving chains are
        unchanged (a skipped chain's duplicates and pointwise-harder
        relatives are independently condemned by the same area argument).
        """
        perf = self.schedule.perf
        release = job.release
        # Duplicate collapse changes the size of the tie set RANDOM draws
        # from (two identical candidates vs one), which would shift the RNG
        # stream — off under that (ablation-only) policy.
        use_dup = prune and self.policy is not TieBreakPolicy.RANDOM
        use_dom = prune and self.SUPPORTS_DOMINANCE
        use_cap = prune and finish_cap and self.SUPPORTS_FINISH_CAP
        seen: set[tuple] = set()
        failed: list[TaskChain] = []
        state = {"cap": math.inf}

        def probe(idx: int) -> ChainPlacement | None:
            if idx in skip:
                perf.chains_prescreen_skipped += 1
                return None
            chain = job.chains[idx]
            if use_dup:
                key = self._shape_key(chain)
                if key in seen:
                    # Duplicate of an earlier probe: same outcome, and if
                    # that outcome was a placement, the earlier copy wins
                    # every deterministic tie-break (duplicates share
                    # quality, so ties resolve to the lower index).
                    perf.chains_pruned_dominated += 1
                    return None
                seen.add(key)
            if use_dom and failed and self._harder_than_failed(chain, failed):
                perf.chains_pruned_dominated += 1
                return None
            perf.chains_probed += 1
            if self._quick_reject(chain):
                perf.chains_quick_rejected += 1
                return None
            if self._area_reject(chain, release):
                perf.chains_area_rejected += 1
                if use_dom:
                    failed.append(chain)
                return None
            cap = state["cap"]
            if cap is not math.inf:
                cp = self.place_chain(chain, release, job.job_id, idx, finish_cap=cap)
            else:
                cp = self.place_chain(chain, release, job.job_id, idx)
            if cp is None:
                if use_dom:
                    failed.append(chain)
                return None
            if use_cap:
                new_cap = cp.finish + TIME_EPS
                if new_cap < cap:
                    state["cap"] = new_cap
            return cp

        return probe

    def _enumerate(
        self,
        job: Job,
        chain_indices: Sequence[int],
        prune: bool,
        finish_cap: bool,
        skip: "Container[int]" = (),
    ) -> list[ChainPlacement]:
        """Probe the given configurations in order, applying enabled prunes.

        Returns the surviving tentative placements in probe order.  With
        ``prune=False`` this is the plain exhaustive loop (the oracle the
        decision-identity tests compare against).
        """
        probe = self._prober(job, prune, finish_cap, skip)
        out: list[ChainPlacement] = []
        for idx in chain_indices:
            cp = probe(idx)
            if cp is not None:
                out.append(cp)
        return out

    def candidates(self, job: Job) -> list[ChainPlacement]:
        """Tentative placements for every schedulable configuration of ``job``.

        Always a *full* enumeration (no pruning): callers that inspect the
        candidate set itself — conservative admission, tests, tracing —
        rely on every schedulable configuration being present.  The pruned
        path is :meth:`choose`.
        """
        return self._enumerate(job, range(len(job.chains)), False, False)

    def choose(
        self, job: Job, skip: "Container[int]" = ()
    ) -> ChainPlacement | None:
        """Best schedulable configuration of ``job`` (not committed).

        ``skip`` — chain indices pre-certified unschedulable (see
        :meth:`_prober`) — never alters the decision, only the work.
        """
        cands = self._enumerate(
            job, range(len(job.chains)), self.prune, True, skip
        )
        if not cands:
            return None
        return select_candidate(self.schedule, cands, self.policy, self.rng)

    def schedule_job(
        self, job: Job, skip: "Container[int]" = ()
    ) -> ChainPlacement | None:
        """Choose and *commit* the best configuration; ``None`` if rejected."""
        chosen = self.choose(job, skip)
        if chosen is not None:
            self.schedule.commit(chosen)
        return chosen

    # ------------------------------------------------------------------

    def choose_among(
        self, job: Job, chain_indices: Sequence[int]
    ) -> ChainPlacement | None:
        """Like :meth:`choose` restricted to a subset of configurations.

        Used by baseline experiments that strip tunability from a job
        without rebuilding it.
        """
        cands = self._enumerate(job, chain_indices, self.prune, True)
        if not cands:
            return None
        return select_candidate(self.schedule, cands, self.policy, self.rng)
