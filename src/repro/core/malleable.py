"""Malleable-task scheduling (Section 5.4).

A malleable task "can use any number of processors up to its degree of
concurrency" with work-conserving duration scaling (systems like Calypso
"support malleable tasks: the programmer specifies only the logical
concurrency of the application, which is flexibly mapped to available
processors at runtime").

"When allocating resources to a malleable task, our heuristic tries various
configurations of the task, starting from the highest number of processors
the task can use."  The sentence leaves the stopping rule open; we implement
both defensible readings as :class:`MalleableStrategy`:

* ``WIDEST_FIRST_FEASIBLE`` (default, the literal reading): scan processor
  counts from the degree of concurrency downward and take the *first* count
  whose first-fit placement meets the task deadline.
* ``EARLIEST_FINISH``: scan all counts, take the placement finishing
  earliest; ties favour the wider configuration.

``benchmarks/bench_ablation_malleable.py`` compares the two.
"""

from __future__ import annotations

import random
from enum import Enum

from repro.core.first_fit import earliest_fit
from repro.core.greedy import GreedyScheduler
from repro.core.placement import ChainPlacement, Placement
from repro.core.policies import TieBreakPolicy
from repro.core.resources import TIME_EPS
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError
from repro.model.chain import TaskChain
from repro.model.task import TaskSpec

__all__ = ["MalleableStrategy", "MalleableScheduler"]


class MalleableStrategy(Enum):
    """How a malleable task picks its processor count (see module docs)."""

    WIDEST_FIRST_FEASIBLE = "widest-first-feasible"
    EARLIEST_FINISH = "earliest-finish"


class MalleableScheduler(GreedyScheduler):
    """Greedy scheduler that reshapes tasks to available processors.

    Inherits the tunable-configuration choice machinery from
    :class:`~repro.core.greedy.GreedyScheduler`; only per-task placement
    changes.

    Parameters
    ----------
    min_processors:
        Lower bound on the processor counts tried (default 1).  Raising it
        models applications whose per-processor efficiency collapses below a
        minimum width.
    """

    # Widest-first reshaping is not monotone in task hardness (a nominally
    # harder task may reshape into a *different* width that happens to fit),
    # and the chosen width depends on the deadline passed in — so neither
    # failure propagation nor incumbent finish capping is exact here.  Only
    # duplicate collapse (keyed on the malleable shape below) applies.
    SUPPORTS_DOMINANCE = False
    SUPPORTS_FINISH_CAP = False

    def __init__(
        self,
        schedule: Schedule,
        policy: TieBreakPolicy = TieBreakPolicy.PAPER,
        strategy: MalleableStrategy = MalleableStrategy.WIDEST_FIRST_FEASIBLE,
        min_processors: int = 1,
        rng: random.Random | None = None,
        prune: bool = True,
    ) -> None:
        super().__init__(schedule, policy, rng, prune=prune)
        if min_processors < 1:
            raise ConfigurationError(
                f"min_processors must be >= 1, got {min_processors}"
            )
        self.strategy = strategy
        self.min_processors = min_processors

    # ------------------------------------------------------------------

    def _quick_reject(self, chain: TaskChain) -> bool:
        """Necessary-condition check using the *fastest* reshape of each task.

        The rigid check of the base class is wrong here: a task wider than
        the machine can shrink, and a task can beat its rigid duration by
        widening.  This uses each task's minimum achievable duration and the
        plain per-task deadlines (no successor tightening, which would also
        assume rigid durations).
        """
        cap = self.schedule.capacity
        elapsed = 0.0
        for task in chain.tasks:
            width_cap = min(task.max_concurrency, cap)
            if width_cap < self.min_processors:
                return True
            elapsed += task.area / width_cap
            if elapsed > task.deadline + TIME_EPS:
                return True
        return False

    def _shape_key(self, chain: TaskChain) -> tuple:
        """Malleable placement identity: area + width bound, not rigid shape.

        Reshaping makes two tasks interchangeable exactly when they have the
        same work area, the same concurrency ceiling and the same deadline
        (quality rides along for the same reason as in the rigid key).
        """
        return tuple(
            (t.area, t.max_concurrency, t.deadline, t.quality) for t in chain.tasks
        )

    def _place_task(
        self,
        task: TaskSpec,
        earliest: float,
        deadline: float,
        min_width: int | None = None,
        max_width: int | None = None,
    ) -> Placement | None:
        """Place one malleable task per the configured strategy.

        ``min_width``/``max_width`` optionally narrow the probed band within
        ``[min_processors, min(max_concurrency, capacity)]`` — the
        mid-execution resize path uses them to force a strictly wider
        (grow) or strictly narrower (shrink) restart of an in-flight task.

        Under ``EARLIEST_FINISH``, "ties favour the wider configuration" is
        honoured against the *true minimum* finish: every feasible width is
        collected first, then the widest placement finishing within
        ``TIME_EPS`` of the earliest finish wins.  (Comparing each candidate
        only against the running best lets near-ties drift: with ends
        ``E``, ``E-0.6eps``, ``E-1.2eps`` from wide to narrow, the middle
        width is discarded against ``E`` yet ties the narrow winner.)
        """
        profile = self.schedule.profile
        width_cap = min(task.max_concurrency, profile.capacity)
        if max_width is not None:
            width_cap = min(width_cap, max_width)
        width_floor = self.min_processors
        if min_width is not None:
            width_floor = max(width_floor, min_width)
        if width_cap < width_floor:
            return None
        area = task.area
        feasible: list[Placement] = []
        perf = self.schedule.perf
        for procs in range(width_cap, width_floor - 1, -1):
            duration = area / procs
            perf.reshape_probes += 1
            start = earliest_fit(profile, procs, duration, earliest, deadline)
            if start is None:
                continue
            placement = Placement(task, start, procs, duration)
            if self.strategy is MalleableStrategy.WIDEST_FIRST_FEASIBLE:
                return placement
            feasible.append(placement)
        if not feasible:
            return None
        min_end = min(pl.end for pl in feasible)
        # Scan order is widest-first, so the first within-eps hit is the
        # widest member of the tie set.
        for placement in feasible:
            if placement.end <= min_end + TIME_EPS:
                return placement
        return None  # pragma: no cover - min_end is attained above

    def resize_placement(
        self,
        chain: TaskChain,
        release: float,
        earliest: float,
        first_min_width: int | None = None,
        first_max_width: int | None = None,
        job_id: int = -1,
        chain_index: int = 0,
    ) -> ChainPlacement | None:
        """Re-place a running job's remainder with a reshaped leading task.

        The mid-execution malleability primitive: ``chain`` is the rebased
        remainder of a running chain whose leading task is in flight and is
        being restarted (Calypso-style idempotent re-execution) at a new
        width.  ``earliest`` is the restart instant — the resize time plus
        the charged reconfiguration cost — and ``first_min_width`` /
        ``first_max_width`` bound the leading task's new width (strictly
        wider than before for a grow, strictly narrower for a shrink).
        Downstream tasks reshape freely per the configured strategy.
        Deadlines are checked against ``release`` exactly as in
        :meth:`place_chain`; returns ``None`` when no feasible reshape
        meets them.
        """
        profile = self.schedule.profile
        cursor = max(earliest, release, profile.origin)
        placements: list[Placement] = []
        for index, task in enumerate(chain.tasks):
            pl = self._place_task(
                task,
                cursor,
                release + task.deadline,
                min_width=first_min_width if index == 0 else None,
                max_width=first_max_width if index == 0 else None,
            )
            if pl is None:
                return None
            placements.append(pl)
            cursor = pl.end
        return ChainPlacement(
            job_id=job_id,
            chain_index=chain_index,
            chain=chain,
            placements=tuple(placements),
            release=release,
        )

    def place_chain(
        self,
        chain: TaskChain,
        release: float,
        job_id: int = -1,
        chain_index: int = 0,
    ) -> ChainPlacement | None:
        """Tentatively place ``chain``, reshaping each task as allowed."""
        profile = self.schedule.profile
        earliest = max(release, profile.origin)
        placements: list[Placement] = []
        for task in chain.tasks:
            pl = self._place_task(task, earliest, release + task.deadline)
            if pl is None:
                return None
            placements.append(pl)
            earliest = pl.end
        return ChainPlacement(
            job_id=job_id,
            chain_index=chain_index,
            chain=chain,
            placements=tuple(placements),
            release=release,
        )
