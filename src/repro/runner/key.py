"""Canonical serialization and content hashing of experiment work units.

A *work unit* is the atom of experiment execution: one
:class:`~repro.workloads.sweep.SweepConfig` simulated under one task
system.  Its **unit key** is the SHA-256 digest of a canonical JSON
encoding of every field that influences the simulation outcome (the
synthetic-job parameters, machine size, arrival interval, job count,
seed, task model, strategy/policy enums and the verify switch), plus the
system name and a format version.  Two units collide exactly when they
are guaranteed to produce identical :class:`~repro.sim.metrics.RunMetrics`,
which is what makes the key safe to use as a content address for the
result cache and as a dedup handle inside one batch.

Canonical form: JSON with sorted keys, no whitespace, ``allow_nan=False``
(a NaN in a config is a bug, not a cache key).  Python's ``repr``-based
float encoding is shortest-round-trip, so equal doubles always encode to
the same text.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping

from repro.core.malleable import MalleableStrategy
from repro.core.policies import TieBreakPolicy
from repro.errors import ConfigurationError
from repro.resilience.events import FaultModel
from repro.resilience.reconfig import ResizePolicy
from repro.workloads.sweep import SweepConfig
from repro.workloads.synthetic import SyntheticParams

__all__ = [
    "KEY_VERSION",
    "canonical_json",
    "sweep_config_to_dict",
    "sweep_config_from_dict",
    "unit_key",
]

#: Bump when the meaning of a serialized config (or the simulation it
#: feeds) changes incompatibly; old cache entries then miss instead of
#: resurfacing stale results.  v2: SweepConfig gained the ``faults``
#: field and RunMetrics the ``resilience`` block.  v3: mid-execution
#: malleability — SweepConfig gained ``resize_policy``/``reconfig_cost``/
#: ``reconfig_cost_per_proc``, the resilience block gained the resize
#: ledger, and the renegotiation driver's overrun bookkeeping fixes
#: changed perturbed-run outcomes.  v4: the scan ``backend`` (including
#: the new ``"adaptive"`` choice) and the ``prune`` switch joined the
#: serialized config.  Decisions are backend-identical, but RunMetrics
#: now carries backend-dependent perf/autotune telemetry, so configs
#: differing only in backend must not share a cache slot.
KEY_VERSION = 4


def canonical_json(obj: object) -> str:
    """Deterministic JSON text: sorted keys, compact separators, no NaN."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def _params_to_dict(params: SyntheticParams) -> dict[str, object]:
    return {
        "x": params.x,
        "t": params.t,
        "alpha": params.alpha,
        "laxity": params.laxity,
        "concurrency_factor": params.concurrency_factor,
    }


def _params_from_dict(data: Mapping[str, object]) -> SyntheticParams:
    return SyntheticParams(
        x=int(data["x"]),  # type: ignore[arg-type]
        t=float(data["t"]),  # type: ignore[arg-type]
        alpha=float(data["alpha"]),  # type: ignore[arg-type]
        laxity=float(data["laxity"]),  # type: ignore[arg-type]
        concurrency_factor=float(data["concurrency_factor"]),  # type: ignore[arg-type]
    )


def _faults_to_dict(model: FaultModel | None) -> dict[str, object] | None:
    if model is None:
        return None
    return {
        "fault_rate": model.fault_rate,
        "fault_severity": model.fault_severity,
        "mean_repair": model.mean_repair,
        "overrun_prob": model.overrun_prob,
        "overrun_excess": model.overrun_excess,
        "burst_rate": model.burst_rate,
        "burst_size": model.burst_size,
    }


def _faults_from_dict(data: Mapping[str, object] | None) -> FaultModel | None:
    if data is None:
        return None
    return FaultModel(
        fault_rate=float(data["fault_rate"]),  # type: ignore[arg-type]
        fault_severity=float(data["fault_severity"]),  # type: ignore[arg-type]
        mean_repair=float(data["mean_repair"]),  # type: ignore[arg-type]
        overrun_prob=float(data["overrun_prob"]),  # type: ignore[arg-type]
        overrun_excess=float(data["overrun_excess"]),  # type: ignore[arg-type]
        burst_rate=float(data["burst_rate"]),  # type: ignore[arg-type]
        burst_size=int(data["burst_size"]),  # type: ignore[arg-type]
    )


def sweep_config_to_dict(config: SweepConfig) -> dict[str, object]:
    """JSON-able encoding of every outcome-relevant config field."""
    return {
        "params": _params_to_dict(config.params),
        "processors": config.processors,
        "interval": config.interval,
        "n_jobs": config.n_jobs,
        "seed": config.seed,
        "malleable": config.malleable,
        "strategy": config.strategy.value,
        "policy": config.policy.value,
        "verify": config.verify,
        "faults": _faults_to_dict(config.faults),
        "resize_policy": config.resize_policy.value,
        "reconfig_cost": config.reconfig_cost,
        "reconfig_cost_per_proc": config.reconfig_cost_per_proc,
        "backend": config.backend,
        "prune": config.prune,
    }


def sweep_config_from_dict(data: Mapping[str, object]) -> SweepConfig:
    """Reconstruct a config serialized by :func:`sweep_config_to_dict`."""
    try:
        return SweepConfig(
            params=_params_from_dict(data["params"]),  # type: ignore[arg-type]
            processors=int(data["processors"]),  # type: ignore[arg-type]
            interval=float(data["interval"]),  # type: ignore[arg-type]
            n_jobs=int(data["n_jobs"]),  # type: ignore[arg-type]
            seed=int(data["seed"]),  # type: ignore[arg-type]
            malleable=bool(data["malleable"]),
            strategy=MalleableStrategy(data["strategy"]),
            policy=TieBreakPolicy(data["policy"]),
            verify=bool(data["verify"]),
            faults=_faults_from_dict(data.get("faults")),  # type: ignore[arg-type]
            # Absent in pre-v3 payloads: resizing off, zero cost.
            resize_policy=ResizePolicy(data.get("resize_policy", "off")),
            reconfig_cost=float(data.get("reconfig_cost", 0.0)),  # type: ignore[arg-type]
            reconfig_cost_per_proc=float(
                data.get("reconfig_cost_per_proc", 0.0)  # type: ignore[arg-type]
            ),
            # Absent in pre-v4 payloads: auto backend, pruning on.
            backend=str(data.get("backend", "auto")),
            prune=bool(data.get("prune", True)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed sweep-config payload: {exc}") from exc


def unit_key(config: SweepConfig, system: str) -> str:
    """SHA-256 content address of one (config, system) work unit."""
    payload = {
        "version": KEY_VERSION,
        "system": system,
        "config": sweep_config_to_dict(config),
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
