"""Subprocess entry points for the parallel experiment runner.

Everything here must be importable by name in a worker process (top-level
functions only — ``ProcessPoolExecutor`` pickles the function reference,
not its code).  A chunk is a list of unit payloads; the worker returns
one result dict per payload carrying the serialized metrics and the
unit's own wall-clock execution time, so the parent can record true
per-unit latency percentiles regardless of chunking.
"""

from __future__ import annotations

import os
import time
from typing import Mapping, Sequence

from repro.runner.key import sweep_config_from_dict
from repro.sim.persistence import metrics_to_dict
from repro.workloads.sweep import run_point

__all__ = ["run_unit_chunk"]


def run_unit_chunk(payloads: Sequence[Mapping[str, object]]) -> list[dict[str, object]]:
    """Execute one chunk of work units in the current process."""
    out: list[dict[str, object]] = []
    for payload in payloads:
        config = sweep_config_from_dict(payload["config"])  # type: ignore[arg-type]
        t0 = time.perf_counter()
        metrics = run_point(config, str(payload["system"]))
        out.append(
            {
                "key": payload["key"],
                "metrics": metrics_to_dict(metrics),
                "seconds": time.perf_counter() - t0,
            }
        )
    return out


def _crashing_chunk(payloads: Sequence[Mapping[str, object]]) -> list[dict[str, object]]:
    """Test hook: die like a segfaulting worker (breaks the pool)."""
    os._exit(17)


def _slow_chunk(payloads: Sequence[Mapping[str, object]]) -> list[dict[str, object]]:
    """Test hook: overrun any reasonable per-chunk timeout."""
    time.sleep(5.0)
    return run_unit_chunk(payloads)


def _interrupting_chunk(
    payloads: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    """Test hook: Ctrl-C arrives while a marked chunk is executing.

    Chunks containing a ``shape2`` unit raise ``KeyboardInterrupt`` (the
    executor pickles it back to the parent exactly like a real interrupt
    delivered to a worker); every other chunk runs normally.
    """
    if any(p["system"] == "shape2" for p in payloads):
        raise KeyboardInterrupt
    return run_unit_chunk(payloads)
