"""On-disk content-addressed cache of per-unit run metrics.

Layout: ``<root>/<key[:2]>/<key>.json`` — one JSON file per work unit,
sharded by the first hash byte so a large cache never puts tens of
thousands of entries in one directory.  Each file stores the unit key it
was written under, a schema version, a small provenance block (the
serialized config and system name, for human inspection and debugging)
and the metrics payload produced by
:func:`repro.sim.persistence.metrics_to_dict`.

Robustness rules:

* writes are atomic (temp file + ``os.replace``) so a killed run never
  leaves a half-written entry;
* any unreadable, unparsable, version-mismatched or key-mismatched entry
  is treated as a miss (and counted under ``cache_errors``) — a corrupt
  cache degrades to recomputation, never to wrong results.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.sim.metrics import RunMetrics
from repro.sim.persistence import metrics_from_dict, metrics_to_dict

__all__ = ["CACHE_VERSION", "ResultCache"]

CACHE_VERSION = 1


class ResultCache:
    """Content-addressed store: unit key → :class:`RunMetrics`.

    Counters (``hits``, ``misses``, ``stores``, ``errors``) accumulate
    over the cache object's lifetime and surface in runner perf
    snapshots and the benchmark report.
    """

    __slots__ = ("root", "hits", "misses", "stores", "errors")

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> RunMetrics | None:
        """Look up one unit; ``None`` (a miss) on absence or corruption."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("cache_version") != CACHE_VERSION:
                raise ValueError(f"cache version {payload.get('cache_version')!r}")
            if payload.get("key") != key:
                raise ValueError("stored key does not match file address")
            metrics = metrics_from_dict(payload["metrics"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupt/foreign entry: recompute rather than trust it.
            self.errors += 1
            self.misses += 1
            return None
        self.hits += 1
        return metrics

    def put(self, key: str, metrics: RunMetrics, meta: dict[str, object] | None = None) -> None:
        """Store one unit's metrics atomically under its content address."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload: dict[str, object] = {
            "cache_version": CACHE_VERSION,
            "key": key,
            "meta": meta or {},
            "metrics": metrics_to_dict(metrics),
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, path)
        self.stores += 1

    def stats(self) -> dict[str, int]:
        """Flat counter snapshot for perf reports."""
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_stores": self.stores,
            "cache_errors": self.errors,
        }
