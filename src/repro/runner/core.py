"""The parallel experiment runner: dedup → cache → fan-out → merge.

:class:`ExperimentRunner` executes batches of work units (one
:class:`~repro.workloads.sweep.SweepConfig` × system each) with three
layers of savings, all of them invisible in the results:

1. **Dedup** — units with equal content hashes inside one batch are
   simulated once (overlapping sweeps cross at their default point, and
   e.g. the Figure-6a interval grid is a subset of Figure 5(a)'s).
2. **Cache** — an optional on-disk :class:`~repro.runner.cache.ResultCache`
   memoizes every unit across runs and across experiments.
3. **Fan-out** — cache misses are dispatched to a
   :class:`~concurrent.futures.ProcessPoolExecutor` in contiguous chunks
   (~4 chunks per worker for load balancing).  Chunks that time out or
   lose their worker are retried on a fresh pool up to
   :attr:`RunnerConfig.retries` times, then fall back to in-process
   execution, so a dying pool degrades to the serial path instead of
   failing the experiment.

Determinism: results are merged **by unit key in submission order**,
never completion order, and common-random-numbers pairing is carried by
the seed inside each unit's config — so parallel, serial, deduped and
cached executions of the same batch produce identical metrics (floats
survive the JSON hop exactly: Python's float repr is shortest
round-trip).  Genuine simulation errors are *not* swallowed by the
fallback: an in-process re-run re-raises them synchronously.

Interruption: every unit's result is written to the cache the moment it
is retrieved — not batched at the end — so a ``KeyboardInterrupt``
mid-batch (Ctrl-C, or a dying CI job) loses only in-flight work.  The
interrupt cancels outstanding pool futures, is counted in the perf
snapshot and re-raised cleanly; a re-run resumes from the flushed
entries as cache hits.
"""

from __future__ import annotations

import math
import random
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.perf import PerfRecorder
from repro.runner.cache import ResultCache
from repro.runner.key import sweep_config_to_dict, unit_key
from repro.runner.worker import run_unit_chunk
from repro.sim.metrics import RunMetrics
from repro.sim.persistence import metrics_from_dict
from repro.workloads.sweep import SweepConfig, run_point

__all__ = ["RunnerConfig", "ExperimentRunner"]

#: Target chunks per worker: small enough to amortize dispatch, large
#: enough that an unlucky long chunk cannot serialize the whole batch.
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True, slots=True)
class RunnerConfig:
    """Execution policy for one :class:`ExperimentRunner`.

    ``jobs <= 1`` means pure in-process execution (no pool is ever
    created); ``cache_dir=None`` disables memoization; ``timeout`` is
    per *chunk*, in wall-clock seconds (``None`` = wait forever);
    ``retries`` counts fresh-pool retry rounds after a chunk failure
    before falling back in-process.

    Retry rounds back off exponentially (``backoff_base * 2**(round-1)``,
    capped at ``backoff_cap``) with seeded jitter (up to
    ``backoff_jitter`` of the delay, drawn from ``Random(backoff_seed)``
    so runs are reproducible) — re-submitting immediately into the same
    transient condition (OOM-killed workers, a saturated machine) just
    burns the retry budget.  Total sleep is surfaced as
    ``retry_backoff_total`` in :meth:`ExperimentRunner.perf_snapshot`.
    ``backoff_base=0`` disables the sleep entirely.

    ``audit=True`` adds an independent post-check: after a batch merges,
    every unique unit is re-run in-process with placements retained, its
    final schedule is audited by :class:`repro.verify.ScheduleAuditor`,
    and the re-run's metrics are compared against what the batch reported
    (catching a lying cache entry, a diverging worker, or a scheduler bug
    the fast path missed).  Any discrepancy raises
    :class:`~repro.errors.VerificationError`.  Roughly doubles batch
    cost — meant for CI gates and result-publication runs, not sweeps'
    inner loops.
    """

    jobs: int = 1
    cache_dir: str | Path | None = None
    chunk_size: int | None = None
    timeout: float | None = None
    retries: int = 1
    audit: bool = False
    backoff_base: float = 0.25
    backoff_cap: float = 4.0
    backoff_jitter: float = 0.5
    backoff_seed: int = 0


class ExperimentRunner:
    """Executes work-unit batches; owns the cache and perf counters."""

    def __init__(
        self,
        config: RunnerConfig | None = None,
        *,
        _chunk_fn: Callable[..., list[dict[str, object]]] = run_unit_chunk,
    ) -> None:
        self.config = config or RunnerConfig()
        self.cache = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )
        self.perf = PerfRecorder()
        self._backoff_rng = random.Random(self.config.backoff_seed)
        # Pool dispatch target; in-process fallback always runs the real
        # simulation so fault-injecting stubs (tests) still yield results.
        self._chunk_fn = _chunk_fn

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run_units(
        self, units: Sequence[tuple[SweepConfig, str]]
    ) -> list[RunMetrics]:
        """Execute every unit; results align 1:1 with ``units`` order."""
        units = list(units)
        self.perf.count("units_total", len(units))
        keys = [unit_key(config, system) for config, system in units]

        # Dedup: first occurrence wins; duplicates reuse its result.
        first_of: dict[str, int] = {}
        for i, key in enumerate(keys):
            first_of.setdefault(key, i)
        unique = list(first_of)
        self.perf.count("dedup_hits", len(units) - len(unique))

        results: dict[str, RunMetrics] = {}
        pending: list[str] = []
        if self.cache is not None:
            for key in unique:
                cached = self.cache.get(key)
                if cached is not None:
                    results[key] = cached
                else:
                    pending.append(key)
            self.perf.count("cache_hits", len(unique) - len(pending))
            self.perf.count("cache_misses", len(pending))
        else:
            pending = unique

        def store(key: str, metrics: RunMetrics) -> None:
            # Flush each result the moment it exists, so an interrupt
            # mid-batch preserves everything already computed.
            results[key] = metrics
            if self.cache is not None:
                config, system = units[first_of[key]]
                self.cache.put(
                    key,
                    metrics,
                    meta={
                        "system": system,
                        "config": sweep_config_to_dict(config),
                    },
                )

        try:
            self._execute(
                [(key, *units[first_of[key]]) for key in pending], store
            )
        except KeyboardInterrupt:
            self.perf.count("interrupted_batches")
            raise

        if self.config.audit:
            # Lazy: repro.verify is opt-in tooling, not a runner dependency.
            from repro.verify.checks import verify_unit

            for key in unique:
                config, system = units[first_of[key]]
                verify_unit(config, system, results[key])
                self.perf.count("units_audited")

        return [results[key] for key in keys]

    def run_unit(self, config: SweepConfig, system: str) -> RunMetrics:
        """Single-unit convenience wrapper around :meth:`run_units`."""
        return self.run_units([(config, system)])[0]

    def perf_snapshot(self) -> dict[str, float | int]:
        """Runner counters + per-unit latency percentiles + cache stats."""
        out = self.perf.snapshot()
        if self.cache is not None:
            out.update(self.cache.stats())
        return out

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute(
        self,
        work: list[tuple[str, SweepConfig, str]],
        store: Callable[[str, RunMetrics], None],
    ) -> None:
        """Run every (key, config, system) unit, pooled when configured.

        ``store`` is invoked once per completed unit, as soon as its
        metrics are in hand — pooled results as their chunk's future
        resolves, inline results after each simulation — so the caller's
        cache reflects all completed work even if a later unit raises.
        """
        if not work:
            return

        def store_chunk(chunk_results: list[dict[str, object]]) -> None:
            for item in chunk_results:
                store(str(item["key"]), metrics_from_dict(item["metrics"]))  # type: ignore[arg-type]
                self.perf.observe("unit", float(item["seconds"]))  # type: ignore[arg-type]
                self.perf.count("units_executed_pool")

        if self.config.jobs > 1 and len(work) > 1:
            chunks = self._chunked(work)
            done = self._run_chunks_pooled(chunks, store_chunk)
            leftover = [
                unit
                for index, chunk in enumerate(chunks)
                if index not in done
                for unit in chunk_units(chunk)
            ]
            if leftover:
                self.perf.count("pool_fallback_units", len(leftover))
        else:
            leftover = work
        for key, config, system in leftover:
            t0 = time.perf_counter()
            metrics = run_point(config, system)
            self.perf.observe("unit", time.perf_counter() - t0)
            self.perf.count("units_executed_inline")
            store(key, metrics)

    def _chunked(
        self, work: list[tuple[str, SweepConfig, str]]
    ) -> list[list[dict[str, object]]]:
        """Split units into contiguous payload chunks for dispatch."""
        size = self.config.chunk_size or max(
            1, math.ceil(len(work) / (self.config.jobs * _CHUNKS_PER_WORKER))
        )
        payloads = [
            {
                "key": key,
                "config": sweep_config_to_dict(config),
                "system": system,
                "_unit": (key, config, system),
            }
            for key, config, system in work
        ]
        return [payloads[i : i + size] for i in range(0, len(payloads), size)]

    def _run_chunks_pooled(
        self,
        chunks: list[list[dict[str, object]]],
        store_chunk: Callable[[list[dict[str, object]]], None],
    ) -> dict[int, list[dict[str, object]]]:
        """Dispatch chunks to a process pool; retry failures on a fresh one.

        ``store_chunk`` is called with each chunk's results as soon as its
        future resolves (before later futures are awaited), so completed
        work is persisted even when a subsequent chunk interrupts the
        batch.  Returns per-chunk results for whatever succeeded; chunks
        missing from the mapping are the caller's to run in-process.  The
        ``_unit`` bookkeeping field never crosses the process boundary.
        """
        wire = [
            [{k: v for k, v in p.items() if k != "_unit"} for p in chunk]
            for chunk in chunks
        ]
        done: dict[int, list[dict[str, object]]] = {}
        remaining = set(range(len(chunks)))
        for attempt in range(self.config.retries + 1):
            if not remaining:
                break
            if attempt:
                self.perf.count("pool_retries")
                self._backoff(attempt)
            pool: ProcessPoolExecutor | None = None
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(self.config.jobs, len(remaining))
                )
                futures = {
                    pool.submit(self._chunk_fn, wire[index]): index
                    for index in sorted(remaining)
                }
                self.perf.count("pool_chunks_dispatched", len(futures))
                for future, index in futures.items():
                    chunk_results = future.result(timeout=self.config.timeout)
                    done[index] = chunk_results
                    remaining.discard(index)
                    store_chunk(chunk_results)
            except (FutureTimeoutError, BrokenExecutor, OSError):
                # Worker death or a stuck chunk: abandon this pool and
                # retry what's left (fresh pool or in-process fallback).
                self.perf.count("pool_chunk_failures")
            except KeyboardInterrupt:
                # Ctrl-C (possibly relayed from a worker process): cancel
                # what hasn't started, count it, and propagate — results
                # already handed to store_chunk stay flushed.
                self.perf.count("pool_interrupts")
                raise
            except Exception:
                # A genuine error from the chunk body; the in-process
                # fallback will re-raise it with a clean traceback.
                self.perf.count("pool_chunk_failures")
            finally:
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
        return done

    def _backoff(self, attempt: int) -> None:
        """Sleep before retry round ``attempt`` (exponential + jitter)."""
        if self.config.backoff_base <= 0:
            return
        delay = min(
            self.config.backoff_cap,
            self.config.backoff_base * (2 ** (attempt - 1)),
        )
        delay *= 1.0 + self.config.backoff_jitter * self._backoff_rng.random()
        self.perf.count("retry_backoff_total", delay)
        time.sleep(delay)


def chunk_units(
    chunk: list[dict[str, object]],
) -> list[tuple[str, SweepConfig, str]]:
    """Recover the original unit tuples from a payload chunk."""
    return [payload["_unit"] for payload in chunk]  # type: ignore[misc]
