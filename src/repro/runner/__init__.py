"""Parallel experiment execution with a content-addressed result cache.

See :mod:`repro.runner.core` for the execution model.  This package also
holds the *default runner* used by :func:`repro.workloads.sweep.run_sweep`
and :func:`repro.workloads.replicate.replicate_point` when no runner is
passed explicitly — the CLI installs one built from its ``--jobs`` /
``--cache-dir`` flags, so every registered experiment transparently runs
through the same pool and cache.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.runner.cache import CACHE_VERSION, ResultCache
from repro.runner.core import ExperimentRunner, RunnerConfig
from repro.runner.key import (
    KEY_VERSION,
    canonical_json,
    sweep_config_from_dict,
    sweep_config_to_dict,
    unit_key,
)

__all__ = [
    "CACHE_VERSION",
    "KEY_VERSION",
    "ExperimentRunner",
    "ResultCache",
    "RunnerConfig",
    "canonical_json",
    "get_default_runner",
    "set_default_runner",
    "sweep_config_from_dict",
    "sweep_config_to_dict",
    "unit_key",
    "using_runner",
]

_default_runner: ExperimentRunner | None = None


def get_default_runner() -> ExperimentRunner:
    """The runner used when callers don't pass one (serial, no cache)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner(RunnerConfig())
    return _default_runner


def set_default_runner(runner: ExperimentRunner | None) -> None:
    """Install (or with ``None``, reset) the process-wide default runner."""
    global _default_runner
    _default_runner = runner


@contextmanager
def using_runner(runner: ExperimentRunner) -> Iterator[ExperimentRunner]:
    """Scope ``runner`` as the default for the duration of the block."""
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    try:
        yield runner
    finally:
        _default_runner = previous
