"""Paper parameter presets and scale control.

"All experiments reported in this section assume x = 16, t = 25, and 10,000
job arrivals" (Section 5.3).  The paper does not state the fixed values of
the non-swept parameters; DESIGN.md records our choices (moderate overload
and moderate laxity, squarely inside the regimes the text describes as
showing peak benefit): arrival interval 30, laxity 0.5, alpha 0.5, and a
16-processor machine.  P = x = 16 makes the tall task machine-wide, which is
the regime Figure 5(b)'s text describes ("shape 1 requires a larger number
of processors for its first task, preventing its packing ... even when
deadlines are loose"); alpha = 0.5 keeps the worst shape's steady-state
period (75 time units) inside the Figure 5(a) interval axis (10..85), so
"when the arrival interval is very high ... all three task systems can
admit all the jobs" remains approachable at the top of the axis.

Scale control: full 10,000-arrival runs take minutes per figure in CPython;
the default bench scale is 2,000 arrivals, which preserves every
qualitative shape.  Set the environment variable ``REPRO_FULL_SCALE=1`` to
run the paper's 10,000.
"""

from __future__ import annotations

import os

from repro.workloads.synthetic import SyntheticParams

__all__ = [
    "X",
    "T",
    "N_JOBS_PAPER",
    "N_JOBS_QUICK",
    "DEFAULT_ALPHA",
    "DEFAULT_LAXITY",
    "DEFAULT_PROCESSORS",
    "DEFAULT_INTERVAL",
    "DEFAULT_SEED",
    "FIG5A_INTERVALS",
    "FIG5B_LAXITIES",
    "FIG5C_PROCESSORS",
    "FIG5D_ALPHAS",
    "FIG6_INTERVALS",
    "FIG6_LAXITIES",
    "default_params",
    "n_jobs",
    "full_scale",
]

#: Paper constants (Section 5.3).
X: int = 16
T: float = 25.0
N_JOBS_PAPER: int = 10_000

#: Reduced default used by tests/benchmarks unless REPRO_FULL_SCALE is set.
N_JOBS_QUICK: int = 2_000

#: Fixed values of non-swept parameters (our documented choices — see
#: DESIGN.md; calibrated so every qualitative claim of Figures 5-6 holds).
DEFAULT_ALPHA: float = 0.5
DEFAULT_LAXITY: float = 0.5
DEFAULT_PROCESSORS: int = 16
DEFAULT_INTERVAL: float = 30.0
DEFAULT_SEED: int = 1999  # the venue year; any fixed value works

#: Sweep grids, matching the paper's stated axis ranges.
FIG5A_INTERVALS: tuple[float, ...] = tuple(float(v) for v in range(10, 86, 5))
FIG5B_LAXITIES: tuple[float, ...] = tuple(round(0.05 + 0.09 * i, 2) for i in range(11))
FIG5C_PROCESSORS: tuple[int, ...] = tuple(range(16, 65, 4))
#: alphas k/16 so x*alpha stays integral; includes the paper's 0.625 pivot.
FIG5D_ALPHAS: tuple[float, ...] = tuple(k / 16 for k in (1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16))
#: Figure 6 uses coarser grids on the same two axes.
FIG6_INTERVALS: tuple[float, ...] = tuple(float(v) for v in range(10, 86, 10))
FIG6_LAXITIES: tuple[float, ...] = (0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95)


def full_scale() -> bool:
    """True when the REPRO_FULL_SCALE environment variable requests 10k jobs."""
    return os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0", "false", "False")


def n_jobs(override: int | None = None) -> int:
    """Number of arrivals to simulate (override > env switch > quick)."""
    if override is not None:
        return override
    return N_JOBS_PAPER if full_scale() else N_JOBS_QUICK


def default_params(**overrides: object) -> SyntheticParams:
    """The Figure-4 job at the paper's defaults, with keyword overrides."""
    base = dict(x=X, t=T, alpha=DEFAULT_ALPHA, laxity=DEFAULT_LAXITY)
    base.update(overrides)
    return SyntheticParams(**base)  # type: ignore[arg-type]
