"""Quality-tiered tunable jobs (extension).

Section 5.1 assumes equal quality and equal total resources across a job's
paths "for the purposes of this paper", noting that "in practice, task
chains of a tunable application are likely to have different overall
resource requirements and output qualities: the issue then is of maximizing
the achieved job quality."  This module builds that practical workload: the
Figure-4 job offered at several *quality tiers* — narrower (cheaper) tiers
produce lower-quality output — with both task transpositions available per
tier.

The quality-degradation experiment (:mod:`repro.experiments.quality`) runs
these jobs under both arbitration objectives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.resources import ProcessorTimeRequest
from repro.errors import WorkloadError
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec
from repro.workloads.synthetic import SyntheticParams

__all__ = ["QualityTier", "TieredParams"]


@dataclass(frozen=True, slots=True)
class QualityTier:
    """One quality level: a width scale on the base job and its quality."""

    label: str
    width_scale: float
    quality: float

    def __post_init__(self) -> None:
        if not 0 < self.width_scale <= 1:
            raise WorkloadError(
                f"tier {self.label!r}: width_scale must be in (0, 1], got "
                f"{self.width_scale}"
            )
        if not 0 < self.quality <= 1:
            raise WorkloadError(
                f"tier {self.label!r}: quality must be in (0, 1], got "
                f"{self.quality}"
            )


#: Default three-tier ladder: full quality at full width, degraded tiers at
#: three-quarters and half the processor footprint.
DEFAULT_TIERS: tuple[QualityTier, ...] = (
    QualityTier("premium", 1.0, 1.0),
    QualityTier("standard", 0.75, 0.85),
    QualityTier("economy", 0.5, 0.65),
)


@dataclass(frozen=True, slots=True)
class TieredParams:
    """The Figure-4 job offered at several quality tiers.

    Each tier scales both task *widths* by ``width_scale`` (durations
    unchanged, so resource area scales down with quality) and offers both
    transposed task orders — ``2 * len(tiers)`` paths per job.
    """

    base: SyntheticParams = field(default_factory=SyntheticParams)
    tiers: tuple[QualityTier, ...] = DEFAULT_TIERS

    def __post_init__(self) -> None:
        if not self.tiers:
            raise WorkloadError("at least one quality tier is required")
        labels = [t.label for t in self.tiers]
        if len(set(labels)) != len(labels):
            raise WorkloadError(f"duplicate tier labels: {labels}")
        for tier in self.tiers:
            if self._tall_width(tier) < 1 or self._flat_width(tier) < 1:
                raise WorkloadError(
                    f"tier {tier.label!r} scales a task width below 1"
                )

    # ------------------------------------------------------------------

    def _tall_width(self, tier: QualityTier) -> int:
        return round(self.base.x * tier.width_scale)

    def _flat_width(self, tier: QualityTier) -> int:
        return round(self.base.flat_width * tier.width_scale)

    def tier_chains(self, tier: QualityTier) -> tuple[TaskChain, TaskChain]:
        """Both transposed chains of one tier (quality on the final task)."""
        tall = ProcessorTimeRequest(self._tall_width(tier), self.base.t)
        flat = ProcessorTimeRequest(self._flat_width(tier), self.base.flat_duration)
        d1, d2 = self.base.d1, self.base.d2
        shape1 = TaskChain(
            (
                TaskSpec("tall", tall, deadline=d1),
                TaskSpec("flat", flat, deadline=d2, quality=tier.quality),
            ),
            label=f"{tier.label}-shape1",
            params={"tier": tier.label, "shape": 1},
        )
        shape2 = TaskChain(
            (
                TaskSpec("flat", flat, deadline=d1),
                TaskSpec("tall", tall, deadline=d2, quality=tier.quality),
            ),
            label=f"{tier.label}-shape2",
            params={"tier": tier.label, "shape": 2},
        )
        return shape1, shape2

    def tiered_job(self, release: float = 0.0) -> Job:
        """The full multi-tier tunable job."""
        chains: list[TaskChain] = []
        for tier in self.tiers:
            chains.extend(self.tier_chains(tier))
        return Job.tunable_of(chains, release=release, name="tiered")

    @property
    def best_quality(self) -> float:
        """Quality of the top tier."""
        return max(t.quality for t in self.tiers)

    def tier_of_chain_index(self, index: int) -> QualityTier:
        """Map an enumerated chain index back to its tier."""
        if not 0 <= index < 2 * len(self.tiers):
            raise WorkloadError(f"chain index {index} out of range")
        return self.tiers[index // 2]
