"""Workload generators and sweep harness for the Section 5 experiments."""

from repro.workloads.synthetic import SyntheticParams
from repro.workloads.sweep import (
    SweepConfig,
    SweepResult,
    run_point,
    run_sweep,
    SYSTEMS,
)
from repro.workloads import presets
from repro.workloads.replicate import ReplicatedPoint, replicate_point
from repro.workloads.tiers import QualityTier, TieredParams

__all__ = [
    "ReplicatedPoint",
    "replicate_point",
    "QualityTier",
    "TieredParams",
    "SyntheticParams",
    "SweepConfig",
    "SweepResult",
    "run_point",
    "run_sweep",
    "SYSTEMS",
    "presets",
]
