"""The parameterizable tunable job of Figure 4 (Section 5.3).

"The parameterizable job consists of two chains, each with two tasks.  The
two configurations simply transpose the positions of the two tasks.  Each
task requires the same total amount of resources but with different shapes.
One task asks for ``x`` processors for time ``t``, whereas the other task
requests ``x*alpha`` processors for ``t/alpha`` amount of time.  The value
of ``alpha`` is chosen in the interval (0, 1] such that both ``x`` and
``x*alpha`` are integers."

Deadlines derive from the *laxity* parameter: "For a job released at time
``r``, the deadline of the first task is set to
``d1 = r + max(t, t/alpha)/(1 - laxity)``; the deadline of the second task
is set to ``d2 = r + (t + t/alpha)/(1 - laxity)``."

Naming follows Figure 5(b)'s discussion: **shape 1** is the chain whose
*first* task is the tall one ("shape 1 requires a larger number of
processors for its first task"), **shape 2** leads with the flat task.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.resources import ProcessorTimeRequest
from repro.errors import WorkloadError
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.orgraph import Alternative, ORGraph, Stage
from repro.model.task import TaskSpec

__all__ = ["SyntheticParams"]

_INT_TOL = 1e-9

#: Chain pairs memoized per (frozen, hashable) parameter set — see
#: :meth:`SyntheticParams._chains`.
_shared_chains: dict["SyntheticParams", tuple[TaskChain, TaskChain]] = {}


@dataclass(frozen=True, slots=True)
class SyntheticParams:
    """Parameters of the Figure-4 job.

    Attributes
    ----------
    x:
        Processor demand of the tall task (paper default 16).
    t:
        Duration of the tall task (paper default 25).
    alpha:
        Shape parameter in (0, 1]; the flat task is ``x*alpha`` processors
        for ``t/alpha`` time.  ``x*alpha`` must be a positive integer.
    laxity:
        Slack ratio in [0, 1): deadlines scale by ``1/(1-laxity)``.
    concurrency_factor:
        Degree-of-concurrency multiplier for the malleable model: each
        task's ``max_concurrency`` is ``ceil(width * concurrency_factor)``
        (default 1.0 — a task's logical concurrency equals its rigid width,
        so malleability can only narrow it, matching Section 5.4's framing
        of malleability as intra-task flexibility).
    """

    x: int = 16
    t: float = 25.0
    alpha: float = 0.25
    laxity: float = 0.5
    concurrency_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.x <= 0:
            raise WorkloadError(f"x must be positive, got {self.x}")
        if not self.t > 0:
            raise WorkloadError(f"t must be positive, got {self.t}")
        if not 0 < self.alpha <= 1:
            raise WorkloadError(f"alpha must be in (0, 1], got {self.alpha}")
        fw = self.x * self.alpha
        if abs(fw - round(fw)) > _INT_TOL or round(fw) < 1:
            raise WorkloadError(
                f"x*alpha must be a positive integer; x={self.x}, "
                f"alpha={self.alpha} gives {fw}"
            )
        if not 0 <= self.laxity < 1:
            raise WorkloadError(f"laxity must be in [0, 1), got {self.laxity}")
        if not self.concurrency_factor >= 1:
            raise WorkloadError(
                f"concurrency_factor must be >= 1, got {self.concurrency_factor}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def flat_width(self) -> int:
        """Processor demand of the flat task (``x * alpha``)."""
        return round(self.x * self.alpha)

    @property
    def flat_duration(self) -> float:
        """Duration of the flat task (``t / alpha``)."""
        return self.t / self.alpha

    @property
    def task_area(self) -> float:
        """Processor-time area of each task (both tasks are equal-area)."""
        return self.x * self.t

    @property
    def job_area(self) -> float:
        """Total processor-time demand of one job (two tasks)."""
        return 2 * self.task_area

    @property
    def d1(self) -> float:
        """Relative deadline of the first task."""
        return max(self.t, self.flat_duration) / (1 - self.laxity)

    @property
    def d2(self) -> float:
        """Relative deadline of the second task (the job deadline)."""
        return (self.t + self.flat_duration) / (1 - self.laxity)

    def offered_load(self, processors: int, mean_interval: float) -> float:
        """Mean offered utilization: job area / (capacity x interval)."""
        if processors <= 0 or mean_interval <= 0:
            raise WorkloadError("processors and mean_interval must be positive")
        return self.job_area / (processors * mean_interval)

    # ------------------------------------------------------------------
    # Tasks, chains, jobs
    # ------------------------------------------------------------------

    def _concurrency(self, width: int) -> int:
        return math.ceil(width * self.concurrency_factor)

    def tall_task(self, deadline: float, name: str = "tall") -> TaskSpec:
        """The ``x`` processors x ``t`` time task with the given deadline."""
        return TaskSpec(
            name,
            ProcessorTimeRequest(self.x, self.t),
            deadline=deadline,
            max_concurrency=self._concurrency(self.x),
        )

    def flat_task(self, deadline: float, name: str = "flat") -> TaskSpec:
        """The ``x*alpha`` processors x ``t/alpha`` time task."""
        return TaskSpec(
            name,
            ProcessorTimeRequest(self.flat_width, self.flat_duration),
            deadline=deadline,
            max_concurrency=self._concurrency(self.flat_width),
        )

    def shape1_chain(self) -> TaskChain:
        """Tall task first, flat task second."""
        return TaskChain(
            (self.tall_task(self.d1), self.flat_task(self.d2)),
            label="shape1",
            params={"shape": 1},
        )

    def shape2_chain(self) -> TaskChain:
        """Flat task first, tall task second (the transposition)."""
        return TaskChain(
            (self.flat_task(self.d1), self.tall_task(self.d2)),
            label="shape2",
            params={"shape": 2},
        )

    def _chains(self) -> tuple[TaskChain, TaskChain]:
        """Both configurations, shared across every job of these params.

        Task deadlines are *relative*, so the chains do not depend on the
        release time — every job stamped out by one ``SyntheticParams``
        carries value-identical (and here object-identical) chains.
        Chains are immutable by convention, so sharing is safe, keeps
        large generated streams compact, and lets identity-keyed caches
        downstream (e.g. the service WAL's chain encoder) hit.
        """
        cached = _shared_chains.get(self)
        if cached is None:
            if len(_shared_chains) >= 256:
                _shared_chains.clear()
            cached = (self.shape1_chain(), self.shape2_chain())
            _shared_chains[self] = cached
        return cached

    def tunable_job(self, release: float = 0.0) -> Job:
        """The two-configuration tunable job of Figure 4."""
        return Job.tunable_of(
            list(self._chains()),
            release=release,
            name="fig4-tunable",
        )

    def rigid_job(self, shape: int, release: float = 0.0) -> Job:
        """A non-tunable job pinned to configuration ``shape`` (1 or 2)."""
        if shape not in (1, 2):
            raise WorkloadError(f"shape must be 1 or 2, got {shape}")
        chain = self._chains()[shape - 1]
        return Job.rigid(chain, release=release, name=f"fig4-shape{shape}")

    def or_graph(self) -> ORGraph:
        """The job as an explicit one-stage OR graph (for the DSL tests)."""
        return ORGraph(
            (
                Stage(
                    (
                        Alternative(
                            tasks=self.shape1_chain().tasks,
                            binds={"shape": 1},
                            label="shape1",
                        ),
                        Alternative(
                            tasks=self.shape2_chain().tasks,
                            binds={"shape": 2},
                            label="shape2",
                        ),
                    ),
                    name="transpose",
                ),
            ),
            name="fig4",
        )

    def with_laxity(self, laxity: float) -> "SyntheticParams":
        """Copy with a different laxity."""
        return replace(self, laxity=laxity)

    def with_alpha(self, alpha: float) -> "SyntheticParams":
        """Copy with a different shape parameter."""
        return replace(self, alpha=alpha)
