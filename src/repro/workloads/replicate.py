"""Multi-seed replication of experiment points.

The paper reports single 10,000-arrival runs; at reduced scale, seed noise
can blur comparisons.  This harness replicates a point across seeds and
reports mean ± confidence interval per metric and system, plus a
paired-difference test of the tunability benefit (common random numbers
make per-seed differences the right unit of comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro.analysis.stats import mean_ci
from repro.errors import WorkloadError
from repro.workloads.sweep import SweepConfig

__all__ = ["ReplicatedMetric", "ReplicatedPoint", "replicate_point"]


@dataclass(frozen=True, slots=True)
class ReplicatedMetric:
    """Mean and CI of one metric for one system across seeds."""

    mean: float
    ci_low: float
    ci_high: float
    samples: tuple[float, ...]

    @property
    def half_width(self) -> float:
        """Half the CI width (the ± in mean ± h)."""
        return (self.ci_high - self.ci_low) / 2


@dataclass(frozen=True, slots=True)
class ReplicatedPoint:
    """Replication result: metric → system → :class:`ReplicatedMetric`."""

    config: SweepConfig
    seeds: tuple[int, ...]
    metrics: Mapping[str, Mapping[str, ReplicatedMetric]]

    def benefit_ci(
        self, metric: str, over: str, confidence: float = 0.95
    ) -> ReplicatedMetric:
        """CI of the *paired* per-seed benefit (tunable − baseline)."""
        tun = self.metrics[metric]["tunable"].samples
        base = self.metrics[metric][over].samples
        diffs = [a - b for a, b in zip(tun, base)]
        mean, lo, hi = mean_ci(diffs, confidence)
        return ReplicatedMetric(mean, lo, hi, tuple(diffs))

    def benefit_significant(self, metric: str, over: str) -> bool:
        """True when the paired benefit CI excludes zero (from below)."""
        ci = self.benefit_ci(metric, over)
        return ci.ci_low > 0


def replicate_point(
    config: SweepConfig,
    seeds: Sequence[int],
    systems: Sequence[str] = ("tunable", "shape1", "shape2"),
    metrics: Sequence[str] = ("throughput", "utilization"),
    confidence: float = 0.95,
    runner: "object | None" = None,
) -> ReplicatedPoint:
    """Run one configuration point across several seeds.

    All systems share each seed's arrival sequence (common random numbers),
    so :meth:`ReplicatedPoint.benefit_ci` is a paired comparison — the
    pairing is carried by the seed inside each work unit's config, so
    running units in parallel or from cache (``runner``; see
    :func:`repro.workloads.sweep.run_sweep`) preserves it exactly.
    """
    from repro.runner import get_default_runner  # local: avoids an import cycle

    if len(seeds) < 1:
        raise WorkloadError("replication needs at least one seed")
    if len(set(seeds)) != len(seeds):
        raise WorkloadError(f"duplicate seeds: {list(seeds)}")
    active = runner if runner is not None else get_default_runner()
    units = [
        (replace(config, seed=seed), system)
        for seed in seeds
        for system in systems
    ]
    runs = active.run_units(units)  # type: ignore[attr-defined]
    samples: dict[str, dict[str, list[float]]] = {
        m: {s: [] for s in systems} for m in metrics
    }
    flat_runs = iter(runs)
    for _seed in seeds:
        for system in systems:
            flat = next(flat_runs).as_dict()
            for metric in metrics:
                samples[metric][system].append(float(flat[metric]))
    out: dict[str, dict[str, ReplicatedMetric]] = {}
    for metric in metrics:
        out[metric] = {}
        for system in systems:
            values = samples[metric][system]
            mean, lo, hi = mean_ci(values, confidence)
            out[metric][system] = ReplicatedMetric(mean, lo, hi, tuple(values))
    return ReplicatedPoint(config=config, seeds=tuple(seeds), metrics=out)
