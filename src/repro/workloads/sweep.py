"""Parameter-sweep harness for the Figure 5/6 experiments.

A sweep runs the three task systems of Section 5.3 — ``tunable`` (both
configurations), ``shape1`` and ``shape2`` (one apiece) — across one varied
parameter while all others stay fixed, with **common random numbers**: every
system at a given sweep point sees the identical Poisson arrival sequence,
so measured differences are purely scheduling, not sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from repro.core.arbitrator import QoSArbitrator
from repro.core.malleable import MalleableStrategy
from repro.core.policies import TieBreakPolicy
from repro.errors import WorkloadError
from repro.model.job import Job
from repro.resilience.events import FaultModel, PerturbationTrace, generate_trace
from repro.resilience.reconfig import ReconfigCostModel, ReconfigEngine, ResizePolicy
from repro.resilience.simulator import simulate_resilient
from repro.sim.arrivals import PoissonArrivals
from repro.sim.metrics import RunMetrics
from repro.sim.rng import RandomStreams
from repro.sim.simulator import simulate_arrivals
from repro.workloads import presets
from repro.workloads.synthetic import SyntheticParams

__all__ = ["SYSTEMS", "SweepConfig", "SweepResult", "run_point", "run_sweep"]

#: The three task systems compared throughout Section 5.
SYSTEMS: tuple[str, ...] = ("tunable", "shape1", "shape2")


@dataclass(frozen=True, slots=True)
class SweepConfig:
    """Everything needed to reproduce one experiment point or sweep.

    ``axis`` names the swept parameter: one of ``"interval"``, ``"laxity"``,
    ``"processors"``, ``"alpha"``, ``"fault_rate"``.

    ``faults`` selects the fault-aware simulator (:mod:`repro.resilience`)
    with a perturbation trace drawn from the given
    :class:`~repro.resilience.events.FaultModel`; ``None`` (or an
    all-zero-rate model) runs the fault-free baseline simulator,
    bit-identically to configs predating the field.

    ``resize_policy``/``reconfig_cost`` enable mid-execution grow/shrink of
    running malleable jobs (:mod:`repro.resilience.reconfig`); any enabled
    direction routes the point through the fault-aware simulator (with an
    empty trace when ``faults`` is off) since only its event loop can fire
    resize events.  ``reconfig_cost`` is the fixed checkpoint term of the
    :class:`~repro.resilience.reconfig.ReconfigCostModel`;
    ``reconfig_cost_per_proc`` its per-processor redistribute term.
    ``ResizePolicy.OFF`` (the default) is bit-identical to configs
    predating the fields.
    """

    params: SyntheticParams = field(default_factory=presets.default_params)
    processors: int = presets.DEFAULT_PROCESSORS
    interval: float = presets.DEFAULT_INTERVAL
    n_jobs: int = presets.N_JOBS_QUICK
    seed: int = presets.DEFAULT_SEED
    malleable: bool = False
    strategy: MalleableStrategy = MalleableStrategy.WIDEST_FIRST_FEASIBLE
    policy: TieBreakPolicy = TieBreakPolicy.PAPER
    verify: bool = True
    faults: FaultModel | None = None
    resize_policy: ResizePolicy = ResizePolicy.OFF
    reconfig_cost: float = 0.0
    reconfig_cost_per_proc: float = 0.0
    #: Availability-profile scan back-end; all back-ends make bit-identical
    #: decisions (see :data:`repro.core.profile.PROFILE_BACKENDS`).
    backend: str = "auto"
    #: Candidate-search pruning; decisions are identical either way (see
    #: :mod:`repro.core.greedy`).
    prune: bool = True

    @property
    def resizing(self) -> bool:
        """Whether this config exercises mid-execution resizing at all."""
        return self.malleable and self.resize_policy is not ResizePolicy.OFF

    def reconfig_engine(self) -> ReconfigEngine | None:
        """Fresh resize engine for one run, or ``None`` when inert."""
        if not self.resizing:
            return None
        return ReconfigEngine(
            self.resize_policy,
            ReconfigCostModel(self.reconfig_cost, self.reconfig_cost_per_proc),
        )

    def with_axis(self, axis: str, value: float) -> "SweepConfig":
        """Copy of this config with ``axis`` set to ``value``."""
        if axis == "interval":
            return replace(self, interval=float(value))
        if axis == "laxity":
            return replace(self, params=self.params.with_laxity(float(value)))
        if axis == "processors":
            return replace(self, processors=int(value))
        if axis == "alpha":
            return replace(self, params=self.params.with_alpha(float(value)))
        if axis == "fault_rate":
            model = self.faults if self.faults is not None else FaultModel()
            return replace(self, faults=model.with_fault_rate(float(value)))
        if axis == "reconfig_cost":
            return replace(self, reconfig_cost=float(value))
        raise WorkloadError(f"unknown sweep axis {axis!r}")


def _job_factory(config: SweepConfig, system: str) -> Callable[[int, float], Job]:
    params = config.params
    if system == "tunable":
        return lambda i, release: params.tunable_job(release)
    if system == "shape1":
        return lambda i, release: params.rigid_job(1, release)
    if system == "shape2":
        return lambda i, release: params.rigid_job(2, release)
    raise WorkloadError(f"unknown task system {system!r}; expected one of {SYSTEMS}")


def run_point(config: SweepConfig, system: str) -> RunMetrics:
    """Simulate one task system at one configuration point.

    With a non-empty fault model, the arrivals are drawn first (from the
    same substreams as the fault-free path — the perturbation trace uses
    disjoint substreams, so arrivals match the fault-free run exactly) and
    replayed through the fault-aware simulator.  An enabled resize policy
    routes through the same simulator (with an empty trace when faults are
    off) so completion-/pressure-triggered resize events can fire; only the
    ``tunable`` system is malleable, so rigid systems never resize.
    """
    streams = RandomStreams(config.seed)
    process = PoissonArrivals(config.interval, streams)
    faulty = config.faults is not None and not config.faults.empty
    if faulty or config.resizing:
        arrivals = list(process.times(config.n_jobs))
        if faulty:
            horizon = (arrivals[-1] if arrivals else 0.0) + config.params.d2
            trace = generate_trace(
                config.faults,
                streams,
                horizon=horizon,
                base_capacity=config.processors,
                n_arrivals=config.n_jobs,
            )
        else:
            trace = PerturbationTrace()
        arbitrator = QoSArbitrator(
            config.processors,
            malleable=config.malleable,
            strategy=config.strategy,
            policy=config.policy,
            backend=config.backend,
            prune=config.prune,
            keep_placements=True,  # renegotiation input
        )
        return simulate_resilient(
            arbitrator,
            _job_factory(config, system),
            arrivals,
            trace,
            verify=config.verify,
            reconfig=config.reconfig_engine(),
        )
    arbitrator = QoSArbitrator(
        config.processors,
        malleable=config.malleable,
        strategy=config.strategy,
        policy=config.policy,
        backend=config.backend,
        prune=config.prune,
        keep_placements=False,
    )
    return simulate_arrivals(
        arbitrator,
        _job_factory(config, system),
        process,
        config.n_jobs,
        verify=config.verify,
    )


@dataclass(frozen=True, slots=True)
class SweepResult:
    """Results of one sweep: ``rows[value][system] -> RunMetrics``."""

    axis: str
    values: tuple[float, ...]
    systems: tuple[str, ...]
    rows: Mapping[float, Mapping[str, RunMetrics]]
    config: SweepConfig

    def series(self, system: str, metric: str) -> list[float]:
        """Extract one metric across the sweep for one system."""
        return [
            float(self.rows[v][system].as_dict()[metric]) for v in self.values
        ]

    def benefit(self, metric: str, over: str) -> list[float]:
        """Tunable-minus-baseline difference series (Figure 6's quantity)."""
        tun = self.series("tunable", metric)
        base = self.series(over, metric)
        return [a - b for a, b in zip(tun, base)]

    def to_rows(self) -> list[dict[str, object]]:
        """Flat per-(value, system) dicts for table rendering."""
        out: list[dict[str, object]] = []
        for v in self.values:
            for s in self.systems:
                row: dict[str, object] = {"axis": self.axis, "value": v, "system": s}
                row.update(self.rows[v][s].as_dict())
                out.append(row)
        return out


def run_sweep(
    axis: str,
    values: Sequence[float],
    config: SweepConfig | None = None,
    systems: Sequence[str] = SYSTEMS,
    runner: "object | None" = None,
) -> SweepResult:
    """Run every system at every value of the swept parameter.

    All systems at a given value share the same arrival sequence (identical
    seed and interval); different values reuse the same seed too, so the
    interval axis is the only source of arrival variation along a sweep.

    ``runner`` is an :class:`repro.runner.ExperimentRunner`; the default
    is the process-wide runner (serial and uncached unless the CLI or a
    caller installed another).  Every (value, system) pair is one
    independent work unit, so parallel execution and caching cannot
    perturb common-random-numbers pairing: each unit's arrivals depend
    only on its own config.  Units are merged back in grid order, making
    the result identical however they were scheduled.
    """
    from repro.runner import get_default_runner  # local: avoids an import cycle

    config = config or SweepConfig()
    active = runner if runner is not None else get_default_runner()
    point_cfgs = [config.with_axis(axis, value) for value in values]
    units = [(cfg, system) for cfg in point_cfgs for system in systems]
    metrics = active.run_units(units)  # type: ignore[attr-defined]
    rows: dict[float, dict[str, RunMetrics]] = {}
    flat = iter(metrics)
    for value in values:
        rows[float(value)] = {system: next(flat) for system in systems}
    return SweepResult(
        axis=axis,
        values=tuple(float(v) for v in values),
        systems=tuple(systems),
        rows=rows,
        config=config,
    )
