"""The task, task_select and task_loop constructs (Section 4.2).

These are *data* describing program structure; the preprocessor
(:mod:`repro.lang.preprocess`) enumerates their execution paths.  Semantics
follow the paper:

* ``task`` wraps one (sequential or parallel) Calypso step and lists its
  deadline, its control parameters, and the acceptable configurations —
  ``(param-values, resource-request, quality)`` triples.  A configuration
  is viable on a path only if its parameter values *unify* with parameters
  already bound earlier on the path ("this restriction of configurations
  based on which configurations were selected in an earlier step make
  explicit the application's ability to tradeoff resource requirements over
  its lifetime").
* ``task_select`` offers guarded branches; a branch whose ``when`` expression
  is true under the current bindings is viable, and its ``finally`` code —
  restricted here to control-parameter assignments — runs after the branch
  body ("the finally-code ... together with the when construct permits
  execution paths to be defined in the program").
* ``task_loop`` repeats its body ``count`` times, where ``count`` may only
  involve constants and control parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Union

from repro.core.resources import ProcessorTimeRequest
from repro.errors import ProgramStructureError
from repro.lang.expr import Expr
from repro.model.task import TaskSpec

__all__ = [
    "TaskConfig",
    "TaskConstruct",
    "SelectBranch",
    "SelectConstruct",
    "LoopConstruct",
    "Construct",
    "StepBody",
]

#: A Calypso step body: called with (shared-memory context, parameter env).
#: ``None`` for model-only programs that are never executed by the runtime.
StepBody = Callable[[object, Mapping[str, object]], object]


@dataclass(frozen=True, slots=True)
class TaskConfig:
    """One acceptable configuration of a task construct.

    ``values`` assigns the construct's ``parameter_list`` positionally —
    the paper's ``([param-values], [resource-request], quality)`` triple.
    """

    values: tuple[object, ...]
    request: ProcessorTimeRequest
    quality: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))


@dataclass(frozen=True, slots=True)
class TaskConstruct:
    """``task [name] [deadline] [parameter-list] [configs] ... taskend``.

    Attributes
    ----------
    name:
        Task name; must be unique within the program.
    deadline:
        Relative deadline (time from job release by which this task and all
        predecessors finish).  May be an :class:`~repro.lang.expr.Expr` over
        control parameters and loop variables.
    parameter_list:
        Control parameters assigned by choosing a configuration.
    configs:
        Acceptable configurations (at least one).
    body:
        Optional executable step body for runtime integration.
    max_concurrency:
        Degree of concurrency for the malleable model (0 = rigid width).
    """

    name: str
    deadline: Union[float, Expr]
    parameter_list: tuple[str, ...]
    configs: tuple[TaskConfig, ...]
    body: StepBody | None = None
    max_concurrency: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameter_list", tuple(self.parameter_list))
        object.__setattr__(self, "configs", tuple(self.configs))
        if not self.name:
            raise ProgramStructureError("task construct needs a name")
        if not self.configs:
            raise ProgramStructureError(
                f"task {self.name!r} declares no configurations"
            )
        for cfg in self.configs:
            if len(cfg.values) != len(self.parameter_list):
                raise ProgramStructureError(
                    f"task {self.name!r}: configuration {cfg.values!r} assigns "
                    f"{len(cfg.values)} values to {len(self.parameter_list)} "
                    "parameters"
                )

    def spec_for(self, config: TaskConfig, deadline: float) -> TaskSpec:
        """Concrete :class:`~repro.model.task.TaskSpec` for one configuration."""
        return TaskSpec(
            self.name,
            config.request,
            deadline=deadline,
            quality=config.quality,
            max_concurrency=self.max_concurrency or config.request.processors,
        )


@dataclass(frozen=True, slots=True)
class SelectBranch:
    """One ``when ... finally ...`` branch of a ``task_select``."""

    when: Union[Expr, bool]
    body: tuple["Construct", ...]
    finally_binds: Mapping[str, object] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        object.__setattr__(self, "finally_binds", dict(self.finally_binds))


@dataclass(frozen=True, slots=True)
class SelectConstruct:
    """``task_select ... task_selectend`` — guarded alternative branches."""

    branches: tuple[SelectBranch, ...]
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "branches", tuple(self.branches))
        if not self.branches:
            raise ProgramStructureError(
                f"task_select {self.name!r} has no branches"
            )


@dataclass(frozen=True, slots=True)
class LoopConstruct:
    """``task_loop ( loop-expr ) ... task_loopend``.

    ``var``, when set, names a pseudo-parameter bound to the iteration
    index (0-based) while enumerating the body — useful for per-iteration
    deadlines (``deadline=10.0 + P("k") * 5.0``).
    """

    count: Union[Expr, int]
    body: tuple["Construct", ...]
    var: str = ""
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if not self.body:
            raise ProgramStructureError(f"task_loop {self.name!r} has an empty body")
        if isinstance(self.count, int) and self.count < 0:
            raise ProgramStructureError(
                f"task_loop {self.name!r} has negative count {self.count}"
            )


Construct = Union[TaskConstruct, SelectConstruct, LoopConstruct]
