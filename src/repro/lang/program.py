"""Tunable programs: declared parameters + construct body + validation.

A :class:`TunableProgram` is the DSL counterpart of a preprocessed Calypso
source file: the ``task_control_parameters`` block plus the sequence of
``task`` / ``task_select`` / ``task_loop`` constructs.  Validation enforces
the static rules the Calypso preprocessor would check — every referenced
parameter declared, unique task names, scheduling-time expressions reading
only parameters (and loop variables) in scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ControlParameterError, ProgramStructureError
from repro.lang.constructs import (
    Construct,
    LoopConstruct,
    SelectConstruct,
    TaskConstruct,
)
from repro.lang.expr import Expr
from repro.lang.params import ParameterSet

__all__ = ["TunableProgram"]


@dataclass(frozen=True, slots=True)
class TunableProgram:
    """One tunable application's specification."""

    name: str
    parameters: ParameterSet
    body: tuple[Construct, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if not self.body:
            raise ProgramStructureError(f"program {self.name!r} has an empty body")
        self.validate()

    # ------------------------------------------------------------------

    def tasks(self) -> Iterator[TaskConstruct]:
        """All task constructs, in document order (loops not unrolled)."""

        def walk(constructs: tuple[Construct, ...]) -> Iterator[TaskConstruct]:
            for c in constructs:
                if isinstance(c, TaskConstruct):
                    yield c
                elif isinstance(c, SelectConstruct):
                    for br in c.branches:
                        yield from walk(br.body)
                elif isinstance(c, LoopConstruct):
                    yield from walk(c.body)
                else:  # pragma: no cover - closed union
                    raise ProgramStructureError(f"unknown construct {c!r}")

        return walk(self.body)

    def task_by_name(self, name: str) -> TaskConstruct:
        """Look up a task construct by its (unique) name."""
        for t in self.tasks():
            if t.name == name:
                return t
        raise ProgramStructureError(
            f"program {self.name!r} has no task named {name!r}"
        )

    # ------------------------------------------------------------------

    def _check_expr(self, expr: object, scope: set[str], where: str) -> None:
        if isinstance(expr, Expr):
            for p in expr.referenced_params():
                if p not in scope:
                    raise ControlParameterError(
                        f"{where}: expression references {p!r}, which is "
                        "neither a declared control parameter nor a loop "
                        "variable in scope"
                    )

    def _validate_constructs(
        self, constructs: tuple[Construct, ...], scope: set[str], seen: set[str]
    ) -> None:
        for c in constructs:
            if isinstance(c, TaskConstruct):
                if c.name in seen:
                    raise ProgramStructureError(
                        f"duplicate task name {c.name!r}"
                    )
                seen.add(c.name)
                for p in c.parameter_list:
                    if p not in scope:
                        raise ControlParameterError(
                            f"task {c.name!r}: parameter {p!r} not declared"
                        )
                self._check_expr(c.deadline, scope, f"task {c.name!r} deadline")
                if isinstance(c.deadline, (int, float)) and not c.deadline > 0:
                    raise ProgramStructureError(
                        f"task {c.name!r}: deadline must be positive, got "
                        f"{c.deadline}"
                    )
            elif isinstance(c, SelectConstruct):
                for br in c.branches:
                    self._check_expr(
                        br.when, scope, f"task_select {c.name!r} when-expr"
                    )
                    for pname, bound in br.finally_binds.items():
                        if pname not in scope:
                            raise ControlParameterError(
                                f"task_select {c.name!r}: finally assigns "
                                f"undeclared parameter {pname!r}"
                            )
                        self._check_expr(
                            bound, scope, f"task_select {c.name!r} finally"
                        )
                    self._validate_constructs(br.body, scope, seen)
            elif isinstance(c, LoopConstruct):
                self._check_expr(c.count, scope, f"task_loop {c.name!r} count")
                inner = set(scope)
                if c.var:
                    if not c.var.isidentifier():
                        raise ControlParameterError(
                            f"task_loop {c.name!r}: loop variable {c.var!r} "
                            "is not a valid identifier"
                        )
                    if c.var in scope:
                        raise ControlParameterError(
                            f"task_loop {c.name!r}: loop variable {c.var!r} "
                            "shadows a declared parameter"
                        )
                    inner.add(c.var)
                self._validate_constructs(c.body, inner, seen)
            else:  # pragma: no cover - closed union
                raise ProgramStructureError(f"unknown construct {c!r}")

    def validate(self) -> None:
        """Static validation; raises on the first rule violation."""
        scope = set(self.parameters.names)
        self._validate_constructs(self.body, scope, set())
