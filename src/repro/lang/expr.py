"""Restricted expressions over control parameters.

"Both when-expr and loop-expr can only include constants and control
parameters, facilitating their evaluation at scheduling time"
(Section 4.2).  This module provides exactly that restricted expression
language as a tiny combinator AST: :class:`Const`, :class:`Param`, and the
arithmetic/comparison/boolean operators built with Python operator
overloading.  By construction an :class:`Expr` cannot reference anything
but constants and parameters, so scheduling-time evaluation is total given
an environment binding the referenced parameters.

Usage::

    from repro.lang.expr import P
    guard = (P("sampleGranularity") == 16) & (P("mode") != "fast")
    guard.evaluate({"sampleGranularity": 16, "mode": "slow"})  # True
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Mapping

from repro.errors import ControlParameterError, LanguageError

__all__ = ["Expr", "Const", "Param", "P", "as_expr"]


class Expr:
    """Base class for scheduling-time expressions."""

    def evaluate(self, env: Mapping[str, object]) -> Any:
        """Value of this expression under parameter environment ``env``."""
        raise NotImplementedError

    def referenced_params(self) -> frozenset[str]:
        """All parameter names this expression reads."""
        raise NotImplementedError

    # -- operator sugar --------------------------------------------------

    def _bin(self, other: object, op: Callable[[Any, Any], Any], sym: str) -> "Expr":
        return _BinOp(self, as_expr(other), op, sym)

    def _rbin(self, other: object, op: Callable[[Any, Any], Any], sym: str) -> "Expr":
        return _BinOp(as_expr(other), self, op, sym)

    def __add__(self, other: object) -> "Expr":
        return self._bin(other, operator.add, "+")

    def __radd__(self, other: object) -> "Expr":
        return self._rbin(other, operator.add, "+")

    def __sub__(self, other: object) -> "Expr":
        return self._bin(other, operator.sub, "-")

    def __rsub__(self, other: object) -> "Expr":
        return self._rbin(other, operator.sub, "-")

    def __mul__(self, other: object) -> "Expr":
        return self._bin(other, operator.mul, "*")

    def __rmul__(self, other: object) -> "Expr":
        return self._rbin(other, operator.mul, "*")

    def __truediv__(self, other: object) -> "Expr":
        return self._bin(other, operator.truediv, "/")

    def __rtruediv__(self, other: object) -> "Expr":
        return self._rbin(other, operator.truediv, "/")

    def __floordiv__(self, other: object) -> "Expr":
        return self._bin(other, operator.floordiv, "//")

    def __mod__(self, other: object) -> "Expr":
        return self._bin(other, operator.mod, "%")

    def __eq__(self, other: object) -> "Expr":  # type: ignore[override]
        return self._bin(other, operator.eq, "==")

    def __ne__(self, other: object) -> "Expr":  # type: ignore[override]
        return self._bin(other, operator.ne, "!=")

    def __lt__(self, other: object) -> "Expr":
        return self._bin(other, operator.lt, "<")

    def __le__(self, other: object) -> "Expr":
        return self._bin(other, operator.le, "<=")

    def __gt__(self, other: object) -> "Expr":
        return self._bin(other, operator.gt, ">")

    def __ge__(self, other: object) -> "Expr":
        return self._bin(other, operator.ge, ">=")

    def __and__(self, other: object) -> "Expr":
        return self._bin(other, lambda a, b: bool(a) and bool(b), "and")

    def __or__(self, other: object) -> "Expr":
        return self._bin(other, lambda a, b: bool(a) or bool(b), "or")

    def __invert__(self) -> "Expr":
        return _UnaryOp(self, lambda a: not a, "not")

    def __neg__(self) -> "Expr":
        return _UnaryOp(self, operator.neg, "-")

    def __hash__(self) -> int:  # __eq__ overloading breaks default hash
        return id(self)

    def __bool__(self) -> bool:
        raise LanguageError(
            "Expr has no truth value at build time; call .evaluate(env) "
            "(did you use 'and'/'or' instead of '&'/'|'?)"
        )


class Const(Expr):
    """A literal constant."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def evaluate(self, env: Mapping[str, object]) -> Any:
        return self.value

    def referenced_params(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.value)


class Param(Expr):
    """A reference to a control parameter."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name or not name.isidentifier():
            raise ControlParameterError(
                f"parameter reference {name!r} is not a valid identifier"
            )
        self.name = name

    def evaluate(self, env: Mapping[str, object]) -> Any:
        if self.name not in env:
            raise ControlParameterError(
                f"parameter {self.name!r} unbound at evaluation time"
            )
        return env[self.name]

    def referenced_params(self) -> frozenset[str]:
        return frozenset((self.name,))

    def __repr__(self) -> str:
        return self.name


#: Short alias used in program texts: ``P("sampleGranularity") == 16``.
P = Param


class _BinOp(Expr):
    __slots__ = ("left", "right", "op", "sym")

    def __init__(self, left: Expr, right: Expr, op: Callable[[Any, Any], Any], sym: str):
        self.left = left
        self.right = right
        self.op = op
        self.sym = sym

    def evaluate(self, env: Mapping[str, object]) -> Any:
        return self.op(self.left.evaluate(env), self.right.evaluate(env))

    def referenced_params(self) -> frozenset[str]:
        return self.left.referenced_params() | self.right.referenced_params()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.sym} {self.right!r})"


class _UnaryOp(Expr):
    __slots__ = ("operand", "op", "sym")

    def __init__(self, operand: Expr, op: Callable[[Any], Any], sym: str):
        self.operand = operand
        self.op = op
        self.sym = sym

    def evaluate(self, env: Mapping[str, object]) -> Any:
        return self.op(self.operand.evaluate(env))

    def referenced_params(self) -> frozenset[str]:
        return self.operand.referenced_params()

    def __repr__(self) -> str:
        return f"({self.sym} {self.operand!r})"


def as_expr(value: object) -> Expr:
    """Coerce a Python literal to :class:`Const`; pass :class:`Expr` through."""
    if isinstance(value, Expr):
        return value
    if callable(value):
        raise LanguageError(
            f"{value!r} is not allowed in a scheduling-time expression; "
            "when-expr/loop-expr may contain only constants and control "
            "parameters (Section 4.2)"
        )
    return Const(value)
