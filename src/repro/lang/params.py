"""Control parameters — the ``task_control_parameters`` block (Section 4.2).

"Control parameters are declared (and optionally initialized) within the
task_control_parameters block. ... These parameters are used by the QoS
agent, after receiving an allocation of resources from the QoS arbitrator,
to appropriately configure the program."
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import ControlParameterError

__all__ = ["ParameterSet"]

_UNSET = object()


class ParameterSet:
    """The declared control parameters of a tunable program.

    Usage::

        params = ParameterSet()
        params.declare("sampleGranularity")
        params.declare("searchDistance", default=4)

    or equivalently ``ParameterSet(sampleGranularity=None, searchDistance=4)``
    (``None`` means "no default").
    """

    def __init__(self, **declarations: object) -> None:
        self._defaults: dict[str, object] = {}
        for name, default in declarations.items():
            self.declare(name, default)

    def declare(self, name: str, default: object = None) -> None:
        """Declare ``name``; ``default`` of ``None`` means uninitialized."""
        if not name or not name.isidentifier():
            raise ControlParameterError(
                f"control parameter name {name!r} is not a valid identifier"
            )
        if name in self._defaults:
            raise ControlParameterError(f"control parameter {name!r} re-declared")
        self._defaults[name] = _UNSET if default is None else default

    # ------------------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._defaults

    def __iter__(self) -> Iterator[str]:
        return iter(self._defaults)

    def __len__(self) -> int:
        return len(self._defaults)

    @property
    def names(self) -> tuple[str, ...]:
        """Declared parameter names, in declaration order."""
        return tuple(self._defaults)

    def require(self, name: str) -> None:
        """Raise unless ``name`` is declared."""
        if name not in self._defaults:
            raise ControlParameterError(
                f"control parameter {name!r} used but not declared in "
                "task_control_parameters"
            )

    def initial_env(self) -> dict[str, object]:
        """Environment of declared defaults (uninitialized ones omitted)."""
        return {
            name: value
            for name, value in self._defaults.items()
            if value is not _UNSET
        }

    def validate_assignment(self, values: Mapping[str, object]) -> None:
        """Raise if any assigned name is undeclared."""
        for name in values:
            self.require(name)
