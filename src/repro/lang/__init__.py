"""Calypso language extensions for tunability, as an embedded Python DSL.

Section 4 extends Calypso with three construct families; this package
mirrors them one-for-one:

=====================  ==========================================
Paper construct        DSL equivalent
=====================  ==========================================
``task_control_parameters { ... }``  :class:`repro.lang.params.ParameterSet`
``task ... taskend``                 :class:`repro.lang.constructs.TaskConstruct`
``task_select ... task_selectend``   :class:`repro.lang.constructs.SelectConstruct`
``task_loop ( expr ) ...``           :class:`repro.lang.constructs.LoopConstruct`
``when-expr`` / ``loop-expr``        :mod:`repro.lang.expr` (constants + parameters only)
=====================  ==========================================

The preprocessor (:mod:`repro.lang.preprocess`) plays the role of the
Calypso preprocessor: it enumerates every execution path of a
:class:`~repro.lang.program.TunableProgram` into concrete task chains and
builds the program's :class:`~repro.qos.agent.QoSAgent`.
"""

from repro.lang.params import ParameterSet
from repro.lang.expr import Expr, Const, Param, P
from repro.lang.constructs import (
    TaskConfig,
    TaskConstruct,
    SelectBranch,
    SelectConstruct,
    LoopConstruct,
)
from repro.lang.program import TunableProgram
from repro.lang.preprocess import enumerate_paths, build_agent, build_job

__all__ = [
    "ParameterSet",
    "Expr",
    "Const",
    "Param",
    "P",
    "TaskConfig",
    "TaskConstruct",
    "SelectBranch",
    "SelectConstruct",
    "LoopConstruct",
    "TunableProgram",
    "enumerate_paths",
    "build_agent",
    "build_job",
]
