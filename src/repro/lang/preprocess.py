"""The preprocessor: enumerate execution paths, build QoS agents.

"The Calypso preprocessor uses these extensions to construct a QoS agent
for the program which embodies the task graph and tunability aspects of the
application" (Section 4).  Enumeration threads a control-parameter
environment through the construct sequence:

* at a ``task``, each configuration whose parameter values *unify* with the
  environment branches the path and binds its values;
* at a ``task_select``, each branch whose ``when`` expression is true
  branches the path; its ``finally`` assignments run (assignment semantics:
  they may overwrite) after its body;
* at a ``task_loop``, the body repeats ``count`` times (``count`` evaluated
  under the environment), with the optional loop variable bound to the
  iteration index.

Every complete path becomes a :class:`~repro.model.chain.TaskChain` whose
``params`` record the final environment — the exact configuration the QoS
agent must apply if that path is granted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.errors import InvalidJobError, ProgramStructureError
from repro.lang.constructs import (
    Construct,
    LoopConstruct,
    SelectConstruct,
    TaskConstruct,
)
from repro.lang.expr import Expr
from repro.lang.program import TunableProgram
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec
from repro.qos.agent import QoSAgent

__all__ = ["PathInfo", "enumerate_paths", "enumerate_paths_detailed", "build_job", "build_agent"]

#: Safety valve against loop/select path explosion.
DEFAULT_MAX_PATHS = 4096


@dataclass(frozen=True, slots=True)
class PathInfo:
    """One enumerated path: the concrete chain plus its task constructs.

    ``constructs`` aligns 1:1 with ``chain.tasks`` and lets the runtime
    integration find each task's executable body.
    """

    chain: TaskChain
    constructs: tuple[TaskConstruct, ...]

    @property
    def params(self) -> Mapping[str, object]:
        """Final parameter environment selecting this path."""
        return self.chain.params or {}


def _evaluate(value: object, env: Mapping[str, object]) -> object:
    return value.evaluate(env) if isinstance(value, Expr) else value


def _walk(
    constructs: Sequence[Construct],
    env: dict[str, object],
    acc_tasks: list[TaskSpec],
    acc_constructs: list[TaskConstruct],
    budget: list[int],
) -> Iterator[PathInfo]:
    if not constructs:
        if not acc_tasks:
            raise InvalidJobError("an execution path contributed no tasks")
        budget[0] -= 1
        if budget[0] < 0:
            raise ProgramStructureError(
                "path enumeration exceeded max_paths; raise the limit if the "
                "program is intentionally this tunable"
            )
        yield PathInfo(
            TaskChain(tuple(acc_tasks), params=dict(env)),
            tuple(acc_constructs),
        )
        return

    head, rest = constructs[0], constructs[1:]

    if isinstance(head, TaskConstruct):
        for cfg in head.configs:
            bound: list[str] = []
            ok = True
            for pname, pval in zip(head.parameter_list, cfg.values):
                if pname in env:
                    if env[pname] != pval:
                        ok = False
                        break
                else:
                    env[pname] = pval
                    bound.append(pname)
            if ok:
                # Deadline may reference loop variables and the parameters
                # this very configuration just bound.
                deadline = _evaluate(head.deadline, env)
                if not isinstance(deadline, (int, float)) or not deadline > 0:
                    raise ProgramStructureError(
                        f"task {head.name!r}: deadline evaluated to {deadline!r}"
                    )
                acc_tasks.append(head.spec_for(cfg, float(deadline)))
                acc_constructs.append(head)
                yield from _walk(rest, env, acc_tasks, acc_constructs, budget)
                acc_tasks.pop()
                acc_constructs.pop()
            for pname in bound:
                del env[pname]

    elif isinstance(head, SelectConstruct):
        any_viable = False
        for br in head.branches:
            cond = _evaluate(br.when, env)
            if not cond:
                continue
            any_viable = True
            # Branch body, then finally assignments, then the rest.  The
            # finally block uses assignment semantics, so we must snapshot
            # and restore the overwritten values on backtrack.
            for sub in _walk(list(br.body) + [_Finally(br.finally_binds)] + list(rest),
                             env, acc_tasks, acc_constructs, budget):
                yield sub
        if not any_viable:
            # Dead select: no branch ready under these bindings — this path
            # dies here (matches guard-pruning in the OR-graph model).
            return

    elif isinstance(head, _Finally):
        saved: dict[str, object] = {}
        added: list[str] = []
        for pname, bound_val in head.binds.items():
            value = _evaluate(bound_val, env)
            if pname in env:
                saved[pname] = env[pname]
            else:
                added.append(pname)
            env[pname] = value
        yield from _walk(rest, env, acc_tasks, acc_constructs, budget)
        for pname, old in saved.items():
            env[pname] = old
        for pname in added:
            del env[pname]

    elif isinstance(head, LoopConstruct):
        count = _evaluate(head.count, env)
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            raise ProgramStructureError(
                f"task_loop {head.name!r}: count evaluated to {count!r}; "
                "expected a non-negative integer"
            )
        unrolled: list[Construct | _Finally] = []
        for k in range(count):
            if head.var:
                unrolled.append(_Finally({head.var: k}))
            unrolled.extend(head.body)
        if head.var:
            # Leave the loop variable unbound after the loop.
            unrolled.append(_Unbind(head.var))
        yield from _walk(unrolled + list(rest), env, acc_tasks, acc_constructs, budget)

    elif isinstance(head, _Unbind):
        saved_val = env.pop(head.name, _MISSING)
        yield from _walk(rest, env, acc_tasks, acc_constructs, budget)
        if saved_val is not _MISSING:
            env[head.name] = saved_val

    else:  # pragma: no cover - closed union
        raise ProgramStructureError(f"unknown construct {head!r}")


class _Finally:
    """Internal marker: apply parameter assignments mid-walk."""

    __slots__ = ("binds",)

    def __init__(self, binds: Mapping[str, object]) -> None:
        self.binds = dict(binds)


class _Unbind:
    """Internal marker: remove a loop variable from the environment."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


_MISSING = object()


def enumerate_paths_detailed(
    program: TunableProgram, max_paths: int = DEFAULT_MAX_PATHS
) -> list[PathInfo]:
    """Every viable execution path, with per-task construct back-references."""
    env = program.parameters.initial_env()
    budget = [max_paths]
    paths = list(_walk(list(program.body), env, [], [], budget))
    if not paths:
        raise InvalidJobError(
            f"program {program.name!r} has no viable execution path"
        )
    return paths


def enumerate_paths(
    program: TunableProgram, max_paths: int = DEFAULT_MAX_PATHS
) -> list[TaskChain]:
    """Every viable execution path as a concrete task chain."""
    return [p.chain for p in enumerate_paths_detailed(program, max_paths)]


def build_job(
    program: TunableProgram, release: float = 0.0, max_paths: int = DEFAULT_MAX_PATHS
) -> Job:
    """The program as a tunable job released at ``release``."""
    return Job.tunable_of(
        enumerate_paths(program, max_paths), release=release, name=program.name
    )


def build_agent(
    program: TunableProgram, max_paths: int = DEFAULT_MAX_PATHS
) -> QoSAgent:
    """Construct the program's QoS agent (the preprocessing step of §4)."""
    return QoSAgent(program.name, enumerate_paths(program, max_paths))
