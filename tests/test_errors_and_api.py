"""Tests for the exception hierarchy and the top-level public API."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_single_root(self):
        leaves = [
            errors.InvalidTaskError,
            errors.InvalidChainError,
            errors.InvalidJobError,
            errors.InfeasibleRequestError,
            errors.CapacityExceededError,
            errors.ScheduleConsistencyError,
            errors.NegotiationError,
            errors.ConfigurationError,
            errors.ControlParameterError,
            errors.ProgramStructureError,
            errors.ConcurrentWriteError,
            errors.StepStateError,
            errors.SimulationError,
            errors.WorkloadError,
        ]
        for cls in leaves:
            assert issubclass(cls, errors.ReproError)

    def test_subsystem_bases(self):
        assert issubclass(errors.InvalidTaskError, errors.ModelError)
        assert issubclass(errors.CapacityExceededError, errors.SchedulingError)
        assert issubclass(errors.ControlParameterError, errors.LanguageError)
        assert issubclass(errors.ConcurrentWriteError, errors.CalypsoError)

    def test_admission_rejected_payload(self):
        exc = errors.AdmissionRejected(42, reason="overload")
        assert exc.job_id == 42
        assert "overload" in str(exc)

    def test_all_exported_names_exist(self):
        for name in errors.__all__:
            assert hasattr(errors, name), name


class TestTopLevelAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet(self):
        """The README quickstart must actually run."""
        from repro import QoSArbitrator, SyntheticParams

        params = SyntheticParams(x=16, t=25.0, alpha=0.5, laxity=0.5)
        arbitrator = QoSArbitrator(capacity=16)
        decision = arbitrator.submit(params.tunable_job(release=0.0))
        assert decision.admitted
        assert decision.chain_index in (0, 1)

    def test_docstrings_on_public_modules(self):
        import importlib

        for module_name in (
            "repro.core.profile",
            "repro.core.holes",
            "repro.core.greedy",
            "repro.core.malleable",
            "repro.core.arbitrator",
            "repro.model.job",
            "repro.lang.preprocess",
            "repro.qos.agent",
            "repro.calypso.runtime",
            "repro.sim.simulator",
            "repro.sim.executor",
            "repro.workloads.synthetic",
        ):
            module = importlib.import_module(module_name)
            assert module.__doc__ and len(module.__doc__) > 80, module_name
