"""Unit tests for the experiment registry and CLI."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.__main__ import main


class TestRegistry:
    def test_all_figures_registered(self):
        for exp_id in ("fig5a", "fig5b", "fig5c", "fig5d", "fig6a", "fig6b", "fig2"):
            assert exp_id in EXPERIMENTS

    def test_ablations_registered(self):
        assert any(k.startswith("ablation-") for k in EXPERIMENTS)

    def test_extensions_registered(self):
        for exp_id in ("best-effort", "quality", "survival"):
            assert exp_id in EXPERIMENTS

    def test_unknown_id(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            run_experiment("fig99")

    def test_fig2_runs(self):
        report = run_experiment("fig2")
        assert "granularity" in report
        assert "fine" in report and "coarse" in report


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5a" in out

    def test_run_one(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "=== fig2 ===" in out

    def test_unknown_id_clean_error(self, capsys):
        assert main(["fig99", "fig2"]) == 2
        captured = capsys.readouterr()
        assert "unknown experiment id(s): fig99" in captured.err
        assert "known ids:" in captured.err
        assert "fig5a" in captured.err
        # Nothing ran: ids are validated up front.
        assert "=== fig2 ===" not in captured.out

    def test_unknown_id_lists_all_bad_ids(self, capsys):
        assert main(["nope", "also-nope"]) == 2
        err = capsys.readouterr().err
        assert "nope" in err and "also-nope" in err

    def test_full_scale_flag(self, monkeypatch, capsys):
        from repro.experiments import registry
        from repro.workloads import presets

        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        calls = {}

        def fake_runner():
            calls["full"] = presets.full_scale()
            return "ok"

        monkeypatch.setitem(registry.EXPERIMENTS, "fake", fake_runner)
        assert main(["--full-scale", "fake"]) == 0
        assert calls["full"] is True
        # The flag is scoped to the invocation, not leaked into the env.
        assert not presets.full_scale()

    def test_jobs_and_cache_flags(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import registry
        from repro.runner import get_default_runner
        from repro.workloads.sweep import SweepConfig, run_sweep

        def tiny_sweep():
            sweep = run_sweep("interval", [25.0], SweepConfig(n_jobs=40))
            return f"units={len(sweep.values) * len(sweep.systems)}"

        monkeypatch.setitem(registry.EXPERIMENTS, "tiny", tiny_sweep)
        cache_dir = tmp_path / "cache"
        assert main(["tiny", "--jobs", "2", "--cache-dir", str(cache_dir)]) == 0
        assert cache_dir.exists()
        err = capsys.readouterr().err
        assert "[runner]" in err and "cache_misses=3" in err
        # Second invocation: warm cache.
        assert main(["tiny", "--cache-dir", str(cache_dir)]) == 0
        assert "cache_hits=3" in capsys.readouterr().err
        # The scoped default runner was restored afterwards.
        assert get_default_runner().cache is None

    def test_no_cache_flag(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import registry
        from repro.workloads.sweep import SweepConfig, run_sweep

        monkeypatch.setitem(
            registry.EXPERIMENTS,
            "tiny",
            lambda: str(
                run_sweep("interval", [25.0], SweepConfig(n_jobs=40)).values
            ),
        )
        monkeypatch.chdir(tmp_path)
        assert main(["tiny", "--no-cache"]) == 0
        err = capsys.readouterr().err
        assert "cache_hits=0" in err and "cache_misses=0" in err
        assert not (tmp_path / ".repro-cache").exists()
