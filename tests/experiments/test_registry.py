"""Unit tests for the experiment registry and CLI."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.__main__ import main


class TestRegistry:
    def test_all_figures_registered(self):
        for exp_id in ("fig5a", "fig5b", "fig5c", "fig5d", "fig6a", "fig6b", "fig2"):
            assert exp_id in EXPERIMENTS

    def test_ablations_registered(self):
        assert any(k.startswith("ablation-") for k in EXPERIMENTS)

    def test_extensions_registered(self):
        for exp_id in ("best-effort", "quality", "survival"):
            assert exp_id in EXPERIMENTS

    def test_unknown_id(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            run_experiment("fig99")

    def test_fig2_runs(self):
        report = run_experiment("fig2")
        assert "granularity" in report
        assert "fine" in report and "coarse" in report


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5a" in out

    def test_run_one(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "=== fig2 ===" in out
