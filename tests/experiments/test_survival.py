"""Tests for the capacity-drop survival experiment (extension)."""

import pytest

from repro.experiments.survival import render_survival, run_survival


@pytest.fixture(scope="module")
def points():
    return run_survival(new_capacities=(20, 12), n_jobs=200)


class TestSurvival:
    def test_structure(self, points):
        assert len(points) == 6  # 3 systems x 2 capacities
        for p in points:
            assert p.carried + p.reallocated + p.dropped == p.affected
            assert 0.0 <= p.survival_rate <= 1.0

    def test_tunable_switches_paths(self, points):
        tunable = [p for p in points if p.system == "tunable"]
        assert any(p.path_switches > 0 for p in tunable)
        rigid = [p for p in points if p.system != "tunable"]
        assert all(p.path_switches == 0 for p in rigid)

    def test_tunable_survives_moderate_drop_best(self, points):
        at20 = {p.system: p for p in points if p.new_capacity == 20}
        assert at20["tunable"].survival_rate >= at20["shape1"].survival_rate
        assert at20["tunable"].survival_rate >= at20["shape2"].survival_rate

    def test_sub_width_drop_kills_rigid_tasks(self, points):
        """Dropping below the tall task's width (16) strands everyone —
        rigid tasks cannot shrink in this model."""
        at12 = {p.system: p for p in points if p.new_capacity == 12}
        for p in at12.values():
            assert p.survival_rate < 0.1

    def test_render(self, points):
        text = render_survival(points)
        assert "survival" in text
        assert "path_switches" in text
