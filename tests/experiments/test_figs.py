"""Small-scale runs of the figure experiments (structure, not shape).

Shape assertions against the paper's claims live in
tests/integration/test_paper_claims.py; these tests only check that the
experiment runners produce well-formed output quickly.
"""

import pytest

from repro.experiments.fig5 import render_fig5, run_fig5a, run_fig5b
from repro.experiments.fig6 import render_fig6, run_fig6_panel
from repro.experiments.junction_fig2 import render_fig2, run_fig2
from repro.workloads import SweepConfig, presets
from repro.workloads.sweep import run_sweep


class TestFig5Runners:
    def test_fig5a_structure(self):
        sweep = run_fig5a(n_jobs=50)
        assert sweep.axis == "interval"
        assert sweep.values == presets.FIG5A_INTERVALS
        assert set(sweep.systems) == {"tunable", "shape1", "shape2"}

    def test_fig5b_structure(self):
        sweep = run_fig5b(n_jobs=50)
        assert sweep.axis == "laxity"
        assert sweep.values == presets.FIG5B_LAXITIES

    def test_render(self):
        sweep = run_sweep(
            "interval", [20.0, 60.0], SweepConfig(n_jobs=40, seed=3)
        )
        text = render_fig5(sweep, "a")
        assert "utilization vs interval" in text
        assert "throughput" in text


class TestFig6Runners:
    def test_panel_structure(self):
        panel = run_fig6_panel(malleable=False, n_jobs=50)
        assert panel.interval_sweep.axis == "interval"
        assert panel.laxity_sweep.axis == "laxity"
        rows = panel.benefit_rows("interval")
        assert len(rows) == len(presets.FIG6_INTERVALS)
        assert "benefit_over_shape1" in rows[0]

    def test_render(self):
        panel = run_fig6_panel(malleable=True, n_jobs=40)
        text = render_fig6(panel)
        assert "malleable" in text
        assert "benefit" in text


class TestFig2Runner:
    def test_rows(self):
        rows = run_fig2(n_images=2, size=128)
        assert len(rows) == 2
        fine, coarse = rows
        assert fine.granularity < coarse.granularity
        assert coarse.step1_work < fine.step1_work
        assert coarse.step3_work > fine.step3_work
        assert 0 <= fine.f1 <= 1

    def test_render(self):
        text = render_fig2(run_fig2(n_images=1))
        assert "junction detection" in text
