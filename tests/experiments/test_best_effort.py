"""Tests for the reservation-vs-best-effort comparison (extension)."""

import pytest

from repro.experiments.best_effort import (
    render_best_effort,
    run_best_effort_comparison,
)


@pytest.fixture(scope="module")
def rows():
    return run_best_effort_comparison(intervals=(12.0, 40.0, 85.0), n_jobs=200)


class TestBestEffortComparison:
    def test_structure(self, rows):
        assert [r.interval for r in rows] == [12.0, 40.0, 85.0]
        for r in rows:
            assert r.offered == 200
            assert 0 <= r.edf_goodput_utilization <= r.edf_utilization <= 1 + 1e-9

    def test_reservations_win_under_overload(self, rows):
        overloaded = rows[0]
        assert overloaded.reservation_on_time > overloaded.edf_on_time

    def test_edf_wastes_work_under_overload(self, rows):
        assert rows[0].edf_wasted_area > 0

    def test_convergence_under_light_load(self, rows):
        light = rows[-1]
        ratio = light.edf_on_time / max(light.reservation_on_time, 1)
        assert ratio > 0.85

    def test_render(self, rows):
        text = render_best_effort(rows)
        assert "resv_on_time" in text
        assert "edf_wasted" in text
