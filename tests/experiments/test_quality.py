"""Tests for the quality-degradation experiment (extension)."""

import pytest

from repro.experiments.quality import render_quality, run_quality_degradation


@pytest.fixture(scope="module")
def points():
    return run_quality_degradation(intervals=(15.0, 45.0, 85.0), n_jobs=250)


class TestQualityDegradation:
    def test_structure(self, points):
        assert len(points) == 6  # 3 intervals x 2 objectives
        for p in points:
            assert p.offered == 250
            assert 0 <= p.quality_ratio <= 1
            assert sum(p.tier_usage.values()) == p.admitted

    def test_graceful_degradation(self, points):
        """Quality ratio rises with arrival interval for both objectives."""
        for objective in ("max-quality", "earliest-finish"):
            series = [
                p.quality_ratio
                for p in points
                if p.objective == objective
            ]
            assert series == sorted(series)

    def test_premium_share_rises_with_headroom(self, points):
        maxq = [p for p in points if p.objective == "max-quality"]
        shares = [
            p.tier_usage["premium"] / p.admitted for p in maxq if p.admitted
        ]
        assert shares[-1] > shares[0]

    def test_render(self, points):
        text = render_quality(points)
        assert "quality_ratio" in text
        assert "premium" in text
