"""Unit tests for trace records and Gantt rendering."""

from repro.core.placement import ChainPlacement, Placement
from repro.core.resources import ProcessorTimeRequest
from repro.core.schedule import Schedule
from repro.model.chain import TaskChain
from repro.model.task import TaskSpec
from repro.sim.trace import (
    records_to_csv,
    render_gantt,
    schedule_records,
)


def committed_schedule():
    s = Schedule(4)
    chain = TaskChain(
        (
            TaskSpec("a", ProcessorTimeRequest(2, 5.0), deadline=100.0),
            TaskSpec("b", ProcessorTimeRequest(1, 3.0), deadline=100.0),
        )
    )
    s.commit(
        ChainPlacement(
            job_id=3,
            chain_index=0,
            chain=chain,
            placements=(
                Placement.rigid(chain[0], 0.0),
                Placement.rigid(chain[1], 5.0),
            ),
            release=0.0,
        )
    )
    return s


class TestRecords:
    def test_flatten_sorted(self):
        records = schedule_records(committed_schedule())
        assert [(r.task, r.start) for r in records] == [("a", 0.0), ("b", 5.0)]
        assert records[0].duration == 5.0
        assert records[0].job_id == 3

    def test_csv(self):
        csv = records_to_csv(schedule_records(committed_schedule()))
        lines = csv.strip().split("\n")
        assert lines[0].startswith("job_id,")
        assert len(lines) == 3
        assert "3,0,a,0,5,2" in lines[1]


class TestGantt:
    def test_empty(self):
        assert "empty" in render_gantt(Schedule(2))

    def test_rows_per_job(self):
        text = render_gantt(committed_schedule(), width=40)
        assert "job    3" in text
        assert "#" in text

    def test_window_clipping(self):
        text = render_gantt(committed_schedule(), width=40, t0=0.0, t1=4.0)
        assert "[0, 4]" in text
