"""Property tests: conservation invariants of the best-effort executor."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.arrivals import PoissonArrivals
from repro.sim.executor import ChainSelector, EDFExecutor
from repro.sim.rng import RandomStreams
from repro.workloads.synthetic import SyntheticParams


@given(
    seed=st.integers(0, 50),
    interval=st.sampled_from([3.0, 8.0, 20.0]),
    capacity=st.sampled_from([4, 8]),
    backfill=st.booleans(),
    selector=st.sampled_from(list(ChainSelector)),
)
def test_conservation_invariants(seed, interval, capacity, backfill, selector):
    params = SyntheticParams(x=4, t=5.0, alpha=0.5, laxity=0.5)
    n = 60
    arrivals = PoissonArrivals(interval, RandomStreams(seed)).times(n)
    executor = EDFExecutor(capacity, selector=selector, backfill=backfill)
    metrics = executor.run(params.tunable_job(t) for t in arrivals)

    # Every offered job is accounted for exactly once.
    assert metrics.offered == n
    assert metrics.on_time + metrics.late == n

    # Work accounting: wasted work is a subset of busy work; utilization
    # bounds hold; goodput never exceeds raw utilization.
    assert 0.0 <= metrics.wasted_area <= metrics.busy_area + 1e-9
    assert 0.0 <= metrics.utilization <= 1.0 + 1e-9
    assert metrics.goodput_utilization <= metrics.utilization + 1e-12

    # On-time jobs did their full chain's work; that work is not wasted:
    # each consumed at least the lighter chain's area.
    if metrics.on_time and metrics.horizon > 0:
        lighter = min(c.total_area for c in params.tunable_job(0.0).chains)
        assert (
            metrics.busy_area - metrics.wasted_area
            >= metrics.on_time * lighter - 1e-6
        )


@given(seed=st.integers(0, 20))
def test_strict_edf_never_beats_backfill(seed):
    """Backfilling can only help on-time counts for this workload family."""
    params = SyntheticParams(x=4, t=5.0, alpha=0.5, laxity=0.5)
    arrivals = list(PoissonArrivals(6.0, RandomStreams(seed)).times(80))

    def run(backfill):
        executor = EDFExecutor(8, backfill=backfill)
        return executor.run(params.tunable_job(t) for t in arrivals)

    with_bf = run(True)
    without_bf = run(False)
    # Not a theorem for adversarial inputs, but holds across this family;
    # a failure here would flag a dispatch regression.
    assert with_bf.on_time >= without_bf.on_time - 2
