"""Unit tests for the arrival-driven simulator."""

import pytest

from repro.core.arbitrator import QoSArbitrator
from repro.errors import SimulationError
from repro.sim.arrivals import DeterministicArrivals, TraceArrivals
from repro.sim.simulator import ArrivalSimulator, simulate_arrivals
from repro.workloads.synthetic import SyntheticParams


@pytest.fixture
def params():
    return SyntheticParams(x=4, t=10.0, alpha=0.5, laxity=0.5)


class TestRun:
    def test_counts_add_up(self, params):
        arb = QoSArbitrator(4)
        m = simulate_arrivals(
            arb,
            lambda i, r: params.tunable_job(r),
            DeterministicArrivals(10.0),
            20,
        )
        assert m.offered == 20
        assert m.admitted + m.rejected == 20
        assert m.admitted == arb.admitted

    def test_underloaded_admits_all(self, params):
        arb = QoSArbitrator(8)
        m = simulate_arrivals(
            arb,
            lambda i, r: params.tunable_job(r),
            DeterministicArrivals(40.0),
            10,
        )
        assert m.admitted == 10
        assert m.admit_rate == 1.0

    def test_overloaded_rejects_some(self, params):
        arb = QoSArbitrator(4)
        m = simulate_arrivals(
            arb,
            lambda i, r: params.tunable_job(r),
            DeterministicArrivals(1.0),
            30,
        )
        assert m.rejected > 0
        assert m.utilization > 0.5

    def test_arrival_disorder_rejected(self, params):
        arb = QoSArbitrator(4)
        sim = ArrivalSimulator(arb, lambda i, r: params.tunable_job(r))
        with pytest.raises(SimulationError):
            sim.run([5.0, 3.0])

    def test_factory_release_mismatch_rejected(self, params):
        arb = QoSArbitrator(4)
        sim = ArrivalSimulator(arb, lambda i, r: params.tunable_job(r + 1.0))
        with pytest.raises(SimulationError):
            sim.run([0.0])

    def test_horizon_is_last_finish(self, params):
        arb = QoSArbitrator(8)
        m = simulate_arrivals(
            arb,
            lambda i, r: params.tunable_job(r),
            TraceArrivals([0.0]),
            1,
        )
        assert m.horizon == arb.schedule.last_finish

    def test_chain_usage_propagated(self, params):
        arb = QoSArbitrator(8)
        m = simulate_arrivals(
            arb,
            lambda i, r: params.tunable_job(r),
            DeterministicArrivals(50.0),
            6,
        )
        assert sum(m.chain_usage.values()) == m.admitted

    def test_verification_accepts_correct_scheduler(self, params):
        """verify=True passes silently for the real scheduler."""
        arb = QoSArbitrator(4)
        simulate_arrivals(
            arb,
            lambda i, r: params.tunable_job(r),
            DeterministicArrivals(5.0),
            50,
            verify=True,
        )

    def test_perf_snapshot_propagated(self, params):
        """Every run carries the hot-path instrumentation in metrics.perf."""
        arb = QoSArbitrator(4)
        m = simulate_arrivals(
            arb,
            lambda i, r: params.tunable_job(r),
            DeterministicArrivals(10.0),
            15,
        )
        assert m.perf["decision_count"] == 15
        assert m.perf["decision_p95_us"] >= m.perf["decision_p50_us"] > 0
        assert m.perf["commits"] == m.admitted
        assert m.perf["profile_shift_ops"] >= m.admitted
        assert m.perf["chains_probed"] >= m.offered
        # Wall-clock diagnostics stay out of the experiment-result dict.
        assert "decision_p50_us" not in m.as_dict()
