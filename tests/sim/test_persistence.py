"""Unit tests for JSON workload/metrics persistence."""

import json
import math

import pytest

from repro.core.arbitrator import QoSArbitrator
from repro.errors import ConfigurationError
from repro.sim.arrivals import PoissonArrivals
from repro.sim.persistence import (
    dump_workload,
    job_from_dict,
    job_to_dict,
    load_workload,
    metrics_from_dict,
    metrics_to_dict,
)
from repro.sim.rng import RandomStreams
from repro.sim.simulator import simulate_arrivals
from repro.workloads.synthetic import SyntheticParams


@pytest.fixture
def params():
    return SyntheticParams(x=4, t=10.0, alpha=0.5, laxity=0.5)


class TestJobRoundTrip:
    def test_tunable_job(self, params):
        job = params.tunable_job(release=12.5)
        back = job_from_dict(job_to_dict(job))
        assert back.job_id == job.job_id
        assert back.release == job.release
        assert back.name == job.name
        assert len(back.chains) == 2
        for a, b in zip(job.chains, back.chains):
            assert a.label == b.label
            assert dict(a.params) == dict(b.params)
            for ta, tb in zip(a.tasks, b.tasks):
                assert ta == tb

    def test_infinite_deadline(self, params):
        import repro.model.task as task_mod
        from repro.core.resources import ProcessorTimeRequest
        from repro.model.chain import TaskChain
        from repro.model.job import Job

        chain = TaskChain(
            (task_mod.TaskSpec("t", ProcessorTimeRequest(1, 1.0)),)
        )
        job = Job.rigid(chain)
        back = job_from_dict(job_to_dict(job))
        assert math.isinf(back.chains[0][0].deadline)


class TestWorkloadRoundTrip:
    def test_full_sequence(self, params):
        arrivals = PoissonArrivals(10.0, RandomStreams(4)).times(20)
        jobs = [params.tunable_job(t) for t in arrivals]
        text = dump_workload(jobs, note="test")
        loaded = load_workload(text)
        assert len(loaded) == 20
        assert [j.release for j in loaded] == [j.release for j in jobs]

    def test_replay_reproduces_metrics(self, params):
        arrivals = list(PoissonArrivals(6.0, RandomStreams(4)).times(40))
        jobs = [params.tunable_job(t) for t in arrivals]
        loaded = load_workload(dump_workload(jobs))

        def run(job_list):
            arb = QoSArbitrator(4, keep_placements=False)
            out = [arb.submit(j) for j in job_list]
            return [(d.admitted, d.chain_index) for d in out]

        assert run(jobs) == run(loaded)

    def test_version_check(self):
        bad = json.dumps({"version": 99, "jobs": []})
        with pytest.raises(ConfigurationError):
            load_workload(bad)

    def test_disorder_rejected(self, params):
        jobs = [params.tunable_job(10.0), params.tunable_job(5.0)]
        text = dump_workload(jobs)
        with pytest.raises(ConfigurationError):
            load_workload(text)


class TestMetricsRoundTrip:
    def test_roundtrip(self, params):
        arb = QoSArbitrator(4, keep_placements=False)
        metrics = simulate_arrivals(
            arb,
            lambda i, r: params.tunable_job(r),
            PoissonArrivals(8.0, RandomStreams(1)),
            30,
        )
        back = metrics_from_dict(metrics_to_dict(metrics))
        assert back == metrics

    def test_nan_roundtrip(self):
        from repro.sim.metrics import MetricsCollector

        empty = MetricsCollector().finalize(0.0, {}, 0.0, 0.0)
        back = metrics_from_dict(metrics_to_dict(empty))
        assert math.isnan(back.mean_response)
        assert back.offered == 0

    def test_version_check(self):
        with pytest.raises(ConfigurationError):
            metrics_from_dict({"version": 0})

    def test_resilience_block_roundtrip(self, params):
        """A perturbed run's nested resilience block survives the JSON hop
        exactly (it is how the result cache persists fault experiments)."""
        from repro.resilience.events import FaultModel, generate_trace
        from repro.resilience.simulator import simulate_resilient

        arrivals = list(PoissonArrivals(8.0, RandomStreams(1)).times(60))
        trace = generate_trace(
            FaultModel(fault_rate=2e-3, mean_repair=50.0, overrun_prob=0.15),
            RandomStreams(1),
            horizon=arrivals[-1] + 100.0,
            base_capacity=8,
            n_arrivals=60,
        )
        assert not trace.empty
        arb = QoSArbitrator(8, keep_placements=True)
        metrics = simulate_resilient(
            arb, lambda i, r: params.tunable_job(r), arrivals, trace
        )
        assert metrics.resilience  # the block is populated
        payload = metrics_to_dict(metrics)
        assert "resilience" in payload
        back = metrics_from_dict(payload)
        assert back == metrics
        assert back.resilience == metrics.resilience
