"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_run_processes_in_order(self):
        eng = SimulationEngine()
        seen = []
        eng.on("tick", lambda e, ev: seen.append(ev.time))
        eng.at(3.0, "tick")
        eng.at(1.0, "tick")
        eng.at(2.0, "tick")
        assert eng.run() == 3
        assert seen == [1.0, 2.0, 3.0]
        assert eng.now == 3.0
        assert eng.processed == 3

    def test_after_relative(self):
        eng = SimulationEngine(start_time=10.0)
        eng.on("x", lambda e, ev: None)
        eng.after(5.0, "x")
        eng.run()
        assert eng.now == 15.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().after(-1.0, "x")

    def test_past_scheduling_rejected(self):
        eng = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            eng.at(5.0, "x")

    def test_handlers_can_schedule(self):
        eng = SimulationEngine()
        seen = []

        def handler(engine, ev):
            seen.append(ev.time)
            if ev.time < 3.0:
                engine.after(1.0, "tick")

        eng.on("tick", handler)
        eng.at(1.0, "tick")
        eng.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_run_until(self):
        eng = SimulationEngine()
        seen = []
        eng.on("x", lambda e, ev: seen.append(ev.time))
        for t in (1.0, 2.0, 3.0):
            eng.at(t, "x")
        eng.run(until=2.0)
        assert seen == [1.0, 2.0]
        assert eng.pending == 1

    def test_run_until_advances_clock_past_last_event(self):
        # Regression: run(until=...) used to leave `now` at the last
        # processed event when the queue drained early, so a later
        # `after(...)` was anchored too early and back-to-back windowed
        # runs observed a clock that lagged the simulated interval.
        eng = SimulationEngine()
        eng.on("x", lambda e, ev: None)
        eng.at(1.0, "x")
        eng.run(until=10.0)
        assert eng.now == 10.0

    def test_run_until_advances_clock_on_empty_queue(self):
        eng = SimulationEngine()
        eng.run(until=5.0)
        assert eng.now == 5.0

    def test_run_until_windows_are_contiguous(self):
        eng = SimulationEngine()
        seen = []
        eng.on("x", lambda e, ev: seen.append(ev.time))
        eng.at(1.0, "x")
        eng.at(12.0, "x")
        eng.run(until=10.0)
        assert eng.now == 10.0
        # Scheduling relative to the window edge must land at 10 + delta.
        eng.after(5.0, "x")
        eng.run(until=20.0)
        assert seen == [1.0, 12.0, 15.0]
        assert eng.now == 20.0

    def test_run_until_infinite_keeps_last_event_time(self):
        eng = SimulationEngine()
        eng.on("x", lambda e, ev: None)
        eng.at(3.0, "x")
        eng.run()  # until defaults to +inf: clock stays at the last event
        assert eng.now == 3.0

    def test_max_events_stop_does_not_jump_to_until(self):
        eng = SimulationEngine()
        eng.on("x", lambda e, ev: None)
        for t in (1.0, 2.0, 3.0):
            eng.at(t, "x")
        eng.run(until=10.0, max_events=2)
        # Work at or before `until` remains: the clock must not skip it.
        assert eng.now == 2.0
        assert eng.pending == 1

    def test_max_events(self):
        eng = SimulationEngine()
        eng.on("x", lambda e, ev: None)
        for t in range(5):
            eng.at(float(t), "x")
        assert eng.run(max_events=2) == 2
        assert eng.pending == 3

    def test_cancel(self):
        eng = SimulationEngine()
        seen = []
        eng.on("x", lambda e, ev: seen.append(ev.kind))
        ev = eng.at(1.0, "x")
        eng.cancel(ev)
        eng.run()
        assert seen == []

    def test_multiple_handlers_in_order(self):
        eng = SimulationEngine()
        order = []
        eng.on("x", lambda e, ev: order.append("first"))
        eng.on("x", lambda e, ev: order.append("second"))
        eng.at(0.0, "x")
        eng.run()
        assert order == ["first", "second"]

    def test_unknown_kind_is_noop(self):
        eng = SimulationEngine()
        eng.at(1.0, "nobody-listens")
        assert eng.run() == 1

    def test_not_reentrant(self):
        eng = SimulationEngine()

        def recurse(engine, ev):
            with pytest.raises(SimulationError):
                engine.run()

        eng.on("x", recurse)
        eng.at(0.0, "x")
        eng.run()
