"""Unit tests for deterministic random streams."""

import pytest

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(42).python("x")
        b = RandomStreams(42).python("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        s = RandomStreams(42)
        xs = [s.python("x").random() for _ in range(1)]
        ys = [s.python("y").random() for _ in range(1)]
        assert xs != ys

    def test_different_seeds_differ(self):
        assert (
            RandomStreams(1).python("x").random()
            != RandomStreams(2).python("x").random()
        )

    def test_numpy_streams(self):
        a = RandomStreams(7).numpy("arr")
        b = RandomStreams(7).numpy("arr")
        assert (a.random(4) == b.random(4)).all()

    def test_child_streams(self):
        a = RandomStreams(7).child("sub").python("x").random()
        b = RandomStreams(7).child("sub").python("x").random()
        c = RandomStreams(7).child("other").python("x").random()
        assert a == b != c

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams("nope")  # type: ignore[arg-type]

    def test_stream_isolation_from_consumption(self):
        """Drawing from one stream never shifts another."""
        s = RandomStreams(3)
        first = s.python("a").random()
        burner = s.python("b")
        for _ in range(100):
            burner.random()
        assert s.python("a").random() == first
