"""Unit tests for the event queue."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue


class TestEvent:
    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            Event(math.nan, "x")

    def test_sort_key(self):
        e = Event(1.0, "x", priority=2, seq=5)
        assert e.sort_key == (1.0, 2, 5)


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.push(Event(3.0, "c"))
        q.push(Event(1.0, "a"))
        q.push(Event(2.0, "b"))
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(Event(1.0, "low", priority=5))
        q.push(Event(1.0, "high", priority=0))
        assert q.pop().kind == "high"

    def test_insertion_order_final_tiebreak(self):
        q = EventQueue()
        q.push(Event(1.0, "first"))
        q.push(Event(1.0, "second"))
        assert q.pop().kind == "first"

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(Event(1.0, "x"))
        assert q and len(q) == 1
        q.pop()
        assert not q

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() == math.inf
        q.push(Event(4.0, "x"))
        assert q.peek_time() == 4.0
        assert len(q) == 1  # peek does not consume

    def test_cancel(self):
        q = EventQueue()
        keep = q.push(Event(1.0, "keep"))
        kill = q.push(Event(0.5, "kill"))
        q.cancel(kill)
        assert len(q) == 1
        assert q.pop().kind == "keep"

    def test_cancel_unpushed_raises(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.cancel(Event(1.0, "x"))

    def test_cancel_idempotent(self):
        q = EventQueue()
        ev = q.push(Event(1.0, "x"))
        q.cancel(ev)
        q.cancel(ev)
        assert len(q) == 0

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        dead = q.push(Event(0.5, "dead"))
        q.push(Event(1.0, "live"))
        q.cancel(dead)
        assert q.peek_time() == 1.0

    def test_cancel_popped_event_is_noop(self):
        q = EventQueue()
        first = q.push(Event(1.0, "x"))
        q.push(Event(2.0, "y"))
        assert q.pop() is first
        q.cancel(first)  # stale handle: already popped
        assert len(q) == 1


class TestTombstoneCompaction:
    """Cancelled events must not accumulate in the heap (see class docs)."""

    def test_cancel_heavy_heap_stays_bounded(self):
        q = EventQueue()
        survivor = q.push(Event(0.0, "keep"))
        for _ in range(10):
            batch = [q.push(Event(float(i + 1), "kill")) for i in range(1_000)]
            for ev in batch:
                q.cancel(ev)
        # 10k events cancelled without a single pop: the heap must track
        # the live count, not the all-time push count.
        assert len(q) == 1
        assert len(q._heap) <= 2 * EventQueue._COMPACT_MIN_DEAD
        assert q.pop() is survivor

    def test_order_preserved_across_compaction(self):
        q = EventQueue()
        evs = [
            q.push(Event(float((i * 7) % 50), "k", priority=i % 3))
            for i in range(400)
        ]
        for ev in evs[::2]:
            q.cancel(ev)
        popped = [q.pop() for _ in range(len(q))]
        expected = sorted(evs[1::2], key=lambda e: e.sort_key)
        assert [e.seq for e in popped] == [e.seq for e in expected]
        assert not q

    def test_double_cancel_across_compaction_keeps_count(self):
        q = EventQueue()
        evs = [q.push(Event(float(i), "x")) for i in range(200)]
        for ev in evs[:150]:  # crosses the compaction threshold
            q.cancel(ev)
        for ev in evs[:150]:  # all stale handles now — must be no-ops
            q.cancel(ev)
        assert len(q) == 50
        assert [q.pop().time for _ in range(50)] == [float(i) for i in range(150, 200)]
        with pytest.raises(SimulationError):
            q.pop()
