"""Unit and property tests for arrival processes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.sim.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.sim.rng import RandomStreams


class TestPoisson:
    def test_monotone(self):
        times = list(PoissonArrivals(10.0, RandomStreams(1)).times(500))
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_reproducible(self):
        a = list(PoissonArrivals(10.0, RandomStreams(1)).times(50))
        b = list(PoissonArrivals(10.0, RandomStreams(1)).times(50))
        assert a == b

    def test_mean_interval_approx(self):
        times = list(PoissonArrivals(10.0, RandomStreams(3)).times(5000))
        gaps = np.diff([0.0] + times)
        assert np.mean(gaps) == pytest.approx(10.0, rel=0.1)

    def test_start_offset(self):
        times = list(PoissonArrivals(5.0, RandomStreams(1), start=100.0).times(3))
        assert times[0] > 100.0

    def test_invalid_interval(self):
        with pytest.raises(WorkloadError):
            PoissonArrivals(0.0, RandomStreams(1))

    def test_negative_count(self):
        with pytest.raises(WorkloadError):
            list(PoissonArrivals(1.0, RandomStreams(1)).times(-1))

    def test_protocol(self):
        assert isinstance(PoissonArrivals(1.0, RandomStreams(1)), ArrivalProcess)


class TestDeterministic:
    def test_even_spacing(self):
        assert list(DeterministicArrivals(2.5).times(4)) == [2.5, 5.0, 7.5, 10.0]

    def test_start(self):
        assert list(DeterministicArrivals(1.0, start=10.0).times(2)) == [11.0, 12.0]

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            DeterministicArrivals(-1.0)


class TestTrace:
    def test_replay(self):
        trace = TraceArrivals([1.0, 2.0, 5.0])
        assert list(trace.times(2)) == [1.0, 2.0]

    def test_exhaustion(self):
        with pytest.raises(WorkloadError):
            list(TraceArrivals([1.0]).times(2))

    def test_disorder_rejected(self):
        with pytest.raises(WorkloadError):
            TraceArrivals([2.0, 1.0])

    def test_nonfinite_rejected(self):
        with pytest.raises(WorkloadError):
            TraceArrivals([1.0, float("inf")])


class TestBursty:
    def test_monotone_and_reproducible(self):
        a = list(
            BurstyArrivals(2.0, 20.0, RandomStreams(5)).times(200)
        )
        b = list(
            BurstyArrivals(2.0, 20.0, RandomStreams(5)).times(200)
        )
        assert a == b
        assert all(x <= y for x, y in zip(a, a[1:]))

    def test_mean_interval_property(self):
        p = BurstyArrivals(2.0, 20.0, RandomStreams(5))
        assert p.mean_interval == 11.0

    def test_burstier_than_poisson(self):
        """Coefficient of variation of gaps exceeds the Poisson CV of 1."""
        bursty = list(BurstyArrivals(2.0, 30.0, RandomStreams(7)).times(4000))
        gaps = np.diff([0.0] + bursty)
        cv = gaps.std() / gaps.mean()
        assert cv > 1.1

    def test_validation(self):
        with pytest.raises(WorkloadError):
            BurstyArrivals(0.0, 1.0, RandomStreams(1))
        with pytest.raises(WorkloadError):
            BurstyArrivals(1.0, 1.0, RandomStreams(1), mean_phase_len=0.5)


@given(st.integers(0, 50))
def test_poisson_yields_exactly_n(n):
    assert len(list(PoissonArrivals(3.0, RandomStreams(0)).times(n))) == n
