"""Unit tests for metrics collection."""

import math

import pytest

from repro.core.admission import AdmissionDecision
from repro.core.placement import ChainPlacement, Placement
from repro.core.resources import ProcessorTimeRequest
from repro.model.chain import TaskChain
from repro.model.task import TaskSpec
from repro.sim.metrics import MetricsCollector, RunMetrics


def decision(admitted=True, job_id=1, start=0.0, dur=5.0, release=0.0):
    if not admitted:
        return AdmissionDecision(job_id, False, None, reason="nope")
    chain = TaskChain(
        (TaskSpec("t", ProcessorTimeRequest(1, dur), deadline=100.0),)
    )
    cp = ChainPlacement(
        job_id=job_id,
        chain_index=0,
        chain=chain,
        placements=(Placement.rigid(chain[0], start),),
        release=release,
    )
    return AdmissionDecision(job_id, True, cp)


class TestCollector:
    def test_counts(self):
        mc = MetricsCollector()
        mc.observe(decision(True))
        mc.observe(decision(False))
        mc.observe(decision(True))
        m = mc.finalize(0.5, {0: 2}, 2.0, 10.0)
        assert (m.offered, m.admitted, m.rejected) == (3, 2, 1)
        assert m.throughput == 2
        assert m.admit_rate == pytest.approx(2 / 3)

    def test_response_stats(self):
        mc = MetricsCollector()
        mc.observe(decision(True, start=0.0, dur=5.0, release=0.0))   # resp 5
        mc.observe(decision(True, start=5.0, dur=5.0, release=0.0))   # resp 10
        m = mc.finalize(0.5, {}, 0.0, 10.0)
        assert m.mean_response == pytest.approx(7.5)
        assert m.p95_response <= 10.0

    def test_slack(self):
        mc = MetricsCollector()
        mc.observe(decision(True, start=0.0, dur=5.0), final_deadline=20.0)
        m = mc.finalize(0.5, {}, 0.0, 5.0)
        assert m.mean_slack == pytest.approx(15.0)

    def test_empty_run(self):
        m = MetricsCollector().finalize(0.0, {}, 0.0, 0.0)
        assert m.offered == 0
        assert math.isnan(m.mean_response)
        assert math.isnan(m.mean_slack)
        assert m.admit_rate == 0.0

    def test_as_dict_keys(self):
        m = MetricsCollector().finalize(0.0, {}, 0.0, 0.0)
        d = m.as_dict()
        for key in ("offered", "throughput", "utilization", "mean_response"):
            assert key in d

    def test_chain_usage_copied(self):
        usage = {0: 1}
        m = MetricsCollector().finalize(0.0, usage, 0.0, 0.0)
        usage[0] = 99
        assert m.chain_usage[0] == 1
