"""Unit tests for the best-effort EDF executor (extension)."""

import pytest

from repro.core.resources import ProcessorTimeRequest
from repro.errors import ConfigurationError, SimulationError
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec
from repro.sim.executor import BestEffortMetrics, ChainSelector, EDFExecutor
from repro.workloads.synthetic import SyntheticParams


def job(procs=2, dur=5.0, deadline=20.0, release=0.0, tasks=1):
    chain = TaskChain(
        tuple(
            TaskSpec(
                f"t{i}",
                ProcessorTimeRequest(procs, dur),
                deadline=deadline * (i + 1),
            )
            for i in range(tasks)
        )
    )
    return Job.rigid(chain, release=release)


class TestBasics:
    def test_single_job_completes(self):
        m = EDFExecutor(4).run([job()])
        assert m.offered == 1
        assert m.on_time == 1
        assert m.late == 0
        assert m.busy_area == pytest.approx(10.0)
        assert m.horizon == pytest.approx(5.0)

    def test_chain_runs_sequentially(self):
        m = EDFExecutor(4).run([job(tasks=3, deadline=100.0)])
        assert m.on_time == 1
        assert m.horizon == pytest.approx(15.0)

    def test_parallel_jobs_share_machine(self):
        jobs = [job(procs=2, dur=5.0, release=0.0) for _ in range(2)]
        m = EDFExecutor(4).run(jobs)
        assert m.on_time == 2
        assert m.horizon == pytest.approx(5.0)  # both ran concurrently

    def test_queueing_when_machine_full(self):
        jobs = [job(procs=4, dur=5.0, deadline=50.0, release=0.0) for _ in range(3)]
        m = EDFExecutor(4).run(jobs)
        assert m.on_time == 3
        assert m.horizon == pytest.approx(15.0)  # serialized

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EDFExecutor(0)

    def test_release_order_enforced(self):
        with pytest.raises(SimulationError):
            EDFExecutor(4).run([job(release=5.0), job(release=0.0)])


class TestDeadlines:
    def test_late_job_dropped(self):
        # Machine busy with job A; job B's deadline is too tight to wait.
        a = job(procs=4, dur=10.0, deadline=10.0, release=0.0)
        b = job(procs=4, dur=5.0, deadline=6.0, release=1.0)
        m = EDFExecutor(4).run([a, b])
        assert m.on_time == 1
        assert m.late == 1

    def test_edf_order_prefers_tighter_deadline(self):
        # Two queued jobs; the later-arriving but tighter one runs first.
        blocker = job(procs=4, dur=5.0, deadline=100.0, release=0.0)
        loose = job(procs=4, dur=5.0, deadline=100.0, release=1.0)
        tight = job(procs=4, dur=5.0, deadline=11.0, release=2.0)
        m = EDFExecutor(4).run([blocker, loose, tight])
        assert m.on_time == 3  # tight fits only if it preceded loose

    def test_wasted_work_counted(self):
        # A long-running blocker holds 2 of 4 processors.  The victim's
        # first (narrow) task runs beside it, but its second task needs the
        # whole machine before the blocker finishes: the chain is dropped
        # *after* consuming task a's processor-time.
        blocker = Job.rigid(
            TaskChain(
                (TaskSpec("x", ProcessorTimeRequest(2, 20.0), deadline=100.0),)
            ),
            release=0.0,
        )
        victim = Job.rigid(
            TaskChain(
                (
                    TaskSpec("a", ProcessorTimeRequest(2, 5.0), deadline=5.0),
                    TaskSpec("b", ProcessorTimeRequest(4, 5.0), deadline=12.0),
                )
            ),
            release=0.1,
        )
        m = EDFExecutor(4).run([blocker, victim])
        assert m.on_time == 1  # the blocker
        assert m.late == 1
        assert m.wasted_area == pytest.approx(10.0)  # task a's area
        assert m.goodput_utilization < m.utilization

    def test_task_wider_than_machine_dropped(self):
        m = EDFExecutor(2).run([job(procs=4)])
        assert m.late == 1


class TestBackfill:
    def make_jobs(self):
        # Head of queue needs the full machine; a narrow job behind it
        # could run in the 2 free processors.
        wide_running = job(procs=2, dur=10.0, deadline=100.0, release=0.0)
        wide_waiting = job(procs=4, dur=5.0, deadline=30.0, release=1.0)
        narrow = job(procs=2, dur=5.0, deadline=100.0, release=2.0)
        return [wide_running, wide_waiting, narrow]

    def test_backfill_lets_narrow_run(self):
        m = EDFExecutor(4, backfill=True).run(self.make_jobs())
        assert m.on_time == 3
        assert m.horizon == pytest.approx(15.0)

    def test_strict_edf_blocks(self):
        m = EDFExecutor(4, backfill=False).run(self.make_jobs())
        assert m.on_time == 3
        # narrow waits behind wide_waiting: 10 (wide_running) + 5 + 5
        assert m.horizon == pytest.approx(20.0)


class TestChainSelector:
    def make_tunable(self, release=0.0):
        fast = TaskChain(
            (TaskSpec("a", ProcessorTimeRequest(4, 2.0), deadline=100.0),),
            label="wide-fast",
        )
        narrow = TaskChain(
            (TaskSpec("a", ProcessorTimeRequest(1, 6.0), deadline=100.0),),
            label="narrow-slow",
        )
        return Job.tunable_of([fast, narrow], release=release)

    def test_first(self):
        ex = EDFExecutor(4, selector=ChainSelector.FIRST)
        m = ex.run([self.make_tunable()])
        assert m.horizon == pytest.approx(2.0)

    def test_min_duration(self):
        ex = EDFExecutor(4, selector=ChainSelector.MIN_DURATION)
        m = ex.run([self.make_tunable()])
        assert m.horizon == pytest.approx(2.0)

    def test_min_width(self):
        ex = EDFExecutor(4, selector=ChainSelector.MIN_WIDTH)
        m = ex.run([self.make_tunable()])
        assert m.horizon == pytest.approx(6.0)


class TestAgainstArbitrator:
    def test_overload_reservation_beats_best_effort(self):
        """Under overload the admission-controlled arbitrator completes at
        least as many jobs on time and wastes nothing."""
        from repro.core.arbitrator import QoSArbitrator
        from repro.sim.arrivals import PoissonArrivals
        from repro.sim.rng import RandomStreams
        from repro.sim.simulator import simulate_arrivals

        params = SyntheticParams(x=16, t=25.0, alpha=0.5, laxity=0.5)
        arrivals = list(PoissonArrivals(15.0, RandomStreams(3)).times(300))

        arb = QoSArbitrator(16, keep_placements=False)

        class Replay:
            def times(self, n):
                return iter(arrivals[:n])

        reservation = simulate_arrivals(
            arb, lambda i, r: params.tunable_job(r), Replay(), 300
        )
        edf = EDFExecutor(16).run(params.tunable_job(t) for t in arrivals)
        assert reservation.throughput >= edf.on_time
        assert edf.wasted_area > 0
