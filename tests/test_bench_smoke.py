"""Smoke test: the benchmark harness runs end-to-end at quick scale.

Executes ``benchmarks/run_bench.py --quick`` exactly as the CI smoke job
does and sanity-checks the report shape, the before/after checksum identity
guard, and that every speedup is a positive finite number.  Wall-clock
*magnitudes* are machine noise at this scale, so no thresholds are asserted
here — the committed full-scale ``BENCH_sched.json`` carries those.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_run_bench_quick(tmp_path):
    out = tmp_path / "bench.json"
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "benchmarks" / "run_bench.py"),
         "--quick", "--output", str(out)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(out.read_text())
    assert report["mode"] == "quick"
    for section in ("reserve_fit", "area_query"):
        pair = report["micro"][section]
        assert pair["before"]["checksum"] == pair["after"]["checksum"]
        assert pair["speedup"] > 0
    arrival = report["arrival"]
    assert arrival["throughput"] > 0
    assert arrival["decision_p95_us"] >= arrival["decision_p50_us"] >= 0
    assert arrival["profile_shift_ops"] > 0
    sweep = report["sweep"]
    assert sweep["checksums_match"] is True
    assert sweep["cold_cache_misses"] == sweep["units"]
    assert sweep["warm_cache_hits"] == sweep["units"]
    assert sweep["warm_cache_misses"] == 0
    assert sweep["speedup_warm_cache"] > 1.0
    resilience = report["resilience"]
    assert resilience["zero_event_identical"] is True
    assert resilience["events"] > 0
    assert resilience["affected"] >= resilience["path_switches"]
    assert 0.0 <= resilience["survival_rate"] <= 1.0
    assert resilience["jobs_per_sec"] > 0


def test_committed_report_is_current_shape():
    """The committed BENCH_sched.json parses and has the documented fields."""
    committed = json.loads((REPO_ROOT / "BENCH_sched.json").read_text())
    assert committed["mode"] == "full"
    reserve_fit = committed["micro"]["reserve_fit"]
    assert reserve_fit["before"]["placements"] == 10_000
    # The optimization's acceptance bar: >= 2x on reserve+earliest_fit at
    # 10k-placement scale (the committed report was generated on a machine
    # where it holds with margin; regenerate with benchmarks/run_bench.py).
    assert reserve_fit["speedup"] >= 2.0
    for key in ("decision_p50_us", "decision_p95_us", "utilization"):
        assert key in committed["arrival"]
    sweep = committed["sweep"]
    assert sweep["checksums_match"] is True
    assert sweep["cold_cache_misses"] == sweep["units"]
    assert sweep["warm_cache_hits"] == sweep["units"]
    # Memoization acceptance bar: a warm re-run must be >= 10x faster than
    # recomputing the sweep.  (The cold-parallel ratio is bounded by the
    # generating host's core count — recorded in sweep["cpus"] — so it is
    # documented, not asserted.)
    assert sweep["speedup_warm_cache"] >= 10.0
    resilience = committed["resilience"]
    assert resilience["zero_event_identical"] is True
    assert resilience["events"] > 0
    assert 0.0 <= resilience["survival_rate"] <= 1.0
